//! Cache replacement policies (§3.7, §5.6).
//!
//! The paper ships two relevant behaviours:
//!
//! * The **default rule**: entries ordered "first by current use ...,
//!   then by time of last access"; evict the LRU *unreferenced* entry,
//!   else the LRU referenced entry. In this implementation that rule is
//!   [`Policy::Lru`] combined with the cache's pin-awareness — pinned
//!   (currently referenced) entries are passed over and only chosen when
//!   nothing else remains.
//! * **Greedy Dual-Size** ([`Policy::Gds`]): the application-customized
//!   policy Flash-Lite installs through IO-Lite's cache-policy hook
//!   (§5: "a policy that performs well on Web workloads", Cao & Irani).
//!   Each entry carries `H = L + cost/size`; the minimum-`H` entry is
//!   evicted and its `H` becomes the new floor `L`.
//!
//! The Fig. 11 ablation switches Flash-Lite between the two.

/// A replacement policy for the unified file cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Least-recently-used ordering (the paper's default rule when
    /// combined with pin preference).
    Lru,
    /// Greedy Dual-Size with uniform miss cost: favors keeping small,
    /// popular documents, maximizing request hit ratio.
    Gds,
    /// GDS-Frequency (Cao & Irani's refinement): `H = L + freq/size`,
    /// weighting popularity explicitly. Included as a demonstration of
    /// the §3.7 application-customizable policy hook beyond the paper's
    /// own GDS choice.
    Gdsf,
}

/// Fixed-point scale for GDS `H` values (1/size with sizes up to ~1GB
/// still yields distinct integer priorities).
pub(crate) const GDS_SCALE: u64 = 1_000_000_000_000;

impl Policy {
    /// The ordering key a (re)inserted or accessed entry receives.
    ///
    /// * LRU: the current logical clock.
    /// * GDS: `L + SCALE / size` (uniform cost).
    /// * GDSF: `L + freq * SCALE / size`.
    ///
    /// Public but hidden: the cache-equivalence property suite shares
    /// this single implementation with its reference model so formula
    /// changes cannot silently diverge from the test's expectations.
    #[doc(hidden)]
    pub fn order_key(self, clock: u64, gds_l: u64, size: u64, freq: u64) -> u64 {
        match self {
            Policy::Lru => clock,
            Policy::Gds => gds_l + GDS_SCALE / size.max(1),
            Policy::Gdsf => gds_l + freq.max(1).saturating_mul(GDS_SCALE / size.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_key_is_clock() {
        assert_eq!(Policy::Lru.order_key(42, 0, 1000, 1), 42);
    }

    #[test]
    fn gds_prefers_small_files() {
        let small = Policy::Gds.order_key(0, 0, 1_000, 1);
        let large = Policy::Gds.order_key(0, 0, 1_000_000, 1);
        // Smaller files get higher H, so they are evicted later.
        assert!(small > large);
    }

    #[test]
    fn gds_floor_raises_priority() {
        let early = Policy::Gds.order_key(0, 0, 1_000_000, 1);
        let late = Policy::Gds.order_key(0, 500_000, 1_000_000, 1);
        assert!(late > early, "aging via L must raise fresh entries");
    }

    #[test]
    fn gds_zero_size_is_safe() {
        // Defensive: empty files never divide by zero.
        assert_eq!(Policy::Gds.order_key(0, 7, 0, 1), 7 + GDS_SCALE);
    }

    #[test]
    fn gdsf_rewards_frequency() {
        let cold = Policy::Gdsf.order_key(0, 0, 10_000, 1);
        let hot = Policy::Gdsf.order_key(0, 0, 10_000, 8);
        assert!(hot > cold, "frequent entries must outrank one-hit ones");
        // GDS ignores frequency entirely.
        assert_eq!(
            Policy::Gds.order_key(0, 0, 10_000, 1),
            Policy::Gds.order_key(0, 0, 10_000, 8)
        );
    }
}

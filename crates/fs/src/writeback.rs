//! Cache-aware write-back scheduling with an NVM staging tier.
//!
//! The read path serves everything from the [`crate::UnifiedCache`];
//! the write path (PR 10) installs PUT bodies as *dirty* cache entries
//! and defers persistence. This module decides **when** dirty data is
//! flushed and **where** it lands first:
//!
//! * **Dirty threshold + flush batching** (CAWL): flushing one entry at
//!   a time pays the disk's positioning cost per entry; the scheduler
//!   instead waits for `dirty_threshold_bytes` of accumulated dirty
//!   data and then flushes batches of up to `flush_batch_bytes`,
//!   amortizing positioning across the batch.
//! * **NVM staging tier** (NVCache): a small simulated byte-addressable
//!   NVM tier absorbs flushed bytes at `nvm_transfer_mb_s` with *no*
//!   positioning cost; bursts that exceed the tier's free capacity
//!   overflow straight to disk. A background demotion step drains the
//!   tier back to disk in `nvm_drain_bytes` chunks, off the request
//!   path.
//!
//! The scheduler is *pure bookkeeping*: it owns no buffers and touches
//! no clock. The pure kernel core calls it from `apply` arms
//! (`WriteBack`, `NvmDemote`) and charges the times it computes to
//! [`iolite_sim::SimTime`]-based metrics, so journaled write-heavy runs
//! replay bit-identically.

use iolite_sim::SimTime;

/// Tuning knobs for write-back scheduling and the NVM staging tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritebackConfig {
    /// Accumulated dirty bytes that arm a flush.
    pub dirty_threshold_bytes: u64,
    /// Upper bound on the bytes one flush batch persists.
    pub flush_batch_bytes: u64,
    /// Capacity of the NVM staging tier; 0 disables the tier.
    pub nvm_capacity_bytes: u64,
    /// Bytes one background demotion moves from NVM to disk.
    pub nvm_drain_bytes: u64,
    /// NVM sequential transfer rate, MB/s (no positioning cost).
    pub nvm_transfer_mb_s: f64,
}

impl WritebackConfig {
    /// The default tuning used by the experiments: a 64 KB dirty
    /// threshold, 128 KB flush batches, a 1 MB NVM tier drained in
    /// 256 KB chunks at 10× the disk's transfer rate.
    pub fn default_tuning() -> Self {
        WritebackConfig {
            dirty_threshold_bytes: 64 * 1024,
            flush_batch_bytes: 128 * 1024,
            nvm_capacity_bytes: 1024 * 1024,
            nvm_drain_bytes: 256 * 1024,
            nvm_transfer_mb_s: 140.0,
        }
    }
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig::default_tuning()
    }
}

/// Where one flush batch's bytes landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staged {
    /// Bytes absorbed by the NVM tier (no positioning cost).
    pub nvm_bytes: u64,
    /// Overflow bytes that went straight to disk.
    pub disk_bytes: u64,
}

/// Write-back counters, folded into kernel metrics and state digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WritebackStats {
    /// Flush batches executed.
    pub flushes: u64,
    /// Cache entries cleaned across all flushes.
    pub entries_flushed: u64,
    /// Bytes persisted across all flushes (NVM + disk).
    pub bytes_flushed: u64,
    /// Bytes the NVM tier absorbed on the flush path.
    pub nvm_absorbed_bytes: u64,
    /// Background NVM→disk demotions executed.
    pub nvm_demotions: u64,
    /// Bytes demoted from NVM to disk.
    pub nvm_demoted_bytes: u64,
    /// Disk write accesses (each pays one positioning cost).
    pub disk_writes: u64,
    /// Bytes written to disk (flush overflow + demotions).
    pub disk_write_bytes: u64,
}

/// The write-back scheduler: dirty-threshold arming, flush batching,
/// and NVM-tier occupancy. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct WritebackScheduler {
    cfg: WritebackConfig,
    nvm_used: u64,
    stats: WritebackStats,
}

impl WritebackScheduler {
    /// Creates a scheduler with the given tuning and an empty NVM tier.
    pub fn new(cfg: WritebackConfig) -> Self {
        WritebackScheduler {
            cfg,
            nvm_used: 0,
            stats: WritebackStats::default(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> WritebackConfig {
        self.cfg
    }

    /// Replaces the tuning. NVM occupancy above a shrunken capacity is
    /// kept — it drains through subsequent demotions.
    pub fn set_config(&mut self, cfg: WritebackConfig) {
        self.cfg = cfg;
    }

    /// Whether accumulated dirty bytes have armed a flush.
    pub fn should_flush(&self, dirty_bytes: u64) -> bool {
        dirty_bytes > 0 && dirty_bytes >= self.cfg.dirty_threshold_bytes
    }

    /// Whether the NVM tier holds bytes a background demotion can drain.
    pub fn should_demote(&self) -> bool {
        self.nvm_used > 0
    }

    /// Bytes currently staged in the NVM tier.
    pub fn nvm_used(&self) -> u64 {
        self.nvm_used
    }

    /// Remaining NVM capacity.
    pub fn nvm_free(&self) -> u64 {
        self.cfg.nvm_capacity_bytes.saturating_sub(self.nvm_used)
    }

    /// Counters so far.
    pub fn stats(&self) -> WritebackStats {
        self.stats
    }

    /// Stages one flush batch of `entries` cache entries totalling
    /// `bytes`: the NVM tier absorbs what fits, the rest overflows to
    /// disk. Returns the split; the caller charges timing (one disk
    /// positioning per batch with a non-zero disk share).
    pub fn stage(&mut self, entries: u64, bytes: u64) -> Staged {
        let nvm_bytes = bytes.min(self.nvm_free());
        let disk_bytes = bytes - nvm_bytes;
        self.nvm_used += nvm_bytes;
        self.stats.flushes += 1;
        self.stats.entries_flushed += entries;
        self.stats.bytes_flushed += bytes;
        self.stats.nvm_absorbed_bytes += nvm_bytes;
        if disk_bytes > 0 {
            self.stats.disk_writes += 1;
            self.stats.disk_write_bytes += disk_bytes;
        }
        Staged {
            nvm_bytes,
            disk_bytes,
        }
    }

    /// Demotes up to `max_bytes` (0 ⇒ the configured drain chunk) from
    /// the NVM tier to disk, returning the bytes moved. The caller
    /// charges one disk access for a non-zero demotion.
    pub fn demote(&mut self, max_bytes: u64) -> u64 {
        let chunk = if max_bytes == 0 {
            self.cfg.nvm_drain_bytes
        } else {
            max_bytes
        };
        let moved = self.nvm_used.min(chunk);
        if moved == 0 {
            return 0;
        }
        self.nvm_used -= moved;
        self.stats.nvm_demotions += 1;
        self.stats.nvm_demoted_bytes += moved;
        self.stats.disk_writes += 1;
        self.stats.disk_write_bytes += moved;
        moved
    }

    /// Transfer time for `bytes` through the NVM tier (no positioning).
    pub fn nvm_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / (self.cfg.nvm_transfer_mb_s * 1_000_000.0))
    }

    /// Folds scheduler state into a stable digest (`f64` via bit
    /// pattern, so the fold is exact).
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.cfg.dirty_threshold_bytes);
        h.write_u64(self.cfg.flush_batch_bytes);
        h.write_u64(self.cfg.nvm_capacity_bytes);
        h.write_u64(self.cfg.nvm_drain_bytes);
        h.write_u64(self.cfg.nvm_transfer_mb_s.to_bits());
        h.write_u64(self.nvm_used);
        for v in [
            self.stats.flushes,
            self.stats.entries_flushed,
            self.stats.bytes_flushed,
            self.stats.nvm_absorbed_bytes,
            self.stats.nvm_demotions,
            self.stats.nvm_demoted_bytes,
            self.stats.disk_writes,
            self.stats.disk_write_bytes,
        ] {
            h.write_u64(v);
        }
    }
}

impl Default for WritebackScheduler {
    fn default() -> Self {
        WritebackScheduler::new(WritebackConfig::default_tuning())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nvm: u64) -> WritebackConfig {
        WritebackConfig {
            dirty_threshold_bytes: 100,
            flush_batch_bytes: 200,
            nvm_capacity_bytes: nvm,
            nvm_drain_bytes: 50,
            nvm_transfer_mb_s: 100.0,
        }
    }

    #[test]
    fn threshold_arms_flush() {
        let wb = WritebackScheduler::new(cfg(1000));
        assert!(!wb.should_flush(0));
        assert!(!wb.should_flush(99));
        assert!(wb.should_flush(100));
        assert!(wb.should_flush(5000));
    }

    #[test]
    fn nvm_absorbs_then_overflows() {
        let mut wb = WritebackScheduler::new(cfg(150));
        let s = wb.stage(2, 100);
        assert_eq!((s.nvm_bytes, s.disk_bytes), (100, 0));
        assert_eq!(wb.nvm_used(), 100);
        // The tier has 50 bytes free: a 120-byte batch splits.
        let s = wb.stage(1, 120);
        assert_eq!((s.nvm_bytes, s.disk_bytes), (50, 70));
        assert_eq!((wb.nvm_used(), wb.nvm_free()), (150, 0));
        let st = wb.stats();
        assert_eq!((st.flushes, st.entries_flushed, st.bytes_flushed), (2, 3, 220));
        assert_eq!(st.nvm_absorbed_bytes, 150);
        assert_eq!((st.disk_writes, st.disk_write_bytes), (1, 70));
    }

    #[test]
    fn zero_capacity_disables_tier() {
        let mut wb = WritebackScheduler::new(cfg(0));
        let s = wb.stage(1, 80);
        assert_eq!((s.nvm_bytes, s.disk_bytes), (0, 80));
        assert!(!wb.should_demote());
    }

    #[test]
    fn demotion_drains_in_chunks() {
        let mut wb = WritebackScheduler::new(cfg(1000));
        wb.stage(1, 120);
        assert!(wb.should_demote());
        assert_eq!(wb.demote(0), 50, "0 means the configured chunk");
        assert_eq!(wb.demote(1000), 70, "clamped to occupancy");
        assert_eq!(wb.demote(0), 0);
        assert!(!wb.should_demote());
        let st = wb.stats();
        assert_eq!((st.nvm_demotions, st.nvm_demoted_bytes), (2, 120));
        assert_eq!((st.disk_writes, st.disk_write_bytes), (2, 120));
    }

    #[test]
    fn nvm_time_is_positioning_free() {
        let wb = WritebackScheduler::new(cfg(1000));
        // 1MB at 100MB/s = 10ms exactly; no positioning term.
        let t = wb.nvm_time(1_000_000);
        assert!((t.as_ms() - 10.0).abs() < 1e-9, "{t}");
        assert_eq!(wb.nvm_time(0), SimTime::ZERO);
    }

    #[test]
    fn digest_tracks_state() {
        let mut wb = WritebackScheduler::new(cfg(1000));
        let mut h1 = iolite_buf::Fnv64::new();
        wb.digest(&mut h1);
        wb.stage(1, 10);
        let mut h2 = iolite_buf::Fnv64::new();
        wb.digest(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}

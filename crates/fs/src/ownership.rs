//! Cache-ownership protocol for sharded serving.
//!
//! When the kernel is instantiated once per core (shared-nothing
//! sharding), the unified cache is partitioned too, and the design
//! question is who may hold a file's bytes. Every file has exactly one
//! **home shard**, chosen by mixing its id through splitmix64 — the
//! same full-width-mixing discipline as connection routing, so a
//! structured id space (files are created in creation order) cannot
//! skew the partition. The home shard is the only shard that reads the
//! file from disk and the only one whose cache entry is authoritative;
//! a shard that needs a non-resident remote file messages the home
//! shard and receives a copy of the bytes.
//!
//! What the requesting shard does with that copy is the
//! [`CacheOwnership`] policy:
//!
//! - [`CacheOwnership::HomeOnly`] serves the copy and discards it.
//!   Aggregate cache residency stays exactly one entry per file (no
//!   replica memory), but every remote request for a hot file pays a
//!   round-trip and a copy — this mode *measures* hot-spot imbalance.
//! - [`CacheOwnership::Replicate`] installs the copy into the local
//!   cache (a journaled `CacheInstall`), so a shard's second and later
//!   requests for a remote-homed file hit locally. Hot entries end up
//!   replicated on the shards that want them, trading memory for
//!   locality — the LBICA-style answer to Zipf skew.
//!
//! Neither mode ever takes a lock on another shard's state; the
//! protocol is message-passing only.

use iolite_buf::splitmix64;

use crate::disk::FileId;

/// What a shard does with bytes fetched from a file's home shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOwnership {
    /// Only the home shard caches a file; remote shards re-request per
    /// miss and serve the returned copy without caching it.
    HomeOnly,
    /// Remote shards install fetched bytes as local cache replicas, so
    /// repeated access to a hot remote file becomes shard-local.
    Replicate,
}

/// The shard that owns `file`'s authoritative cache entry and its disk
/// reads.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn home_shard(file: FileId, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard");
    (splitmix64(file.0) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_assignment_is_deterministic_and_total() {
        for shards in 1..=8 {
            for id in [0u64, 1, 9_999, u64::MAX] {
                let h = home_shard(FileId(id), shards);
                assert!(h < shards);
                assert_eq!(h, home_shard(FileId(id), shards));
            }
        }
    }

    /// File ids are handed out sequentially by creation order — the
    /// most structured id space possible. Homing must still be
    /// uniform.
    #[test]
    fn sequential_file_ids_home_uniformly() {
        for shards in [2usize, 4, 8] {
            let n = 10_000usize;
            let mut counts = vec![0usize; shards];
            for id in 0..n {
                counts[home_shard(FileId(id as u64), shards)] += 1;
            }
            let mean = n as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - mean).abs() / mean;
                assert!(
                    dev < 0.10,
                    "shard {s} homes {c} of {n} files ({shards} shards): \
                     {:.1}% off uniform",
                    dev * 100.0
                );
            }
        }
    }
}

//! The "old" buffer cache, retained for file-system metadata (§4.2).
//!
//! "As in the original BSD kernel, the file system continues to use the
//! 'old' buffer cache to hold file system metadata." Name→inode lookups
//! go through this LRU cache; a miss stands for a metadata disk access.

use std::collections::HashMap;

use crate::disk::FileId;

/// A fixed-capacity LRU cache of name→file metadata lookups.
///
/// `Clone` is a true deep copy, used by kernel-state snapshots. LRU
/// eviction is deterministic: stamps are unique (one clock tick per
/// lookup), so the victim never depends on hash iteration order.
#[derive(Debug, Clone)]
pub struct MetadataCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<String, (FileId, u64)>,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MetadataCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a name; on a miss, `resolve` supplies the id (a metadata
    /// disk access in the timing model) and the result is cached.
    ///
    /// Returns `(id, was_hit)`.
    pub fn lookup(
        &mut self,
        name: &str,
        resolve: impl FnOnce() -> Option<FileId>,
    ) -> Option<(FileId, bool)> {
        self.clock += 1;
        if let Some((id, stamp)) = self.entries.get_mut(name) {
            *stamp = self.clock;
            self.hits += 1;
            return Some((*id, true));
        }
        let id = resolve()?;
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(name.to_string(), (id, self.clock));
        Some((id, false))
    }

    /// Invalidates one name (file removal/rename).
    pub fn invalidate(&mut self, name: &str) {
        self.entries.remove(name);
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds the cache's state into a stable digest (sorted iteration).
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.capacity as u64);
        h.write_u64(self.clock);
        h.write_u64(self.hits);
        h.write_u64(self.misses);
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort_unstable();
        h.write_u64(names.len() as u64);
        for name in names {
            let (id, stamp) = self.entries[name];
            h.write_str(name);
            h.write_u64(id.0);
            h.write_u64(stamp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = MetadataCache::new(4);
        let (id, hit) = c.lookup("/a", || Some(FileId(1))).unwrap();
        assert_eq!(id, FileId(1));
        assert!(!hit);
        let (id, hit) = c.lookup("/a", || unreachable!()).unwrap();
        assert_eq!(id, FileId(1));
        assert!(hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn unknown_name_not_cached() {
        let mut c = MetadataCache::new(4);
        assert!(c.lookup("/missing", || None).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = MetadataCache::new(2);
        c.lookup("/a", || Some(FileId(1)));
        c.lookup("/b", || Some(FileId(2)));
        // Touch /a so /b is the LRU.
        c.lookup("/a", || unreachable!());
        c.lookup("/c", || Some(FileId(3)));
        assert_eq!(c.len(), 2);
        // /b was evicted; /a survived.
        let (_, hit_a) = c.lookup("/a", || Some(FileId(1))).unwrap();
        assert!(hit_a);
        let (_, hit_b) = c.lookup("/b", || Some(FileId(2))).unwrap();
        assert!(!hit_b);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = MetadataCache::new(4);
        c.lookup("/a", || Some(FileId(1)));
        c.invalidate("/a");
        let (_, hit) = c.lookup("/a", || Some(FileId(9))).unwrap();
        assert!(!hit);
    }
}

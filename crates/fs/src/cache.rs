//! The unified IO-Lite file cache (§3.5, §3.7).
//!
//! Maps ⟨file-id, offset⟩ → buffer aggregates. The cache "has no
//! statically allocated storage": it holds references into pageable
//! IO-Lite buffers, so an entry's memory is shared with every other
//! subsystem referencing the same buffers.
//!
//! Key semantics reproduced here:
//!
//! * **Snapshot writes** (§3.5): a write *replaces* the cached aggregate;
//!   the replaced buffers "persist as long as other references to them
//!   exist" — automatic, because entries hold refcounted slices.
//! * **Reference-aware eviction** (§3.7): entries currently referenced
//!   outside the cache (tracked with explicit pins by the kernel, e.g.
//!   while the network transmits them) are evicted only as a last
//!   resort.
//! * **Budgeted size**: the eviction loop drives residency to the budget
//!   the physical-memory accountant grants — this is the lever the WAN
//!   experiment (§5.7) turns.
//!
//! # Complexity contract
//!
//! The cache is built for corpora of tens of thousands of entries with
//! large pinned populations (thousands of in-flight transmissions).
//! Pinned and unpinned entries live in *separate* ordered indexes, so
//! the victim search never scans past pinned entries:
//!
//! * [`UnifiedCache::lookup`] — O(1) expected hash probe plus O(log n)
//!   priority refresh.
//! * [`UnifiedCache::evict_one`] — O(log n + D) regardless of how many
//!   entries are pinned (`min` of the unpinned index, else `min` of the
//!   pinned index; no O(#entries) scan). D is the number of *dirty*
//!   entries ranked ahead of the victim — dirty entries are never
//!   evicted, and the write-back scheduler's dirty threshold bounds D.
//! * [`UnifiedCache::pin`] / [`UnifiedCache::unpin`] — O(1) on
//!   already-pinned entries; O(log n) on the 0↔1 transitions that move
//!   an entry between the two indexes.
//! * [`UnifiedCache::insert`] / [`UnifiedCache::remove`] — O(log n)
//!   plus whatever [`UnifiedCache::enforce_budget`] evicts.
//!
//! # Pin accounting
//!
//! Pin counts are keyed by [`CacheKey`], *independent of entry
//! lifetime*: a write that replaces an entry (snapshot semantics), or
//! an eviction followed by re-admission, carries the key's outstanding
//! pin count over to the new entry. This is load-bearing for
//! correctness — the kernel releases pins when a transmission drains,
//! possibly long after the entry it originally pinned was replaced.
//! With per-entry counts, an unpin belonging to a *replaced* entry
//! would steal the pin of a newer in-flight request on the same key,
//! leaving data the network still references evictable.

use std::collections::{BTreeSet, HashMap};

use iolite_buf::Aggregate;

use crate::disk::FileId;
use crate::policy::Policy;

/// Cache entry key: which extent of which file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// The file.
    pub file: FileId,
    /// Byte offset of the extent (0 for whole-file entries).
    pub offset: u64,
}

impl CacheKey {
    /// Key for a whole-file entry.
    pub fn whole(file: FileId) -> Self {
        CacheKey { file, offset: 0 }
    }
}

/// Cache activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Bytes served from cache.
    pub bytes_hit: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the policy.
    pub evictions: u64,
    /// Entries replaced by writes (snapshot semantics).
    pub write_replacements: u64,
    /// Evictions that had to sacrifice a pinned (referenced) entry.
    pub pinned_evictions: u64,
    /// Entries installed dirty (PUT bodies awaiting write-back).
    pub dirty_installs: u64,
    /// Dirty entries superseded by a newer write before they were ever
    /// flushed — the write coalescing CAWL counts on.
    pub dirty_coalesced: u64,
    /// Dirty entries marked clean by the write-back scheduler.
    pub cleaned: u64,
}

struct Entry {
    agg: Aggregate,
    len: u64,
    ord: u64,
    freq: u64,
    /// Which ordered index holds this entry — kept in lockstep with the
    /// key's presence in `pin_counts` by `pin`/`unpin`, so hot paths
    /// never re-derive it with a second hash probe.
    pinned: bool,
    /// Whether the entry holds bytes the backing store does not: dirty
    /// entries are invisible to the victim search (discarding one would
    /// lose data) until the write-back scheduler marks them clean.
    dirty: bool,
}

/// The unified file cache.
///
/// See the [module docs](self) for the complexity contract and the
/// key-scoped pin-accounting rules.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
/// let mut cache = UnifiedCache::new(Policy::Lru, 1 << 20);
/// let key = CacheKey::whole(FileId(1));
/// cache.insert(key, Aggregate::from_bytes(&pool, b"doc"));
/// assert!(cache.lookup(&key).is_some());
/// ```
pub struct UnifiedCache {
    policy: Policy,
    budget: u64,
    entries: HashMap<CacheKey, Entry>,
    /// Eviction order over entries with no outside references.
    unpinned: BTreeSet<(u64, CacheKey)>,
    /// Eviction order over referenced entries — the §3.7 last-resort
    /// victims, segregated so the normal victim search never sees them.
    pinned: BTreeSet<(u64, CacheKey)>,
    /// Outstanding outside references per key; absent means zero.
    /// Survives entry replacement and eviction (see module docs).
    pin_counts: HashMap<CacheKey, u32>,
    /// Keys whose entries are dirty, in key order — the deterministic
    /// flush order the write-back scheduler batches from.
    dirty: BTreeSet<CacheKey>,
    /// Aggregates displaced from a *pinned* key (write replacement or
    /// last-resort eviction) — §3.5 snapshots still referenced by the
    /// key's outside consumers. Holding them here keeps their buffer
    /// refcounts a property of this pure state rather than of the
    /// consumers' (host-side) clones, so pool chunk release — and thus
    /// every later allocation offset — replays identically. Dropped
    /// when the key's pin count returns to zero.
    limbo: HashMap<CacheKey, Vec<Aggregate>>,
    /// Total bytes held by dirty entries (the CAWL threshold input).
    dirty_bytes: u64,
    clock: u64,
    gds_l: u64,
    resident: u64,
    stats: CacheStats,
}

impl UnifiedCache {
    /// Creates a cache with the given policy and initial byte budget.
    pub fn new(policy: Policy, budget: u64) -> Self {
        UnifiedCache {
            policy,
            budget,
            entries: HashMap::new(),
            unpinned: BTreeSet::new(),
            pinned: BTreeSet::new(),
            pin_counts: HashMap::new(),
            dirty: BTreeSet::new(),
            limbo: HashMap::new(),
            dirty_bytes: 0,
            clock: 0,
            gds_l: 0,
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    /// The active replacement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Bytes of file data currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Updates the byte budget (the physical-memory accountant calls
    /// this as competing reservations change) and evicts down to it.
    ///
    /// Returns the evicted entries so callers can account for buffers
    /// that remain alive through other references.
    pub fn set_budget(&mut self, budget: u64) -> Vec<(CacheKey, Aggregate)> {
        self.budget = budget;
        self.enforce_budget()
    }

    /// The current byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether `key` is cached.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// A read-only view of an entry's bytes — no clock advance, no
    /// ordering refresh. Audit paths (end-of-run cache-vs-store
    /// consistency checks) use this so observation does not perturb
    /// the replacement state being observed.
    pub fn peek(&self, key: &CacheKey) -> Option<&Aggregate> {
        self.entries.get(key).map(|e| &e.agg)
    }

    /// Looks up an extent, refreshing its replacement priority.
    ///
    /// The returned aggregate shares buffers with the cache entry — this
    /// is the single-physical-copy sharing of §3.1.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Aggregate> {
        self.clock += 1;
        let (policy, clock, gds_l) = (self.policy, self.clock, self.gds_l);
        match self.entries.get_mut(key) {
            Some(entry) => {
                // Refresh ordering within the entry's own index.
                let index = if entry.pinned {
                    &mut self.pinned
                } else {
                    &mut self.unpinned
                };
                index.remove(&(entry.ord, *key));
                entry.freq += 1;
                entry.ord = policy.order_key(clock, gds_l, entry.len, entry.freq);
                index.insert((entry.ord, *key));
                self.stats.hits += 1;
                self.stats.bytes_hit += entry.len;
                Some(entry.agg.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) an extent, then evicts to budget.
    ///
    /// A key's outstanding pin count carries over to the new entry (see
    /// the module docs): data inserted under a key the network still
    /// references is itself treated as referenced.
    ///
    /// Returns evicted entries.
    pub fn insert(&mut self, key: CacheKey, agg: Aggregate) -> Vec<(CacheKey, Aggregate)> {
        self.install(key, agg, false)
    }

    /// Inserts an extent *dirty*: the aggregate holds bytes the backing
    /// store does not yet (a PUT body installed by CoW replacement,
    /// §3.5). Dirty entries are exempt from eviction until the
    /// write-back scheduler marks them clean — discarding one would
    /// lose the write — so the budget may be transiently exceeded when
    /// only dirty entries remain; the pageout arbiter resolves that by
    /// scheduling write-back, not eviction.
    ///
    /// Returns evicted (clean) entries, as [`UnifiedCache::insert`].
    pub fn insert_dirty(&mut self, key: CacheKey, agg: Aggregate) -> Vec<(CacheKey, Aggregate)> {
        self.install(key, agg, true)
    }

    fn install(&mut self, key: CacheKey, agg: Aggregate, dirty: bool) -> Vec<(CacheKey, Aggregate)> {
        self.clock += 1;
        let len = agg.len();
        // Overwrite: the old entry's index/residency accounting unwinds
        // in `remove`; its buffers persist while referenced.
        self.remove(&key);
        let ord = self.policy.order_key(self.clock, self.gds_l, len, 1);
        let pinned = self.pin_counts.contains_key(&key);
        self.entries.insert(
            key,
            Entry {
                agg,
                len,
                ord,
                freq: 1,
                pinned,
                dirty,
            },
        );
        if pinned {
            self.pinned.insert((ord, key));
        } else {
            self.unpinned.insert((ord, key));
        }
        self.resident += len;
        self.stats.insertions += 1;
        if dirty {
            self.dirty.insert(key);
            self.dirty_bytes += len;
            self.stats.dirty_installs += 1;
        }
        self.enforce_budget()
    }

    /// Removes an entry (IOL_write replacement, §3.5), returning its
    /// aggregate. The buffers persist while other references exist, and
    /// so does the key's pin count — outstanding references are a
    /// property of the key's consumers, not of one entry generation.
    pub fn remove(&mut self, key: &CacheKey) -> Option<Aggregate> {
        let entry = self.entries.remove(key)?;
        if entry.pinned {
            self.pinned.remove(&(entry.ord, *key));
        } else {
            self.unpinned.remove(&(entry.ord, *key));
        }
        if entry.dirty {
            // A dirty entry leaving the table was superseded before its
            // flush (the caller re-installs new bytes under the key):
            // its unflushed bytes no longer need writing — coalescing.
            self.dirty.remove(key);
            self.dirty_bytes -= entry.len;
            self.stats.dirty_coalesced += 1;
        }
        self.resident -= entry.len;
        if self.pin_counts.contains_key(key) {
            // The key is still referenced outside the cache: park the
            // displaced snapshot until the last unpin, so its buffers'
            // lifetime is decided here, deterministically, not by when
            // the outside holders drop their clones.
            self.limbo.entry(*key).or_default().push(entry.agg.clone());
        }
        Some(entry.agg)
    }

    /// Removes an entry as part of a write (counts as replacement).
    pub fn replace_for_write(&mut self, key: &CacheKey) -> Option<Aggregate> {
        let out = self.remove(key);
        if out.is_some() {
            self.stats.write_replacements += 1;
        }
        out
    }

    /// Marks `key` as referenced outside the cache (network holds it,
    /// an application holds it...). O(log n) on the 0→1 transition,
    /// O(1) otherwise.
    ///
    /// The count registers even when no entry is currently cached under
    /// `key` (it may have been evicted between the caller's read and
    /// its pin): a later insert under the key is then born referenced.
    pub fn pin(&mut self, key: &CacheKey) {
        let count = self.pin_counts.entry(*key).or_insert(0);
        *count += 1;
        if *count == 1 {
            if let Some(e) = self.entries.get_mut(key) {
                e.pinned = true;
                self.unpinned.remove(&(e.ord, *key));
                self.pinned.insert((e.ord, *key));
            }
        }
    }

    /// Releases one outside reference. O(log n) on the 1→0 transition,
    /// O(1) otherwise.
    pub fn unpin(&mut self, key: &CacheKey) {
        let Some(count) = self.pin_counts.get_mut(key) else {
            return;
        };
        *count -= 1;
        if *count == 0 {
            self.pin_counts.remove(key);
            self.limbo.remove(key);
            if let Some(e) = self.entries.get_mut(key) {
                e.pinned = false;
                self.pinned.remove(&(e.ord, *key));
                self.unpinned.insert((e.ord, *key));
            }
        }
    }

    /// Number of pins on a key (0 if never pinned or fully released).
    pub fn pins(&self, key: &CacheKey) -> u32 {
        self.pin_counts.get(key).copied().unwrap_or(0)
    }

    /// Whether `key`'s entry is dirty (awaiting write-back).
    pub fn is_dirty(&self, key: &CacheKey) -> bool {
        self.dirty.contains(key)
    }

    /// Total bytes held by dirty entries — the CAWL threshold input.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Number of dirty entries.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Dirty keys in deterministic (key) order — the flush order the
    /// write-back scheduler batches from.
    pub fn dirty_keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.dirty.iter()
    }

    /// The cached length of `key`'s entry, without touching its
    /// replacement priority (flush planning must not refresh recency).
    pub fn entry_len(&self, key: &CacheKey) -> Option<u64> {
        self.entries.get(key).map(|e| e.len)
    }

    /// Marks a dirty entry clean: its bytes have been scheduled into
    /// the staging tier / backing store, so it is ordinary evictable
    /// cache content again. Returns the entry's length, or `None` if
    /// the key holds no dirty entry.
    pub fn mark_clean(&mut self, key: &CacheKey) -> Option<u64> {
        if !self.dirty.remove(key) {
            return None;
        }
        let entry = self.entries.get_mut(key).expect("dirty set tracks entries");
        entry.dirty = false;
        self.dirty_bytes -= entry.len;
        self.stats.cleaned += 1;
        Some(entry.len)
    }

    /// Evicts entries until residency fits the budget.
    pub fn enforce_budget(&mut self) -> Vec<(CacheKey, Aggregate)> {
        let mut evicted = Vec::new();
        while self.resident > self.budget {
            match self.evict_one() {
                Some(kv) => evicted.push(kv),
                None => break,
            }
        }
        evicted
    }

    /// Evicts a single entry by the active policy: the best *clean*
    /// unpinned victim, else the best clean pinned one (the §3.7
    /// two-level rule). Dirty entries are never victims — discarding
    /// one would lose a write the store hasn't seen — so a cache whose
    /// remaining entries are all dirty returns `None` and the pageout
    /// arbiter must schedule write-back instead.
    ///
    /// O(log n + D) where D is the number of dirty entries ranked ahead
    /// of the victim; D is bounded by the write-back scheduler's dirty
    /// threshold, so the complexity contract survives write bursts.
    ///
    /// Also used directly by the pageout-daemon trigger.
    pub fn evict_one(&mut self) -> Option<(CacheKey, Aggregate)> {
        let clean_first = |index: &BTreeSet<(u64, CacheKey)>| {
            index
                .iter()
                .find(|(_, k)| !self.dirty.contains(k))
                .copied()
        };
        let (ord, key) = match clean_first(&self.unpinned) {
            Some(victim) => victim,
            None => {
                let victim = clean_first(&self.pinned)?;
                self.stats.pinned_evictions += 1;
                victim
            }
        };
        if matches!(self.policy, Policy::Gds | Policy::Gdsf) {
            // The evicted entry's H becomes the new floor L.
            self.gds_l = ord;
        }
        self.stats.evictions += 1;
        let agg = self.remove(&key)?;
        Some((key, agg))
    }

    /// Iterates over cached keys (diagnostics, tests).
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }

    /// Deep-forks the cache for a kernel-state snapshot.
    ///
    /// Entry aggregates are rebound through `forker` (see
    /// [`iolite_buf::PoolForker`]), so the snapshot owns independent
    /// buffers and the original cache can keep mutating freely.
    pub fn snapshot(&self, forker: &mut iolite_buf::PoolForker) -> UnifiedCache {
        UnifiedCache {
            policy: self.policy,
            budget: self.budget,
            entries: self
                .entries
                .iter()
                .map(|(k, e)| {
                    (
                        *k,
                        Entry {
                            agg: forker.fork_aggregate(&e.agg),
                            len: e.len,
                            ord: e.ord,
                            freq: e.freq,
                            pinned: e.pinned,
                            dirty: e.dirty,
                        },
                    )
                })
                .collect(),
            unpinned: self.unpinned.clone(),
            pinned: self.pinned.clone(),
            pin_counts: self.pin_counts.clone(),
            dirty: self.dirty.clone(),
            limbo: self
                .limbo
                .iter()
                .map(|(k, v)| (*k, v.iter().map(|a| forker.fork_aggregate(a)).collect()))
                .collect(),
            dirty_bytes: self.dirty_bytes,
            clock: self.clock,
            gds_l: self.gds_l,
            resident: self.resident,
            stats: self.stats,
        }
    }

    /// Folds the cache's replay-relevant state into a stable digest
    /// (sorted iteration; no pointer identity).
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.budget);
        h.write_u64(self.clock);
        h.write_u64(self.gds_l);
        h.write_u64(self.resident);
        h.write_u64(self.dirty_bytes);
        for v in [
            self.stats.hits,
            self.stats.misses,
            self.stats.bytes_hit,
            self.stats.insertions,
            self.stats.evictions,
            self.stats.write_replacements,
            self.stats.pinned_evictions,
            self.stats.dirty_installs,
            self.stats.dirty_coalesced,
            self.stats.cleaned,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.entries.len() as u64);
        let mut keys: Vec<CacheKey> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let e = &self.entries[&k];
            h.write_u64(k.file.0);
            h.write_u64(k.offset);
            h.write_u64(e.len);
            h.write_u64(e.ord);
            h.write_u64(e.freq);
            h.write_bool(e.pinned);
            h.write_bool(e.dirty);
            iolite_buf::digest_aggregate(&e.agg, h);
        }
        let mut pins: Vec<(CacheKey, u32)> =
            self.pin_counts.iter().map(|(k, v)| (*k, *v)).collect();
        pins.sort_unstable();
        h.write_u64(pins.len() as u64);
        for (k, v) in pins {
            h.write_u64(k.file.0);
            h.write_u64(k.offset);
            h.write_u32(v);
        }
        let mut limbo_keys: Vec<CacheKey> = self.limbo.keys().copied().collect();
        limbo_keys.sort_unstable();
        h.write_u64(limbo_keys.len() as u64);
        for k in limbo_keys {
            h.write_u64(k.file.0);
            h.write_u64(k.offset);
            let parked = &self.limbo[&k];
            h.write_u64(parked.len() as u64);
            for a in parked {
                iolite_buf::digest_aggregate(a, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024)
    }

    fn agg(p: &BufferPool, n: usize) -> Aggregate {
        Aggregate::from_bytes(p, &vec![0xAB; n])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        assert!(c.lookup(&k).is_none());
        c.insert(k, agg(&p, 100));
        let got = c.lookup(&k).unwrap();
        assert_eq!(got.len(), 100);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.bytes_hit), (1, 1, 100));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 250);
        let (k1, k2, k3) = (
            CacheKey::whole(FileId(1)),
            CacheKey::whole(FileId(2)),
            CacheKey::whole(FileId(3)),
        );
        c.insert(k1, agg(&p, 100));
        c.insert(k2, agg(&p, 100));
        // Touch k1 so k2 becomes LRU.
        c.lookup(&k1);
        let evicted = c.insert(k3, agg(&p, 100));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, k2);
        assert!(c.contains(&k1) && c.contains(&k3));
    }

    #[test]
    fn gds_prefers_evicting_large_entries() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Gds, 100_000);
        let small = CacheKey::whole(FileId(1));
        let large = CacheKey::whole(FileId(2));
        c.insert(small, agg(&p, 1_000));
        c.insert(large, agg(&p, 60_000));
        // Both inserted; now overflow the budget.
        let trigger = CacheKey::whole(FileId(3));
        let evicted = c.insert(trigger, agg(&p, 50_000));
        assert_eq!(evicted[0].0, large, "GDS evicts the big file first");
        assert!(c.contains(&small));
    }

    #[test]
    fn gds_floor_ages_old_entries() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Gds, 3_000);
        let key = CacheKey::whole;
        c.insert(key(FileId(1)), agg(&p, 1_000));
        c.insert(key(FileId(2)), agg(&p, 1_000));
        c.insert(key(FileId(3)), agg(&p, 1_000));
        // Force one eviction: equal H values, so the floor L rises to
        // that common H.
        let first = c.insert(key(FileId(4)), agg(&p, 1_000));
        assert_eq!(first.len(), 1);
        // Touch FileId(2): its H is recomputed above the raised floor.
        c.lookup(&key(FileId(2)));
        // Next eviction must take an untouched entry, not the refreshed
        // one — recency enters GDS exactly through the L floor.
        let second = c.insert(key(FileId(5)), agg(&p, 1_000));
        assert_ne!(second[0].0, key(FileId(2)));
        assert!(c.contains(&key(FileId(2))));
    }

    #[test]
    fn pinned_entries_survive_unpinned_ones() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 250);
        let (k1, k2, k3) = (
            CacheKey::whole(FileId(1)),
            CacheKey::whole(FileId(2)),
            CacheKey::whole(FileId(3)),
        );
        c.insert(k1, agg(&p, 100));
        c.insert(k2, agg(&p, 100));
        c.pin(&k1);
        // k1 is older, but pinned: k2 must be the victim.
        let evicted = c.insert(k3, agg(&p, 100));
        assert_eq!(evicted[0].0, k2);
        assert_eq!(c.stats().pinned_evictions, 0);
    }

    #[test]
    fn all_pinned_falls_back_to_pinned_eviction() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k1 = CacheKey::whole(FileId(1));
        let k2 = CacheKey::whole(FileId(2));
        c.insert(k1, agg(&p, 100));
        c.insert(k2, agg(&p, 100));
        c.pin(&k1);
        c.pin(&k2);
        // Everything is referenced; shrinking the budget must still make
        // progress, sacrificing pinned entries LRU-first.
        let evicted = c.set_budget(150);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, k1);
        assert_eq!(c.stats().pinned_evictions, 1);
    }

    #[test]
    fn write_replacement_preserves_old_buffers() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        c.insert(k, Aggregate::from_bytes(&p, b"version-1"));
        // A reader holds the old snapshot.
        let snapshot = c.lookup(&k).unwrap();
        let _old = c.replace_for_write(&k).unwrap();
        c.insert(k, Aggregate::from_bytes(&p, b"version-2"));
        // The reader's snapshot still reads the old value.
        assert_eq!(snapshot.to_vec(), b"version-1");
        assert_eq!(c.lookup(&k).unwrap().to_vec(), b"version-2");
        assert_eq!(c.stats().write_replacements, 1);
    }

    #[test]
    fn budget_shrink_evicts() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        for i in 0..10 {
            c.insert(CacheKey::whole(FileId(i)), agg(&p, 1_000));
        }
        assert_eq!(c.resident_bytes(), 10_000);
        let evicted = c.set_budget(4_500);
        assert_eq!(evicted.len(), 6);
        assert!(c.resident_bytes() <= 4_500);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn unpin_reenables_eviction() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        c.insert(k, agg(&p, 100));
        c.pin(&k);
        c.pin(&k);
        c.unpin(&k);
        assert_eq!(c.pins(&k), 1);
        c.unpin(&k);
        assert_eq!(c.pins(&k), 0);
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, k);
        assert_eq!(c.stats().pinned_evictions, 0);
    }

    #[test]
    fn extent_keys_are_distinct() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let a = CacheKey {
            file: FileId(1),
            offset: 0,
        };
        let b = CacheKey {
            file: FileId(1),
            offset: 4096,
        };
        c.insert(a, Aggregate::from_bytes(&p, b"first"));
        c.insert(b, Aggregate::from_bytes(&p, b"second"));
        assert_eq!(c.lookup(&a).unwrap().to_vec(), b"first");
        assert_eq!(c.lookup(&b).unwrap().to_vec(), b"second");
        assert_eq!(c.len(), 2);
    }

    /// Regression for the pin-steal interleaving: request A pins the
    /// key, a write replaces the entry, request B pins the key, then
    /// A's deferred unpin fires. With per-entry pin counts the
    /// replacement dropped A's pin, so A's unpin stole B's and left
    /// B's in-flight entry evictable.
    #[test]
    fn write_replacement_preserves_pin_counts() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let hot = CacheKey::whole(FileId(1));
        let cold = CacheKey::whole(FileId(2));
        c.insert(hot, Aggregate::from_bytes(&p, b"version-1"));
        c.insert(cold, agg(&p, 9));
        // Request A starts transmitting the hot document.
        c.pin(&hot);
        // A write replaces the entry mid-transmission (§3.5 snapshot).
        let _old = c.replace_for_write(&hot);
        assert_eq!(c.pins(&hot), 1, "pin survives the entry's removal");
        c.insert(hot, Aggregate::from_bytes(&p, b"version-2"));
        assert_eq!(c.pins(&hot), 1, "pin carries onto the new entry");
        // Request B starts transmitting the new version.
        c.pin(&hot);
        assert_eq!(c.pins(&hot), 2);
        // A's transmission drains; its deferred unpin fires.
        c.unpin(&hot);
        // B's pin must still protect the entry: the victim is the cold
        // unpinned entry, not the hot in-flight one.
        assert_eq!(c.pins(&hot), 1);
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, cold, "in-flight entry must not be the victim");
        assert!(c.contains(&hot));
        assert_eq!(c.stats().pinned_evictions, 0);
    }

    /// A pin registered while the key's entry is evicted (the kernel
    /// pinned after its read raced an eviction) still guards a
    /// re-admitted entry, and the balanced unpin releases it.
    #[test]
    fn pin_outlives_eviction_and_readmission() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        c.insert(k, agg(&p, 100));
        c.pin(&k);
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, k);
        assert_eq!(c.stats().pinned_evictions, 1);
        assert_eq!(c.pins(&k), 1, "outside reference outlives the entry");
        // Re-admission under the still-referenced key: born pinned.
        c.insert(k, agg(&p, 100));
        c.insert(CacheKey::whole(FileId(2)), agg(&p, 100));
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, CacheKey::whole(FileId(2)));
        // The deferred release finally fires: k becomes evictable.
        c.unpin(&k);
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, k);
    }

    /// The ordered indexes stay consistent through pin/unpin/lookup
    /// interleavings: exactly one index entry per cached key, in the
    /// index matching its pin state.
    #[test]
    fn pin_transitions_move_between_indexes() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let (k1, k2) = (CacheKey::whole(FileId(1)), CacheKey::whole(FileId(2)));
        c.insert(k1, agg(&p, 100));
        c.insert(k2, agg(&p, 100));
        c.pin(&k1);
        // Refresh the pinned entry's priority: it must stay pinned-ranked.
        c.lookup(&k1);
        // k2 is the only unpinned entry and must be the victim even
        // though k1 is older by insertion.
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, k2);
        c.unpin(&k1);
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, k1);
        assert_eq!(c.stats().pinned_evictions, 0);
        assert!(c.is_empty());
    }

    /// Dirty entries are never eviction victims — not from the unpinned
    /// index, and not via the pinned-index fallback. Only `mark_clean`
    /// re-enables eviction.
    #[test]
    fn dirty_entries_survive_eviction_until_clean() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let (kd, kc) = (CacheKey::whole(FileId(1)), CacheKey::whole(FileId(2)));
        c.insert_dirty(kd, agg(&p, 100));
        c.insert(kc, agg(&p, 100));
        assert!(c.is_dirty(&kd));
        assert_eq!(c.dirty_bytes(), 100);
        assert_eq!(c.dirty_len(), 1);
        // The dirty entry is LRU-older, but the clean one is the victim.
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, kc);
        // Only a dirty entry remains: eviction must refuse, even via the
        // pinned fallback.
        assert!(c.evict_one().is_none());
        c.pin(&kd);
        assert!(c.evict_one().is_none());
        c.unpin(&kd);
        // Write-back completes: the entry turns clean and evictable.
        assert_eq!(c.mark_clean(&kd), Some(100));
        assert!(!c.is_dirty(&kd));
        assert_eq!(c.dirty_bytes(), 0);
        assert_eq!(c.mark_clean(&kd), None, "second clean is a no-op");
        let (victim, _) = c.evict_one().unwrap();
        assert_eq!(victim, kd);
        let s = c.stats();
        assert_eq!((s.dirty_installs, s.cleaned, s.dirty_coalesced), (1, 1, 0));
    }

    /// A dirty install over an existing dirty entry coalesces: the
    /// superseded write's bytes leave the dirty ledger and the event is
    /// counted, so write-back never flushes a stale version.
    #[test]
    fn dirty_reinstall_coalesces_accounting() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        c.insert_dirty(k, agg(&p, 100));
        c.insert_dirty(k, agg(&p, 300));
        assert_eq!(c.dirty_bytes(), 300);
        assert_eq!(c.dirty_len(), 1);
        let s = c.stats();
        assert_eq!((s.dirty_installs, s.dirty_coalesced), (2, 1));
        // A clean install over a dirty entry also retires the dirty
        // bytes (the caller flushed or discarded the pending write).
        c.insert(k, agg(&p, 50));
        assert_eq!(c.dirty_bytes(), 0);
        assert!(!c.is_dirty(&k));
        assert_eq!(c.stats().dirty_coalesced, 2);
    }

    /// Dirty state survives a deep snapshot fork: flags, the dirty
    /// ledger, and digests all carry over.
    #[test]
    fn snapshot_carries_dirty_state() {
        let p = pool();
        let mut c = UnifiedCache::new(Policy::Lru, 1 << 20);
        let k = CacheKey::whole(FileId(1));
        c.insert_dirty(k, agg(&p, 100));
        let mut forker = iolite_buf::PoolForker::default();
        let snap = c.snapshot(&mut forker);
        assert!(snap.is_dirty(&k));
        assert_eq!(snap.dirty_bytes(), 100);
        let (mut h1, mut h2) = (iolite_buf::Fnv64::new(), iolite_buf::Fnv64::new());
        c.digest(&mut h1);
        snap.digest(&mut h2);
        assert_eq!(h1.finish(), h2.finish(), "snapshot digest must match");
        // Digests must distinguish dirty from clean.
        c.mark_clean(&k);
        let mut h3 = iolite_buf::Fnv64::new();
        c.digest(&mut h3);
        assert_ne!(h2.finish(), h3.finish());
    }
}

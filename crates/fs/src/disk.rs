//! Simulated disk: file contents and access timing.
//!
//! Contents are *real bytes* — the end-to-end tests verify byte equality
//! through the whole server path — but large files are generated
//! deterministically on demand (`FileContent::Synthetic`) so trace data
//! sets of hundreds of megabytes cost no host memory until read.

use std::collections::BTreeMap;

use iolite_sim::SimTime;

/// A file identifier (inode-number analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// How a file's bytes are stored.
#[derive(Debug, Clone)]
pub enum FileContent {
    /// Deterministic pseudo-random bytes parameterized by a seed.
    ///
    /// Byte `i` of the file is a pure function of `(seed, i)`, so any
    /// extent can be generated independently.
    Synthetic {
        /// File length in bytes.
        len: u64,
        /// Content seed.
        seed: u64,
    },
    /// Explicitly stored bytes (files written by tests/applications).
    Explicit(Vec<u8>),
}

impl FileContent {
    /// The file's length.
    pub fn len(&self) -> u64 {
        match self {
            FileContent::Synthetic { len, .. } => *len,
            FileContent::Explicit(v) => v.len() as u64,
        }
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The 8 bytes of synthetic block `block`: a SplitMix64 hash of the
/// block index. Cheap and deterministic.
fn synthetic_block(seed: u64, block: u64) -> [u8; 8] {
    let mut z = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.to_le_bytes()
}

/// Generates byte `i` of a synthetic file (unaligned remainder path).
fn synthetic_byte(seed: u64, i: u64) -> u8 {
    synthetic_block(seed, i / 8)[(i % 8) as usize]
}

/// The server's file store: names, sizes, contents.
///
/// `Clone` is a true deep copy (plain owned data), used by kernel-state
/// snapshots.
#[derive(Debug, Default, Clone)]
pub struct FileStore {
    files: BTreeMap<FileId, FileContent>,
    names: BTreeMap<String, FileId>,
    next_id: u64,
}

impl FileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FileStore::default()
    }

    /// Creates a file with the given content, returning its id.
    pub fn create(&mut self, name: impl Into<String>, content: FileContent) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, content);
        self.names.insert(name.into(), id);
        id
    }

    /// Creates a synthetic file of `len` bytes.
    pub fn create_synthetic(&mut self, name: impl Into<String>, len: u64, seed: u64) -> FileId {
        self.create(name, FileContent::Synthetic { len, seed })
    }

    /// Looks a file up by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.names.get(name).copied()
    }

    /// The file's length, or `None` if it does not exist.
    pub fn len(&self, id: FileId) -> Option<u64> {
        self.files.get(&id).map(|c| c.len())
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|c| c.len()).sum()
    }

    /// Reads `len` bytes at `offset`, clamped to the file end.
    ///
    /// Returns `None` for unknown files.
    pub fn read(&self, id: FileId, offset: u64, len: u64) -> Option<Vec<u8>> {
        let content = self.files.get(&id)?;
        let flen = content.len();
        let start = offset.min(flen);
        let end = (offset + len).min(flen);
        let mut out = Vec::with_capacity((end - start) as usize);
        match content {
            FileContent::Synthetic { seed, .. } => {
                // Generate blockwise: one hash per 8-byte block.
                let mut i = start;
                while i < end {
                    if i % 8 == 0 && i + 8 <= end {
                        out.extend_from_slice(&synthetic_block(*seed, i / 8));
                        i += 8;
                    } else {
                        out.push(synthetic_byte(*seed, i));
                        i += 1;
                    }
                }
            }
            FileContent::Explicit(v) => {
                out.extend_from_slice(&v[start as usize..end as usize]);
            }
        }
        Some(out)
    }

    /// Writes `data` at `offset`, growing the file if needed.
    ///
    /// Synthetic files are materialized on first write (only small files
    /// are written in the experiments). Returns `false` for unknown
    /// files.
    pub fn write(&mut self, id: FileId, offset: u64, data: &[u8]) -> bool {
        let Some(content) = self.files.get_mut(&id) else {
            return false;
        };
        if let FileContent::Synthetic { len, seed } = *content {
            let mut materialized = Vec::with_capacity(len as usize);
            let mut i = 0;
            while i < len {
                if i % 8 == 0 && i + 8 <= len {
                    materialized.extend_from_slice(&synthetic_block(seed, i / 8));
                    i += 8;
                } else {
                    materialized.push(synthetic_byte(seed, i));
                    i += 1;
                }
            }
            *content = FileContent::Explicit(materialized);
        }
        let FileContent::Explicit(v) = content else {
            unreachable!()
        };
        let end = offset as usize + data.len();
        if v.len() < end {
            v.resize(end, 0);
        }
        v[offset as usize..end].copy_from_slice(data);
        true
    }

    /// Truncates the file to `len` bytes, or zero-extends it to `len`.
    ///
    /// Shrinking a synthetic file keeps it synthetic (a prefix of a
    /// synthetic file is the same pure function of `(seed, i)`), so a
    /// PUT that replaces a huge trace file never materializes the old
    /// bytes just to discard them. Returns `false` for unknown files.
    pub fn truncate(&mut self, id: FileId, new_len: u64) -> bool {
        let Some(content) = self.files.get(&id) else {
            return false;
        };
        if let FileContent::Synthetic { len, .. } = *content {
            if new_len <= len {
                let Some(FileContent::Synthetic { len, .. }) = self.files.get_mut(&id) else {
                    unreachable!()
                };
                *len = new_len;
                return true;
            }
            // Zero-extension breaks the synthetic generator contract:
            // materialize the real prefix, then grow.
            let v = self.read(id, 0, len).expect("file exists");
            self.files.insert(id, FileContent::Explicit(v));
        }
        let Some(FileContent::Explicit(v)) = self.files.get_mut(&id) else {
            unreachable!()
        };
        v.resize(new_len as usize, 0);
        true
    }

    /// Folds the store's state into a stable digest. Content digests use
    /// the parameters (synthetic) or the bytes (explicit), so a
    /// materialized-then-rewritten file digests by its actual contents.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.next_id);
        h.write_u64(self.files.len() as u64);
        for (id, content) in &self.files {
            h.write_u64(id.0);
            match content {
                FileContent::Synthetic { len, seed } => {
                    h.write_bytes(&[0]);
                    h.write_u64(*len);
                    h.write_u64(*seed);
                }
                FileContent::Explicit(v) => {
                    h.write_bytes(&[1]);
                    h.write_u64(v.len() as u64);
                    h.write_bytes(v);
                }
            }
        }
        h.write_u64(self.names.len() as u64);
        for (name, id) in &self.names {
            h.write_str(name);
            h.write_u64(id.0);
        }
    }
}

/// Disk timing: average positioning (seek + rotation) plus sequential
/// transfer, representative of the paper's late-90s SCSI server disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average positioning time per access, in milliseconds.
    pub avg_position_ms: f64,
    /// Sequential transfer rate, MB/s.
    pub transfer_mb_s: f64,
}

impl DiskModel {
    /// The default model used by every experiment (DESIGN.md §4).
    pub fn default_late_90s() -> Self {
        DiskModel {
            avg_position_ms: 8.5,
            transfer_mb_s: 14.0,
        }
    }

    /// Service time for one access of `bytes`.
    pub fn access_time(&self, bytes: u64) -> SimTime {
        SimTime::from_ms(self.avg_position_ms)
            + SimTime::from_secs(bytes as f64 / (self.transfer_mb_s * 1_000_000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_reads_are_deterministic() {
        let mut fs = FileStore::new();
        let id = fs.create_synthetic("a", 1000, 42);
        let a = fs.read(id, 0, 1000).unwrap();
        let b = fs.read(id, 0, 1000).unwrap();
        assert_eq!(a, b);
        // An extent read equals the corresponding slice of a full read.
        let mid = fs.read(id, 100, 50).unwrap();
        assert_eq!(mid, &a[100..150]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut fs = FileStore::new();
        let a = fs.create_synthetic("a", 256, 1);
        let b = fs.create_synthetic("b", 256, 2);
        assert_ne!(fs.read(a, 0, 256), fs.read(b, 0, 256));
    }

    #[test]
    fn reads_clamp_to_eof() {
        let mut fs = FileStore::new();
        let id = fs.create("f", FileContent::Explicit(b"hello".to_vec()));
        assert_eq!(fs.read(id, 3, 100).unwrap(), b"lo");
        assert_eq!(fs.read(id, 10, 5).unwrap(), b"");
        assert!(fs.read(FileId(99), 0, 1).is_none());
    }

    #[test]
    fn write_grows_and_patches() {
        let mut fs = FileStore::new();
        let id = fs.create("f", FileContent::Explicit(b"hello".to_vec()));
        assert!(fs.write(id, 3, b"p!"));
        assert_eq!(fs.read(id, 0, 10).unwrap(), b"help!");
        assert!(fs.write(id, 6, b"x"));
        assert_eq!(fs.read(id, 0, 10).unwrap(), b"help!\0x");
    }

    #[test]
    fn synthetic_materializes_on_write() {
        let mut fs = FileStore::new();
        let id = fs.create_synthetic("f", 100, 7);
        let before = fs.read(id, 0, 100).unwrap();
        assert!(fs.write(id, 50, b"ZZZ"));
        let after = fs.read(id, 0, 100).unwrap();
        assert_eq!(&after[..50], &before[..50]);
        assert_eq!(&after[50..53], b"ZZZ");
        assert_eq!(&after[53..], &before[53..]);
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut fs = FileStore::new();
        let id = fs.create_synthetic("f", 100, 7);
        let before = fs.read(id, 0, 100).unwrap();
        // Shrinking stays synthetic: no materialization, same prefix.
        assert!(fs.truncate(id, 40));
        assert!(matches!(
            fs.read(id, 0, 100).as_deref(),
            Some(b) if b == &before[..40]
        ));
        assert_eq!(fs.len(id), Some(40));
        // Zero-extension materializes.
        assert!(fs.truncate(id, 50));
        let after = fs.read(id, 0, 50).unwrap();
        assert_eq!(&after[..40], &before[..40]);
        assert_eq!(&after[40..], &[0u8; 10]);
        // Explicit shrink.
        assert!(fs.truncate(id, 3));
        assert_eq!(fs.read(id, 0, 50).unwrap(), &before[..3]);
        assert!(!fs.truncate(FileId(99), 0));
    }

    #[test]
    fn lookup_by_name() {
        let mut fs = FileStore::new();
        let id = fs.create_synthetic("/docs/index.html", 512, 1);
        assert_eq!(fs.lookup("/docs/index.html"), Some(id));
        assert_eq!(fs.lookup("/nope"), None);
        assert_eq!(fs.len(id), Some(512));
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.total_bytes(), 512);
    }

    #[test]
    fn disk_model_times() {
        let d = DiskModel {
            avg_position_ms: 10.0,
            transfer_mb_s: 10.0,
        };
        // 1MB at 10MB/s = 100ms, plus 10ms positioning.
        let t = d.access_time(1_000_000);
        assert!((t.as_ms() - 110.0).abs() < 1e-6, "{t}");
    }
}

#![warn(missing_docs)]
//! File-system substrate: disk model, file store, metadata cache, and
//! the unified IO-Lite file cache (paper §3.5, §3.7, §4.2).
//!
//! The paper replaces the 4.4BSD unified buffer cache with the IO-Lite
//! file cache: "a data structure that maps triples of the form
//! ⟨file-id, offset, length⟩ to buffer aggregates that contain the
//! corresponding extent of file data". File-system code below the
//! block-oriented interface is unchanged; metadata stays in the "old"
//! buffer cache.
//!
//! This crate provides:
//!
//! * [`DiskModel`] + [`FileStore`] — a simulated disk: per-file contents
//!   (synthetic, deterministic, so multi-gigabyte trace data sets need no
//!   host memory) and a seek+transfer timing model.
//! * [`MetadataCache`] — the retained "old" buffer cache for metadata.
//! * [`UnifiedCache`] — the IO-Lite file cache over buffer aggregates,
//!   with snapshot-preserving writes, pinning for currently referenced
//!   entries, and pluggable replacement ([`Policy::Lru`] — which, with
//!   pin-awareness, is exactly the paper's default two-level rule — and
//!   [`Policy::Gds`], the Greedy Dual-Size policy Flash-Lite installs,
//!   §5). Built for scale: pinned and unpinned entries live in
//!   separate ordered indexes, so eviction is O(log n) no matter how
//!   many entries the network holds referenced (see the
//!   [`cache`] module docs for the full complexity contract).

pub mod cache;
pub mod disk;
pub mod meta;
pub mod ownership;
pub mod policy;
pub mod writeback;

pub use cache::{CacheKey, CacheStats, UnifiedCache};
pub use disk::{DiskModel, FileContent, FileId, FileStore};
pub use meta::MetadataCache;
pub use ownership::{home_shard, CacheOwnership};
pub use policy::Policy;
pub use writeback::{Staged, WritebackConfig, WritebackScheduler, WritebackStats};

//! Observational equivalence of the segregated-index `UnifiedCache`
//! against a scan-based reference model.
//!
//! The production cache keeps pinned and unpinned entries in separate
//! ordered indexes so `evict_one` is O(log n); the model below is the
//! pre-segregation implementation — one global priority queue and a
//! linear scan past pinned entries — with the same key-scoped pin
//! accounting. Under random operation sequences both must agree on
//! victim choice, stats, and residency (the §3.7 two-level rule and
//! the GDS/GDSF `L`-floor semantics are behaviour, not implementation
//! detail).

use std::collections::{BTreeSet, HashMap};

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
use iolite_fs::{CacheKey, CacheStats, FileId, Policy, UnifiedCache};
use proptest::prelude::*;

/// The scan-based reference: a single priority queue over all entries;
/// the victim search walks it linearly to skip pinned entries.
struct ScanCache {
    policy: Policy,
    budget: u64,
    entries: HashMap<CacheKey, (u64 /* len */, u64 /* ord */, u64 /* freq */)>,
    queue: BTreeSet<(u64, CacheKey)>,
    pin_counts: HashMap<CacheKey, u32>,
    clock: u64,
    gds_l: u64,
    resident: u64,
    stats: CacheStats,
}

impl ScanCache {
    fn new(policy: Policy, budget: u64) -> Self {
        ScanCache {
            policy,
            budget,
            entries: HashMap::new(),
            queue: BTreeSet::new(),
            pin_counts: HashMap::new(),
            clock: 0,
            gds_l: 0,
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    fn order_key(&self, len: u64, freq: u64) -> u64 {
        // The model shares the production priority formula — the
        // behaviour under test is the *victim search*, not the formula.
        self.policy.order_key(self.clock, self.gds_l, len, freq)
    }

    fn lookup(&mut self, key: &CacheKey) -> Option<u64> {
        self.clock += 1;
        if let Some((len, ord, freq)) = self.entries.get(key).copied() {
            self.queue.remove(&(ord, *key));
            let freq = freq + 1;
            let ord = self.order_key(len, freq);
            self.entries.insert(*key, (len, ord, freq));
            self.queue.insert((ord, *key));
            self.stats.hits += 1;
            self.stats.bytes_hit += len;
            Some(len)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: CacheKey, len: u64) -> Vec<CacheKey> {
        self.clock += 1;
        self.remove(&key);
        let ord = self.order_key(len, 1);
        self.entries.insert(key, (len, ord, 1));
        self.queue.insert((ord, key));
        self.resident += len;
        self.stats.insertions += 1;
        self.enforce_budget()
    }

    fn remove(&mut self, key: &CacheKey) -> Option<u64> {
        let (len, ord, _) = self.entries.remove(key)?;
        self.queue.remove(&(ord, *key));
        self.resident -= len;
        Some(len)
    }

    fn replace_for_write(&mut self, key: &CacheKey) -> Option<u64> {
        let out = self.remove(key);
        if out.is_some() {
            self.stats.write_replacements += 1;
        }
        out
    }

    fn pin(&mut self, key: &CacheKey) {
        *self.pin_counts.entry(*key).or_insert(0) += 1;
    }

    fn unpin(&mut self, key: &CacheKey) {
        if let Some(c) = self.pin_counts.get_mut(key) {
            *c -= 1;
            if *c == 0 {
                self.pin_counts.remove(key);
            }
        }
    }

    fn pins(&self, key: &CacheKey) -> u32 {
        self.pin_counts.get(key).copied().unwrap_or(0)
    }

    fn set_budget(&mut self, budget: u64) -> Vec<CacheKey> {
        self.budget = budget;
        self.enforce_budget()
    }

    fn enforce_budget(&mut self) -> Vec<CacheKey> {
        let mut evicted = Vec::new();
        while self.resident > self.budget {
            match self.evict_one() {
                Some(k) => evicted.push(k),
                None => break,
            }
        }
        evicted
    }

    /// The pre-segregation victim search: O(n) scan for the first
    /// unpinned entry in global priority order, else the global head.
    fn evict_one(&mut self) -> Option<CacheKey> {
        let victim = self
            .queue
            .iter()
            .find(|(_, k)| !self.pin_counts.contains_key(k))
            .or_else(|| self.queue.iter().next())
            .copied()?;
        let (ord, key) = victim;
        if self.pin_counts.contains_key(&key) {
            self.stats.pinned_evictions += 1;
        }
        if matches!(self.policy, Policy::Gds | Policy::Gdsf) {
            self.gds_l = ord;
        }
        self.stats.evictions += 1;
        self.remove(&key)?;
        Some(key)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Lookup(u8),
    Remove(u8),
    ReplaceForWrite(u8),
    Pin(u8),
    Unpin(u8),
    SetBudget(u32),
    EvictOne,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Insert),
        any::<u8>().prop_map(Op::Lookup),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::ReplaceForWrite),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        (0u32..1 << 18).prop_map(Op::SetBudget),
        Just(Op::EvictOne),
    ]
}

/// Entry sizes vary with key and version so GDS/GDSF priorities differ
/// across keys and across re-insertions of the same key.
fn len_for(key: u8, version: u64) -> u64 {
    64 + (key as u64 % 13) * 100 + (version % 7) * 33
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The segregated-index cache and the scan-based model agree on
    /// victim choice, stats, pin counts, and residency over arbitrary
    /// operation sequences under every policy.
    #[test]
    fn segregated_index_matches_scan_model(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        policy in prop_oneof![Just(Policy::Lru), Just(Policy::Gds), Just(Policy::Gdsf)],
    ) {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        let mut real = UnifiedCache::new(policy, 1 << 18);
        let mut model = ScanCache::new(policy, 1 << 18);
        let mut version = 0u64;

        for op in &ops {
            match op {
                Op::Insert(k) => {
                    version += 1;
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    let len = len_for(*k % 24, version);
                    let evicted_real: Vec<CacheKey> = real
                        .insert(key, Aggregate::from_bytes(&pool, &vec![0xC3; len as usize]))
                        .into_iter()
                        .map(|(k, _)| k)
                        .collect();
                    let evicted_model = model.insert(key, len);
                    prop_assert_eq!(evicted_real, evicted_model);
                }
                Op::Lookup(k) => {
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    let got = real.lookup(&key).map(|a| a.len());
                    prop_assert_eq!(got, model.lookup(&key));
                }
                Op::Remove(k) => {
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    let got = real.remove(&key).map(|a| a.len());
                    prop_assert_eq!(got, model.remove(&key));
                }
                Op::ReplaceForWrite(k) => {
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    let got = real.replace_for_write(&key).map(|a| a.len());
                    prop_assert_eq!(got, model.replace_for_write(&key));
                }
                Op::Pin(k) => {
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    real.pin(&key);
                    model.pin(&key);
                    prop_assert_eq!(real.pins(&key), model.pins(&key));
                }
                Op::Unpin(k) => {
                    let key = CacheKey::whole(FileId(*k as u64 % 24));
                    real.unpin(&key);
                    model.unpin(&key);
                    prop_assert_eq!(real.pins(&key), model.pins(&key));
                }
                Op::SetBudget(b) => {
                    let evicted_real: Vec<CacheKey> = real
                        .set_budget(*b as u64)
                        .into_iter()
                        .map(|(k, _)| k)
                        .collect();
                    prop_assert_eq!(evicted_real, model.set_budget(*b as u64));
                }
                Op::EvictOne => {
                    let got = real.evict_one().map(|(k, _)| k);
                    prop_assert_eq!(got, model.evict_one());
                }
            }
            // Invariants after every step: identical observable state.
            prop_assert_eq!(real.stats(), model.stats);
            prop_assert_eq!(real.resident_bytes(), model.resident);
            prop_assert_eq!(real.len(), model.entries.len());
        }
    }
}

//! Property tests for the unified file cache: snapshot semantics,
//! budget discipline, and policy invariants under random operation
//! sequences.

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Lookup(u8),
    Remove(u8),
    Pin(u8),
    Unpin(u8),
    SetBudget(u32),
    EvictOne,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Insert),
        any::<u8>().prop_map(Op::Lookup),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        (0u32..1 << 20).prop_map(Op::SetBudget),
        Just(Op::EvictOne),
    ]
}

fn value_for(key: u8, version: u32) -> Vec<u8> {
    format!("file-{key}-v{version}-")
        .into_bytes()
        .repeat(3 + key as usize % 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the operation sequence, a lookup returns exactly the
    /// last inserted value for that key, and residency never exceeds
    /// budget unless pins force it.
    #[test]
    fn cache_is_a_map_with_budget(ops in proptest::collection::vec(op_strategy(), 1..200),
                                  policy in prop_oneof![Just(Policy::Lru), Just(Policy::Gds)]) {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        let mut cache = UnifiedCache::new(policy, 1 << 20);
        let mut versions = std::collections::HashMap::new();
        let mut pins: std::collections::HashMap<u8, u32> = std::collections::HashMap::new();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k) => {
                    let v = i as u32;
                    versions.insert(*k, v);
                    let agg = Aggregate::from_bytes(&pool, &value_for(*k, v));
                    cache.insert(CacheKey::whole(FileId(*k as u64)), agg);
                }
                Op::Lookup(k) => {
                    if let Some(agg) = cache.lookup(&CacheKey::whole(FileId(*k as u64))) {
                        let v = versions.get(k).expect("hit implies inserted");
                        prop_assert_eq!(agg.to_vec(), value_for(*k, *v));
                    }
                }
                Op::Remove(k) => {
                    cache.remove(&CacheKey::whole(FileId(*k as u64)));
                }
                Op::Pin(k) => {
                    if cache.contains(&CacheKey::whole(FileId(*k as u64))) {
                        cache.pin(&CacheKey::whole(FileId(*k as u64)));
                        *pins.entry(*k).or_default() += 1;
                    }
                }
                Op::Unpin(k) => {
                    cache.unpin(&CacheKey::whole(FileId(*k as u64)));
                    if let Some(p) = pins.get_mut(k) {
                        *p = p.saturating_sub(1);
                    }
                }
                Op::SetBudget(b) => {
                    cache.set_budget(*b as u64);
                }
                Op::EvictOne => {
                    cache.evict_one();
                }
            }
            // Residency accounting is exact.
            let keys: Vec<CacheKey> = cache.keys().copied().collect();
            let manual: u64 = keys
                .iter()
                .map(|k| cache.lookup(k).map(|a| a.len()).unwrap_or(0))
                .sum();
            prop_assert_eq!(manual, cache.resident_bytes());
        }
    }

    /// Snapshots taken before overwrites and evictions keep their bytes.
    #[test]
    fn snapshots_are_immortal(n_updates in 1usize..20) {
        let pool = BufferPool::new(PoolId(2), Acl::kernel_only(), 64 * 1024);
        let mut cache = UnifiedCache::new(Policy::Lru, 1 << 20);
        let key = CacheKey::whole(FileId(1));
        let mut snapshots = Vec::new();
        for v in 0..n_updates as u32 {
            cache.insert(key, Aggregate::from_bytes(&pool, &value_for(1, v)));
            snapshots.push((v, cache.lookup(&key).unwrap()));
        }
        cache.set_budget(0);
        for (v, snap) in &snapshots {
            prop_assert_eq!(snap.to_vec(), value_for(1, *v));
        }
    }
}

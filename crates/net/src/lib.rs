#![warn(missing_docs)]
//! Network subsystem: mbufs over IO-Lite buffers, Internet checksum
//! caching, early demultiplexing, and a TCP connection model (paper
//! §3.6, §3.9, §4.1).
//!
//! The paper adapts the BSD network stack by pointing mbufs' out-of-line
//! data at IO-Lite buffers: "small data items such as network packet
//! headers are still stored inline in mbufs, but the performance-critical
//! bulk data reside in IO-Lite buffers". Two cross-subsystem mechanisms
//! ride on that:
//!
//! * **Checksum caching** (§3.9): the Internet checksum module caches the
//!   sum for each ⟨buffer, generation, range⟩; retransmitting a hot
//!   document costs no data-touching at all. The cache is bounded by
//!   per-entry second-chance (CLOCK) eviction, so the hot-document
//!   working set survives cold-tail traffic.
//! * **Early demultiplexing** (§3.6): a packet filter maps incoming
//!   packets to their I/O stream *before* the payload is stored, so it
//!   can be placed directly into a buffer with the right ACL.
//!
//! [`TcpConn`] models a connection's send path: real segment
//! construction over mbuf chains, checksum computation (cache-aware in
//! zero-copy mode), socket-buffer occupancy (copies vs references — the
//! double-buffering distinction that drives the WAN experiment of §5.7),
//! and window-limited throughput.

pub mod checksum;
pub mod cksum_cache;
pub mod filter;
pub mod mbuf;
pub mod packet;
pub mod reassembly;
pub mod rx;
pub mod tcp;

pub use checksum::{combine, internet_checksum, slice_sum};
pub use cksum_cache::{ChecksumCache, CksumCacheStats};
pub use filter::{FilterRule, PacketFilter, StreamId};
pub use mbuf::{Mbuf, MbufChain, MbufData};
pub use packet::{SegmentHeader, MAX_SEGMENT_PAYLOAD, TCP_IP_HEADER_BYTES};
pub use reassembly::{ReassemblyStats, TcpReceiver};
pub use rx::{RxPath, RxStats};
pub use tcp::{BufferMode, SendOutcome, TcpConn};

/// Default TCP maximum segment size on the paper's Fast Ethernet.
pub const DEFAULT_MSS: usize = 1460;

/// Default socket send-buffer size: "All Web servers were configured to
/// use a TCP socket send buffer size of 64KB" (§5).
pub const DEFAULT_TSS: usize = 64 * 1024;

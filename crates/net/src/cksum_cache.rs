//! The Internet checksum cache (§3.9).
//!
//! "IO-Lite provides with each buffer a generation number ... this
//! generation number, combined with the buffer's address, provides a
//! systemwide unique identifier for the contents of the buffer", which
//! lets TCP reuse a previously computed checksum whenever the same slice
//! is transmitted again — eliminating "the only remaining data-touching
//! operation on the critical I/O path" for cached documents.

use std::collections::HashMap;

use iolite_buf::{BufferId, Generation, Slice};

use crate::checksum::{slice_sum, PartialSum};

/// Cache key: the systemwide-unique content identifier of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    buffer: BufferId,
    generation: Generation,
    offset: u32,
    len: u32,
}

impl Key {
    fn of(s: &Slice) -> Key {
        Key {
            buffer: s.id(),
            generation: s.generation(),
            offset: s.offset_in_buffer() as u32,
            len: s.len() as u32,
        }
    }
}

/// Cache effectiveness counters; the cost model charges data-touching
/// time only for [`CksumCacheStats::bytes_computed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CksumCacheStats {
    /// Slice sums served from cache.
    pub hits: u64,
    /// Slice sums computed (and inserted).
    pub misses: u64,
    /// Bytes whose checksum came for free.
    pub bytes_cached: u64,
    /// Bytes actually touched by the checksum loop.
    pub bytes_computed: u64,
}

/// A bounded map from slice identity to its partial checksum.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_net::ChecksumCache;
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
/// let agg = Aggregate::from_bytes(&pool, b"hot document");
/// let mut cache = ChecksumCache::new(1024);
/// let s = &agg.slice_at(0);
/// let first = cache.sum_for(s);
/// let second = cache.sum_for(s);
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct ChecksumCache {
    capacity: usize,
    enabled: bool,
    map: HashMap<Key, PartialSum>,
    stats: CksumCacheStats,
}

impl ChecksumCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ChecksumCache {
            capacity: capacity.max(1),
            enabled: true,
            map: HashMap::new(),
            stats: CksumCacheStats::default(),
        }
    }

    /// Enables or disables caching (the Fig. 11 ablation switch).
    /// Disabled, every request recomputes — exactly the conventional
    /// network stack's behaviour.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the partial sum for a slice, from cache when possible.
    pub fn sum_for(&mut self, s: &Slice) -> PartialSum {
        if !self.enabled {
            self.stats.misses += 1;
            self.stats.bytes_computed += s.len() as u64;
            return slice_sum(s);
        }
        let key = Key::of(s);
        if let Some(&sum) = self.map.get(&key) {
            self.stats.hits += 1;
            self.stats.bytes_cached += s.len() as u64;
            return sum;
        }
        let sum = slice_sum(s);
        self.stats.misses += 1;
        self.stats.bytes_computed += s.len() as u64;
        if self.map.len() >= self.capacity {
            // Cheap bounded behaviour: drop everything rather than track
            // LRU; the working set re-warms in one pass. (The prototype's
            // cache is similarly simple — one entry per buffer.)
            self.map.clear();
        }
        self.map.insert(key, sum);
        sum
    }

    /// Counters so far.
    pub fn stats(&self) -> CksumCacheStats {
        self.stats
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};

    fn slice(pool: &BufferPool, data: &[u8]) -> Slice {
        Aggregate::from_bytes(pool, data).slice_at(0).clone()
    }

    #[test]
    fn second_transmission_hits() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"document body");
        let mut c = ChecksumCache::new(16);
        let a = c.sum_for(&s);
        let b = c.sum_for(&s);
        assert_eq!(a, b);
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(st.bytes_cached, 13);
        assert_eq!(st.bytes_computed, 13);
    }

    #[test]
    fn different_subranges_are_distinct_keys() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"abcdefgh");
        let mut c = ChecksumCache::new(16);
        c.sum_for(&s);
        let sub = s.sub(0, 4).unwrap();
        c.sum_for(&sub);
        assert_eq!(
            c.stats().misses,
            2,
            "sub-range must not hit whole-slice sum"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recycled_buffer_generation_prevents_stale_hit() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64);
        let mut c = ChecksumCache::new(16);
        // Fill the chunk completely so recycling reuses the same address.
        let s1 = slice(&pool, &[0x11; 64]);
        let id1 = (s1.id(), s1.generation());
        let sum1 = c.sum_for(&s1);
        drop(s1);
        let s2 = slice(&pool, &[0x22; 64]);
        assert_eq!(s2.id(), id1.0, "address must be reused for this test");
        assert_ne!(s2.generation(), id1.1);
        let sum2 = c.sum_for(&s2);
        assert_ne!(sum1.sum, sum2.sum);
        assert_eq!(c.stats().hits, 0, "no stale hit across generations");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"body");
        let mut c = ChecksumCache::new(16);
        c.set_enabled(false);
        c.sum_for(&s);
        c.sum_for(&s);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().bytes_computed, 8);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_bound_holds() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let mut c = ChecksumCache::new(4);
        let slices: Vec<Slice> = (0..10).map(|i| slice(&pool, &[i as u8; 8])).collect();
        for s in &slices {
            c.sum_for(s);
        }
        assert!(c.len() <= 4);
    }
}

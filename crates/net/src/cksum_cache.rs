//! The Internet checksum cache (§3.9).
//!
//! "IO-Lite provides with each buffer a generation number ... this
//! generation number, combined with the buffer's address, provides a
//! systemwide unique identifier for the contents of the buffer", which
//! lets TCP reuse a previously computed checksum whenever the same slice
//! is transmitted again — eliminating "the only remaining data-touching
//! operation on the critical I/O path" for cached documents.
//!
//! The cache is bounded by real per-entry eviction (second-chance /
//! CLOCK over the entry table): when a cold slice arrives at a full
//! cache, it replaces the least-recently-referenced entry instead of
//! flushing the whole map, so the hot-document working set survives
//! cold-tail traffic. Hits are O(1); replacement is amortized O(1)
//! (one hand sweep can clear up to a full table of reference bits).

use std::collections::HashMap;

use iolite_buf::{BufferId, Generation, PoolId, Slice};

use crate::checksum::{slice_sum, PartialSum};

/// Cache key: the systemwide-unique content identifier of a slice.
///
/// Offsets and lengths are kept at full `u64` width: two distinct
/// slices ≥4 GiB apart in one buffer must never collide, since a
/// collision serves a stale checksum on the wire. The pool id is part
/// of the key for the same reason — chunk ids and generations are
/// per-pool counters, so slices from two pools can otherwise share a
/// ⟨buffer, generation⟩ pair while holding different bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pool: PoolId,
    buffer: BufferId,
    generation: Generation,
    offset: u64,
    len: u64,
}

impl Key {
    fn of(s: &Slice) -> Key {
        Key {
            pool: s.pool(),
            buffer: s.id(),
            generation: s.generation(),
            offset: s.offset_in_buffer() as u64,
            len: s.len() as u64,
        }
    }
}

/// One resident checksum with its CLOCK reference bit.
#[derive(Debug, Clone)]
struct Slot {
    key: Key,
    sum: PartialSum,
    referenced: bool,
}

/// Cache effectiveness counters; the cost model charges data-touching
/// time only for [`CksumCacheStats::bytes_computed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CksumCacheStats {
    /// Slice sums served from cache.
    pub hits: u64,
    /// Slice sums computed (and inserted).
    pub misses: u64,
    /// Bytes whose checksum came for free.
    pub bytes_cached: u64,
    /// Bytes actually touched by the checksum loop.
    pub bytes_computed: u64,
    /// Entries replaced by the CLOCK hand to admit new slices.
    pub evictions: u64,
    /// Entries dropped because their underlying buffers were retired by
    /// a write (PUT over a cached file): a stale sum must never be
    /// served, and a dead-version entry must not pollute the bounded
    /// table.
    pub invalidations: u64,
}

/// A bounded map from slice identity to its partial checksum.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_net::ChecksumCache;
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
/// let agg = Aggregate::from_bytes(&pool, b"hot document");
/// let mut cache = ChecksumCache::new(1024);
/// let s = &agg.slice_at(0);
/// let first = cache.sum_for(s);
/// let second = cache.sum_for(s);
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChecksumCache {
    capacity: usize,
    enabled: bool,
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    hand: usize,
    stats: CksumCacheStats,
}

impl ChecksumCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ChecksumCache {
            capacity: capacity.max(1),
            enabled: true,
            // Grows lazily alongside `slots`: the kernel default is
            // 2¹⁶ entries, which would be megabytes if preallocated.
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            stats: CksumCacheStats::default(),
        }
    }

    /// Enables or disables caching (the Fig. 11 ablation switch).
    /// Disabled, every request recomputes — exactly the conventional
    /// network stack's behaviour.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the partial sum for a slice, from cache when possible.
    pub fn sum_for(&mut self, s: &Slice) -> PartialSum {
        if !self.enabled {
            self.stats.misses += 1;
            self.stats.bytes_computed += s.len() as u64;
            return slice_sum(s);
        }
        let key = Key::of(s);
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].referenced = true;
            self.stats.hits += 1;
            self.stats.bytes_cached += s.len() as u64;
            return self.slots[idx].sum;
        }
        let sum = slice_sum(s);
        self.stats.misses += 1;
        self.stats.bytes_computed += s.len() as u64;
        if self.slots.len() < self.capacity {
            self.map.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                sum,
                referenced: false,
            });
        } else {
            // Second chance: sweep the hand past recently referenced
            // slots (clearing their bits) to the first unreferenced one,
            // and replace it. Terminates within two sweeps.
            while self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            }
            let slot = &mut self.slots[self.hand];
            self.map.remove(&slot.key);
            self.map.insert(key, self.hand);
            slot.key = key;
            slot.sum = sum;
            slot.referenced = false;
            self.stats.evictions += 1;
            self.hand = (self.hand + 1) % self.capacity;
        }
        sum
    }

    /// Drops every cached checksum computed over any buffer of `agg`'s
    /// slices — whole-slice sums and sub-range sums alike (send windows
    /// cache arbitrary subranges, so matching must be by buffer
    /// identity ⟨pool, buffer, generation⟩, not by exact key).
    ///
    /// This is the mutation hook (§3.5 meets §3.9): when a write
    /// replaces a cached aggregate, the replaced buffers' checksums are
    /// dead weight at best — and, should a buffer be recycled into a
    /// same-generation identity by a snapshot-restoring test harness, a
    /// stale hit at worst. Returns the number of entries removed.
    pub fn invalidate_aggregate(&mut self, agg: &iolite_buf::Aggregate) -> u64 {
        if self.map.is_empty() {
            return 0;
        }
        let mut removed = 0u64;
        for s in agg.slices() {
            let (pool, buffer, generation) = (s.pool(), s.id(), s.generation());
            // Collect-then-remove: at most a handful of entries per
            // buffer, and the table is bounded.
            let victims: Vec<Key> = self
                .map
                .keys()
                .filter(|k| {
                    k.pool == pool && k.buffer == buffer && k.generation == generation
                })
                .copied()
                .collect();
            for key in victims {
                let idx = self.map.remove(&key).expect("collected from map");
                // Compact the slot table: move the last slot into the
                // hole (deterministic — same op sequence, same layout).
                let last = self.slots.len() - 1;
                if idx != last {
                    self.slots.swap(idx, last);
                    *self
                        .map
                        .get_mut(&self.slots[idx].key)
                        .expect("moved slot is mapped") = idx;
                }
                self.slots.pop();
                removed += 1;
            }
        }
        if removed > 0 {
            self.stats.invalidations += removed;
            // The hand may now point past the shortened table.
            if self.slots.is_empty() {
                self.hand = 0;
            } else {
                self.hand %= self.slots.len();
            }
        }
        removed
    }

    /// Counters so far.
    pub fn stats(&self) -> CksumCacheStats {
        self.stats
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds the cache's state into a stable digest. Slot order is the
    /// table's physical order (deterministic: admissions and the CLOCK
    /// hand are sequential), so no sorting is needed.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.capacity as u64);
        h.write_bool(self.enabled);
        h.write_u64(self.hand as u64);
        for v in [
            self.stats.hits,
            self.stats.misses,
            self.stats.bytes_cached,
            self.stats.bytes_computed,
            self.stats.evictions,
            self.stats.invalidations,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.slots.len() as u64);
        for slot in &self.slots {
            h.write_u32(slot.key.pool.0);
            h.write_u64(slot.key.buffer.chunk.0);
            h.write_u32(slot.key.buffer.offset);
            h.write_u64(slot.key.generation.0);
            h.write_u64(slot.key.offset);
            h.write_u64(slot.key.len);
            h.write_u32(slot.sum.sum as u32);
            h.write_u64(slot.sum.len);
            h.write_bool(slot.referenced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, Aggregate, BufferPool, ChunkId, PoolId};

    fn slice(pool: &BufferPool, data: &[u8]) -> Slice {
        Aggregate::from_bytes(pool, data).slice_at(0).clone()
    }

    #[test]
    fn second_transmission_hits() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"document body");
        let mut c = ChecksumCache::new(16);
        let a = c.sum_for(&s);
        let b = c.sum_for(&s);
        assert_eq!(a, b);
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(st.bytes_cached, 13);
        assert_eq!(st.bytes_computed, 13);
    }

    #[test]
    fn different_subranges_are_distinct_keys() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"abcdefgh");
        let mut c = ChecksumCache::new(16);
        c.sum_for(&s);
        let sub = s.sub(0, 4).unwrap();
        c.sum_for(&sub);
        assert_eq!(
            c.stats().misses,
            2,
            "sub-range must not hit whole-slice sum"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recycled_buffer_generation_prevents_stale_hit() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64);
        let mut c = ChecksumCache::new(16);
        // Fill the chunk completely so recycling reuses the same address.
        let s1 = slice(&pool, &[0x11; 64]);
        let id1 = (s1.id(), s1.generation());
        let sum1 = c.sum_for(&s1);
        drop(s1);
        let s2 = slice(&pool, &[0x22; 64]);
        assert_eq!(s2.id(), id1.0, "address must be reused for this test");
        assert_ne!(s2.generation(), id1.1);
        let sum2 = c.sum_for(&s2);
        assert_ne!(sum1.sum, sum2.sum);
        assert_eq!(c.stats().hits, 0, "no stale hit across generations");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let s = slice(&pool, b"body");
        let mut c = ChecksumCache::new(16);
        c.set_enabled(false);
        c.sum_for(&s);
        c.sum_for(&s);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().bytes_computed, 8);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_bound_holds() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let mut c = ChecksumCache::new(4);
        let slices: Vec<Slice> = (0..10).map(|i| slice(&pool, &[i as u8; 8])).collect();
        for s in &slices {
            c.sum_for(s);
        }
        assert!(c.len() <= 4);
        assert_eq!(c.stats().evictions, 6, "each overflow replaces one entry");
    }

    /// Regression: the old clear-all bound dropped the entire map when a
    /// single cold slice overflowed it. A recently referenced hot slice
    /// must survive an arbitrary stream of one-off cold slices.
    #[test]
    fn hot_slice_survives_cold_overflow() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        let hot = slice(&pool, &[0x5A; 100]);
        let mut c = ChecksumCache::new(8);
        c.sum_for(&hot);
        let cold: Vec<Slice> = (0..64).map(|i| slice(&pool, &[i as u8; 16])).collect();
        for (i, s) in cold.iter().enumerate() {
            c.sum_for(s);
            if i % 3 == 0 {
                // Retransmission keeps the hot entry's reference bit set.
                let computed = c.stats().bytes_computed;
                c.sum_for(&hot);
                assert_eq!(
                    c.stats().bytes_computed,
                    computed,
                    "hot slice recomputed after {i} cold slices"
                );
            }
        }
        assert!(c.len() <= 8);
        // Every hot access after the first was a hit.
        assert_eq!(c.stats().bytes_computed as usize, 100 + 64 * 16);
    }

    /// Regression: `Key` used to truncate `offset_in_buffer`/`len` to
    /// `u32`, so two distinct slices ≥4 GiB apart in one buffer (or
    /// whose lengths differ by a multiple of 2³²) collided and served a
    /// stale checksum on the wire. Keys are synthesized directly: no
    /// test can allocate a 4 GiB buffer, but the collision was purely a
    /// property of the key arithmetic.
    #[test]
    fn distant_subranges_do_not_collide_under_truncation() {
        let pool = PoolId(1);
        let buffer = BufferId {
            chunk: ChunkId(1),
            offset: 0,
        };
        let generation = Generation(1);
        let near = Key {
            pool,
            buffer,
            generation,
            offset: 0,
            len: 1460,
        };
        let far = Key {
            pool,
            buffer,
            generation,
            offset: 1 << 32,
            len: 1460,
        };
        let long = Key {
            pool,
            buffer,
            generation,
            offset: 0,
            len: (1u64 << 32) + 1460,
        };
        // These are exactly the pairs `as u32` used to conflate.
        assert_eq!(near.offset as u32, far.offset as u32);
        assert_eq!(near.len as u32, long.len as u32);
        assert_ne!(near, far);
        assert_ne!(near, long);
        // And a map keyed on them keeps the sums distinct.
        let mut map = HashMap::new();
        map.insert(near, 1u16);
        map.insert(far, 2u16);
        map.insert(long, 3u16);
        assert_eq!(map.len(), 3);
        assert_eq!(map[&near], 1);
    }

    /// Regression: chunk ids and generations are per-pool counters, so
    /// the first allocation of every pool is ⟨chunk 0, offset 0,
    /// generation 0⟩. Two pools' same-length first slices must not
    /// share a checksum entry (e.g. two CGI instances, each with its
    /// own pool, §3.10).
    #[test]
    fn different_pools_do_not_collide() {
        let a = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let b = BufferPool::new(PoolId(2), Acl::kernel_only(), 4096);
        let sa = slice(&a, &[0x11; 64]);
        let sb = slice(&b, &[0x22; 64]);
        assert_eq!(sa.id(), sb.id(), "per-pool ids must coincide for this test");
        assert_eq!(sa.generation(), sb.generation());
        let mut c = ChecksumCache::new(16);
        let sum_a = c.sum_for(&sa);
        let sum_b = c.sum_for(&sb);
        assert_ne!(sum_a.sum, sum_b.sum, "no stale cross-pool checksum");
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.len(), 2);
    }

    /// A write retires the cached aggregate's buffers: every checksum
    /// over them — whole-slice and sub-range — must leave the table, so
    /// the next transmission recomputes instead of hitting, while
    /// unrelated entries survive untouched.
    #[test]
    fn invalidate_aggregate_drops_all_subranges() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let doc = Aggregate::from_bytes(&pool, b"cached document body");
        let other = slice(&pool, b"unrelated");
        let mut c = ChecksumCache::new(16);
        let s = doc.slice_at(0);
        c.sum_for(s);
        c.sum_for(&s.sub(0, 6).unwrap());
        c.sum_for(&s.sub(3, 9).unwrap());
        c.sum_for(&other);
        assert_eq!(c.len(), 4);
        let removed = c.invalidate_aggregate(&doc);
        assert_eq!(removed, 3, "whole slice plus both send-window subranges");
        assert_eq!(c.len(), 1, "the unrelated entry survives");
        assert_eq!(c.stats().invalidations, 3);
        // The next access over the (now logically stale) slice must be
        // a recompute, not a hit.
        let computed = c.stats().bytes_computed;
        c.sum_for(s);
        assert!(c.stats().bytes_computed > computed);
        let hits = c.stats().hits;
        c.sum_for(&other);
        assert_eq!(c.stats().hits, hits + 1, "survivor still hits");
        // Invalidating an aggregate with no cached sums is a no-op.
        assert_eq!(c.invalidate_aggregate(&doc), 1, "re-admitted whole sum");
        assert_eq!(c.invalidate_aggregate(&doc), 0);
    }

    /// CLOCK gives one-shot entries a second chance only when
    /// re-referenced: a scan that reuses nothing cycles through the
    /// table without disturbing entries whose bits are set.
    #[test]
    fn clock_hand_skips_referenced_entries() {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
        let mut c = ChecksumCache::new(4);
        let keep: Vec<Slice> = (0..3).map(|i| slice(&pool, &[0xF0 + i as u8; 24])).collect();
        for s in &keep {
            c.sum_for(s);
        }
        // Re-reference all three: their bits are set.
        for s in &keep {
            c.sum_for(s);
        }
        // Two cold slices overflow the 4-entry table; each eviction must
        // take the single unreferenced slot (the previous cold entry),
        // never one of the referenced hot three... as long as the hot
        // set is re-referenced between overflows.
        for i in 0..8u8 {
            c.sum_for(&slice(&pool, &[i; 12]));
            for s in &keep {
                c.sum_for(s);
            }
        }
        let st = c.stats();
        // 3 first-touch computes + 8 cold computes; every other access hit.
        assert_eq!(st.misses, 11);
        assert_eq!(st.bytes_computed as usize, 3 * 24 + 8 * 12);
    }
}

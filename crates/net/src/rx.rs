//! The receive path: early demultiplexing into the right pool (§3.6).
//!
//! "To avoid copying, drivers must determine this information from the
//! headers of incoming packets using a packet filter, an operation known
//! as early demultiplexing. ... With IO-Lite, as with fbufs, early
//! demultiplexing is necessary for best performance."
//!
//! [`RxPath`] models the driver's decision: a packet whose stream the
//! filter identifies is stored *directly* into that stream's pool (no
//! copy); an unmatched packet (or a disabled filter — the conventional
//! driver) lands in an anonymous kernel buffer and owes one copy when
//! its destination becomes known.

use std::collections::HashMap;

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};

use crate::filter::{PacketFilter, StreamId};
use crate::packet::SegmentHeader;

/// Accounting for received data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxStats {
    /// Packets placed directly in their stream's pool.
    pub direct: u64,
    /// Packets that took the anonymous-buffer path.
    pub indirect: u64,
    /// Payload bytes copied because demux failed (the §3.6 penalty).
    pub bytes_copied: u64,
}

/// The driver's receive path: filter + per-stream pools.
pub struct RxPath {
    filter: PacketFilter,
    pools: HashMap<StreamId, BufferPool>,
    /// Anonymous kernel buffers for unmatched packets.
    anon_pool: BufferPool,
    stats: RxStats,
}

impl RxPath {
    /// Creates a receive path with an empty filter.
    pub fn new() -> Self {
        RxPath {
            filter: PacketFilter::new(),
            pools: HashMap::new(),
            anon_pool: BufferPool::new(
                PoolId(u32::MAX - 1),
                Acl::kernel_only(),
                iolite_buf::DEFAULT_CHUNK_SIZE,
            ),
            stats: RxStats::default(),
        }
    }

    /// The packet filter (install rules, toggle for the ablation).
    pub fn filter_mut(&mut self) -> &mut PacketFilter {
        &mut self.filter
    }

    /// Registers the pool receiving a stream's payloads.
    pub fn bind_stream(&mut self, stream: StreamId, pool: BufferPool) {
        self.pools.insert(stream, pool);
    }

    /// Receives one packet: returns the payload as an aggregate in the
    /// *correct* pool, plus whether a copy was required.
    ///
    /// The payload always ends up with the right ACL; the difference is
    /// purely whether it got there zero-copy (early demux hit) or via an
    /// anonymous buffer and one copy (miss / disabled filter).
    pub fn receive(&mut self, header: &SegmentHeader, payload: &[u8]) -> (Aggregate, bool) {
        match self.filter.demux(header).and_then(|s| self.pools.get(&s)) {
            Some(pool) => {
                self.stats.direct += 1;
                (Aggregate::from_bytes(pool, payload), false)
            }
            None => {
                // Anonymous landing buffer, then a copy into the right
                // pool once the socket layer resolves the destination.
                self.stats.indirect += 1;
                let anon = Aggregate::from_bytes(&self.anon_pool, payload);
                let dest = self
                    .pools
                    .values()
                    .next()
                    .cloned()
                    .unwrap_or_else(|| self.anon_pool.clone());
                let copied = anon.pack(&dest);
                self.stats.bytes_copied += payload.len() as u64;
                (copied, true)
            }
        }
    }

    /// Receive-path counters.
    pub fn stats(&self) -> RxStats {
        self.stats
    }
}

impl Default for RxPath {
    fn default() -> Self {
        RxPath::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterRule;
    use iolite_buf::DomainId;

    fn header(dst_port: u16) -> SegmentHeader {
        SegmentHeader {
            src_ip: 1,
            dst_ip: 2,
            src_port: 9999,
            dst_port,
            seq: 0,
            ack: 0,
            flags: 0x18,
            payload_len: 5,
        }
    }

    fn rx_with_rule() -> RxPath {
        let mut rx = RxPath::new();
        rx.filter_mut().add_rule(FilterRule {
            dst_port: 80,
            src_ip: None,
            src_port: None,
            stream: StreamId(1),
        });
        let pool = BufferPool::new(PoolId(5), Acl::with_domain(DomainId(3)), 64 * 1024);
        rx.bind_stream(StreamId(1), pool);
        rx
    }

    #[test]
    fn matched_packet_lands_zero_copy_in_right_pool() {
        let mut rx = rx_with_rule();
        let (agg, copied) = rx.receive(&header(80), b"hello");
        assert!(!copied);
        assert_eq!(agg.to_vec(), b"hello");
        assert_eq!(agg.slice_at(0).pool(), PoolId(5));
        assert!(agg.slice_at(0).acl().allows(DomainId(3)));
        assert_eq!(rx.stats().direct, 1);
        assert_eq!(rx.stats().bytes_copied, 0);
    }

    #[test]
    fn unmatched_packet_owes_a_copy() {
        let mut rx = rx_with_rule();
        let (agg, copied) = rx.receive(&header(81), b"stray");
        assert!(copied);
        assert_eq!(agg.to_vec(), b"stray");
        assert_eq!(rx.stats().indirect, 1);
        assert_eq!(rx.stats().bytes_copied, 5);
    }

    #[test]
    fn disabled_filter_models_conventional_driver() {
        let mut rx = rx_with_rule();
        rx.filter_mut().set_enabled(false);
        let (_, copied) = rx.receive(&header(80), b"data!");
        assert!(copied, "no early demux -> every packet copies");
        assert_eq!(rx.stats().bytes_copied, 5);
    }
}

//! TCP/IP segment headers.
//!
//! Real 40-byte header construction so checksums cover genuine header
//! bytes and the end-to-end tests can parse what was "sent".

/// Combined IPv4 + TCP header size without options.
pub const TCP_IP_HEADER_BYTES: usize = 40;

/// The fields of a simplified TCP/IP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// TCP flags (SYN=0x02, ACK=0x10, FIN=0x01, PSH=0x08).
    pub flags: u8,
    /// Payload length (carried in the IP total-length field).
    pub payload_len: u16,
}

impl SegmentHeader {
    /// Serializes to the 40 wire bytes (IPv4 header then TCP header).
    pub fn to_bytes(&self) -> [u8; TCP_IP_HEADER_BYTES] {
        let mut b = [0u8; TCP_IP_HEADER_BYTES];
        // --- IPv4 ---
        b[0] = 0x45; // Version 4, IHL 5.
        let total_len = (20 + 20 + self.payload_len as u32) as u16;
        b[2..4].copy_from_slice(&total_len.to_be_bytes());
        b[8] = 64; // TTL.
        b[9] = 6; // Protocol: TCP.
        b[12..16].copy_from_slice(&self.src_ip.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst_ip.to_be_bytes());
        // --- TCP ---
        b[20..22].copy_from_slice(&self.src_port.to_be_bytes());
        b[22..24].copy_from_slice(&self.dst_port.to_be_bytes());
        b[24..28].copy_from_slice(&self.seq.to_be_bytes());
        b[28..32].copy_from_slice(&self.ack.to_be_bytes());
        b[32] = 5 << 4; // Data offset: 5 words.
        b[33] = self.flags;
        b[34..36].copy_from_slice(&0xFFFFu16.to_be_bytes()); // Window.
        b
    }

    /// Parses wire bytes back into header fields (tests, demux).
    ///
    /// Returns `None` when the buffer is too short or malformed.
    pub fn parse(b: &[u8]) -> Option<SegmentHeader> {
        if b.len() < TCP_IP_HEADER_BYTES || b[0] != 0x45 || b[9] != 6 {
            return None;
        }
        let total_len = u16::from_be_bytes([b[2], b[3]]);
        Some(SegmentHeader {
            src_ip: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst_ip: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            src_port: u16::from_be_bytes([b[20], b[21]]),
            dst_port: u16::from_be_bytes([b[22], b[23]]),
            seq: u32::from_be_bytes([b[24], b[25], b[26], b[27]]),
            ack: u32::from_be_bytes([b[28], b[29], b[30], b[31]]),
            flags: b[33],
            payload_len: total_len.saturating_sub(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SegmentHeader {
        SegmentHeader {
            src_ip: 0x0A000001,
            dst_ip: 0x0A000002,
            src_port: 8080,
            dst_port: 31337,
            seq: 123456,
            ack: 654321,
            flags: 0x18,
            payload_len: 1460,
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let h = header();
        let bytes = h.to_bytes();
        let parsed = SegmentHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_rejects_short_or_bad() {
        assert!(SegmentHeader::parse(&[0u8; 10]).is_none());
        let mut bytes = header().to_bytes();
        bytes[0] = 0x46; // Wrong IHL.
        assert!(SegmentHeader::parse(&bytes).is_none());
    }

    #[test]
    fn header_is_forty_bytes() {
        assert_eq!(header().to_bytes().len(), 40);
    }
}

//! TCP/IP segment headers.
//!
//! Real 40-byte header construction so checksums cover genuine header
//! bytes and the end-to-end tests can parse what was "sent".

/// Combined IPv4 + TCP header size without options.
pub const TCP_IP_HEADER_BYTES: usize = 40;

/// Largest payload one segment can carry: the IP total-length field is
/// 16 bits and covers both headers, so payloads beyond
/// `65535 - 40 = 65495` cannot be represented. Anything larger must be
/// segmented by the sender (MSS values are capped here).
pub const MAX_SEGMENT_PAYLOAD: u16 = u16::MAX - TCP_IP_HEADER_BYTES as u16;

/// The fields of a simplified TCP/IP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// TCP flags (SYN=0x02, ACK=0x10, FIN=0x01, PSH=0x08).
    pub flags: u8,
    /// Payload length (carried in the IP total-length field).
    pub payload_len: u16,
}

impl SegmentHeader {
    /// Serializes to the 40 wire bytes (IPv4 header then TCP header).
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds [`MAX_SEGMENT_PAYLOAD`]: the IP
    /// total-length field would silently wrap and the wire bytes would
    /// parse back to a different header. Senders cap their MSS at the
    /// limit, so a violation is a construction bug, not a data error.
    pub fn to_bytes(&self) -> [u8; TCP_IP_HEADER_BYTES] {
        assert!(
            self.payload_len <= MAX_SEGMENT_PAYLOAD,
            "segment payload {} exceeds the IP total-length limit ({})",
            self.payload_len,
            MAX_SEGMENT_PAYLOAD,
        );
        let mut b = [0u8; TCP_IP_HEADER_BYTES];
        // --- IPv4 ---
        b[0] = 0x45; // Version 4, IHL 5.
        let total_len = TCP_IP_HEADER_BYTES as u16 + self.payload_len;
        b[2..4].copy_from_slice(&total_len.to_be_bytes());
        b[8] = 64; // TTL.
        b[9] = 6; // Protocol: TCP.
        b[12..16].copy_from_slice(&self.src_ip.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst_ip.to_be_bytes());
        // --- TCP ---
        b[20..22].copy_from_slice(&self.src_port.to_be_bytes());
        b[22..24].copy_from_slice(&self.dst_port.to_be_bytes());
        b[24..28].copy_from_slice(&self.seq.to_be_bytes());
        b[28..32].copy_from_slice(&self.ack.to_be_bytes());
        b[32] = 5 << 4; // Data offset: 5 words.
        b[33] = self.flags;
        b[34..36].copy_from_slice(&0xFFFFu16.to_be_bytes()); // Window.
        b
    }

    /// Parses wire bytes back into header fields (tests, demux).
    ///
    /// Returns `None` when the buffer is too short or malformed.
    pub fn parse(b: &[u8]) -> Option<SegmentHeader> {
        if b.len() < TCP_IP_HEADER_BYTES || b[0] != 0x45 || b[9] != 6 {
            return None;
        }
        let total_len = u16::from_be_bytes([b[2], b[3]]);
        Some(SegmentHeader {
            src_ip: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst_ip: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            src_port: u16::from_be_bytes([b[20], b[21]]),
            dst_port: u16::from_be_bytes([b[22], b[23]]),
            seq: u32::from_be_bytes([b[24], b[25], b[26], b[27]]),
            ack: u32::from_be_bytes([b[28], b[29], b[30], b[31]]),
            flags: b[33],
            payload_len: total_len.saturating_sub(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SegmentHeader {
        SegmentHeader {
            src_ip: 0x0A000001,
            dst_ip: 0x0A000002,
            src_port: 8080,
            dst_port: 31337,
            seq: 123456,
            ack: 654321,
            flags: 0x18,
            payload_len: 1460,
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let h = header();
        let bytes = h.to_bytes();
        let parsed = SegmentHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_rejects_short_or_bad() {
        assert!(SegmentHeader::parse(&[0u8; 10]).is_none());
        let mut bytes = header().to_bytes();
        bytes[0] = 0x46; // Wrong IHL.
        assert!(SegmentHeader::parse(&bytes).is_none());
    }

    #[test]
    fn header_is_forty_bytes() {
        assert_eq!(header().to_bytes().len(), 40);
    }

    #[test]
    fn max_payload_round_trips_exactly() {
        // The boundary case that used to wrap the u16 total length.
        let mut h = header();
        h.payload_len = MAX_SEGMENT_PAYLOAD;
        let parsed = SegmentHeader::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed.payload_len, MAX_SEGMENT_PAYLOAD);
        assert_eq!(parsed, h);
    }

    #[test]
    #[should_panic(expected = "exceeds the IP total-length limit")]
    fn oversize_payload_is_rejected_not_wrapped() {
        let mut h = header();
        h.payload_len = MAX_SEGMENT_PAYLOAD + 1;
        let _ = h.to_bytes();
    }
}

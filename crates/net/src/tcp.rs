//! TCP connection send-path model.
//!
//! A connection segments application data into MSS-sized packets, builds
//! real headers, and checksums real bytes. The two buffering modes are
//! the paper's central contrast:
//!
//! * [`BufferMode::Copy`] — conventional BSD: payload is copied into
//!   socket-buffer mbuf clusters (owned memory, charged to the
//!   physical-memory accountant) and every transmission recomputes the
//!   Internet checksum, because copies have no stable identity.
//! * [`BufferMode::ZeroCopy`] — IO-Lite: the socket buffer holds slice
//!   *references*; no payload copy, and checksums come from the
//!   ⟨buffer, generation⟩-keyed cache (§3.9) after first transmission.
//!
//! Window-limited throughput (`min(link share, Tss/RTT)`) feeds the WAN
//! experiment (§5.7).

use iolite_buf::Aggregate;

use crate::cksum_cache::ChecksumCache;
use crate::mbuf::MbufChain;
use crate::packet::{SegmentHeader, TCP_IP_HEADER_BYTES};

/// Socket-buffer behaviour for outgoing payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// Copy into owned mbuf clusters (conventional UNIX).
    Copy,
    /// Reference IO-Lite buffers (Flash-Lite).
    ZeroCopy,
}

/// Accounting for one `send` call; the cost model turns these counts
/// into simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SendOutcome {
    /// MSS-sized segments emitted.
    pub segments: u64,
    /// Payload bytes queued.
    pub payload_bytes: u64,
    /// Header bytes emitted (40 per segment).
    pub header_bytes: u64,
    /// Payload bytes the checksum loop actually touched.
    pub csum_bytes_computed: u64,
    /// Payload bytes whose checksum was served from the cache.
    pub csum_bytes_cached: u64,
    /// Payload bytes copied into the socket buffer (Copy mode only).
    pub bytes_copied: u64,
    /// Peak owned socket-buffer occupancy caused by this send: copies
    /// pin real memory, references pin (almost) none.
    pub owned_occupancy: u64,
}

/// One TCP connection (server side).
///
/// `Clone` is a true deep copy (plain owned data), used by kernel-state
/// snapshots.
#[derive(Debug, Clone)]
pub struct TcpConn {
    id: u64,
    mode: BufferMode,
    mss: usize,
    tss: usize,
    seq: u32,
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    established: bool,
    total_segments: u64,
    total_payload: u64,
}

/// Client ports span the non-reserved range 1024..=65535.
const CLIENT_PORT_SPAN: u64 = 65536 - 1024;

impl TcpConn {
    /// Creates a connection in the given buffering mode.
    ///
    /// The wire 4-tuple is derived from the *full* 64-bit `id`: the id
    /// is factored as `id = q * CLIENT_PORT_SPAN + r`, with `r` picking
    /// the client port and `q` the client address, so any two distinct
    /// ids below `CLIENT_PORT_SPAN << 32` (≈ 2⁴⁸ connections — far past
    /// any run) get distinct `(src_ip, dst_ip, src_port, dst_port)`
    /// tuples. (The previous `id & 0xFF` / `id % 60000` derivation
    /// collided from a few hundred concurrent connections up, aliasing
    /// demux filter rules and receive-path streams at `serve_scale`
    /// connection counts.)
    ///
    /// `mss` is capped at [`MAX_SEGMENT_PAYLOAD`] so every segment's
    /// length fits the IP total-length field.
    ///
    /// [`MAX_SEGMENT_PAYLOAD`]: crate::packet::MAX_SEGMENT_PAYLOAD
    pub fn new(id: u64, mode: BufferMode, mss: usize, tss: usize) -> Self {
        assert!(mss > 0 && tss > 0);
        let mss = mss.min(crate::packet::MAX_SEGMENT_PAYLOAD as usize);
        TcpConn {
            id,
            mode,
            mss,
            tss,
            seq: 1,
            src_ip: 0x0A00_0001,
            dst_ip: 0x0B00_0000u32.wrapping_add((id / CLIENT_PORT_SPAN) as u32),
            src_port: 80,
            dst_port: 1024 + (id % CLIENT_PORT_SPAN) as u16,
            established: false,
            total_segments: 0,
            total_payload: 0,
        }
    }

    /// The connection's wire 4-tuple:
    /// `(src_ip, dst_ip, src_port, dst_port)`.
    pub fn four_tuple(&self) -> (u32, u32, u16, u16) {
        (self.src_ip, self.dst_ip, self.src_port, self.dst_port)
    }

    /// The connection id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The buffering mode.
    pub fn mode(&self) -> BufferMode {
        self.mode
    }

    /// Socket send-buffer size (Tss).
    pub fn tss(&self) -> usize {
        self.tss
    }

    /// Marks the three-way handshake complete.
    pub fn establish(&mut self) {
        self.established = true;
    }

    /// Whether the connection is established.
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// The connection's window-limited throughput in bytes/second for a
    /// given round-trip time: `Tss / RTT` (infinite on a zero-RTT LAN).
    pub fn window_rate(&self, rtt_seconds: f64) -> f64 {
        if rtt_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.tss as f64 / rtt_seconds
        }
    }

    /// Queues `payload` for transmission, returning the accounting
    /// outcome. Checksums are computed for real (cache-aware in
    /// zero-copy mode) — this is the data-touching the figures measure.
    pub fn send(&mut self, payload: &Aggregate, cache: &mut ChecksumCache) -> SendOutcome {
        let len = payload.len();
        let segments = len.div_ceil(self.mss as u64).max(1);
        let mut out = SendOutcome {
            segments,
            payload_bytes: len,
            header_bytes: segments * TCP_IP_HEADER_BYTES as u64,
            ..SendOutcome::default()
        };
        match self.mode {
            BufferMode::ZeroCopy => {
                // Socket buffer holds references; checksums per slice
                // through the cache (§3.9).
                let before = cache.stats();
                for s in payload.slices() {
                    cache.sum_for(s);
                }
                let after = cache.stats();
                out.csum_bytes_computed = after.bytes_computed - before.bytes_computed;
                out.csum_bytes_cached = after.bytes_cached - before.bytes_cached;
                // Owned memory: mbuf headers only (~2% of payload,
                // rounded into the kernel account elsewhere).
                out.owned_occupancy = segments * 128;
            }
            BufferMode::Copy => {
                // Copy into socket buffer; fresh copies have no identity,
                // so every byte is checksummed again. Occupancy is the
                // full send-buffer reservation: "the amount of memory
                // consumed by these buffers is related to the number of
                // concurrent connections ... times the socket send
                // buffer size Tss" (§5.7).
                out.bytes_copied = len;
                out.csum_bytes_computed = len;
                out.owned_occupancy = self.tss as u64;
            }
        }
        self.seq = self.seq.wrapping_add(len as u32);
        self.total_segments += segments;
        self.total_payload += len;
        out
    }

    /// Accounting-only send of `len` bytes for the *conventional* path.
    ///
    /// A copying send's costs depend only on the byte count — copies have
    /// no identity, so no cache can apply — which lets the experiment
    /// driver skip materializing the copied clusters. Zero-copy sends
    /// must use [`TcpConn::send`] (their checksum cache needs the real
    /// slices). Byte-exactness of the copy path is covered by
    /// [`TcpConn::build_segments`] tests.
    pub fn send_accounted(&mut self, len: u64) -> SendOutcome {
        assert_eq!(
            self.mode,
            BufferMode::Copy,
            "zero-copy sends must go through send()"
        );
        let segments = len.div_ceil(self.mss as u64).max(1);
        self.seq = self.seq.wrapping_add(len as u32);
        self.total_segments += segments;
        self.total_payload += len;
        SendOutcome {
            segments,
            payload_bytes: len,
            header_bytes: segments * TCP_IP_HEADER_BYTES as u64,
            csum_bytes_computed: len,
            csum_bytes_cached: 0,
            bytes_copied: len,
            owned_occupancy: self.tss as u64,
        }
    }

    /// Materializes the actual segment chains for `payload` (used by
    /// end-to-end tests; the hot path only needs [`TcpConn::send`]'s
    /// accounting).
    pub fn build_segments(&mut self, payload: &Aggregate) -> Vec<MbufChain> {
        let mut chains = Vec::new();
        let mut offset = 0u64;
        let len = payload.len();
        let mut seq = self.seq;
        loop {
            let take = (len - offset).min(self.mss as u64);
            let part = payload
                .range(offset, take)
                .expect("segmentation stays in range");
            let header = SegmentHeader {
                src_ip: self.src_ip,
                dst_ip: self.dst_ip,
                src_port: self.src_port,
                dst_port: self.dst_port,
                seq,
                ack: 0,
                flags: 0x18,
                payload_len: take as u16,
            };
            let chain = match self.mode {
                BufferMode::ZeroCopy => MbufChain::packet(&header.to_bytes(), &part),
                BufferMode::Copy => MbufChain::packet_copied_from_agg(&header.to_bytes(), &part),
            };
            chains.push(chain);
            seq = seq.wrapping_add(take as u32);
            offset += take;
            if offset >= len {
                break;
            }
        }
        chains
    }

    /// Lifetime totals: (segments, payload bytes).
    pub fn totals(&self) -> (u64, u64) {
        (self.total_segments, self.total_payload)
    }

    /// Folds the connection's state into a stable digest.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.id);
        h.write_bool(matches!(self.mode, BufferMode::ZeroCopy));
        h.write_u64(self.mss as u64);
        h.write_u64(self.tss as u64);
        h.write_u32(self.seq);
        h.write_bool(self.established);
        h.write_u64(self.total_segments);
        h.write_u64(self.total_payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn agg(data: &[u8]) -> Aggregate {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        Aggregate::from_bytes(&pool, data)
    }

    #[test]
    fn segmentation_counts() {
        let mut c = TcpConn::new(1, BufferMode::ZeroCopy, 1460, 64 * 1024);
        let mut cache = ChecksumCache::new(1024);
        let out = c.send(&agg(&vec![0u8; 4000]), &mut cache);
        assert_eq!(out.segments, 3);
        assert_eq!(out.payload_bytes, 4000);
        assert_eq!(out.header_bytes, 120);
    }

    #[test]
    fn zero_copy_second_send_is_checksum_free() {
        let mut c = TcpConn::new(1, BufferMode::ZeroCopy, 1460, 64 * 1024);
        let mut cache = ChecksumCache::new(1024);
        let payload = agg(&vec![7u8; 10_000]);
        let first = c.send(&payload, &mut cache);
        assert_eq!(first.csum_bytes_computed, 10_000);
        assert_eq!(first.bytes_copied, 0);
        let second = c.send(&payload, &mut cache);
        assert_eq!(second.csum_bytes_computed, 0);
        assert_eq!(second.csum_bytes_cached, 10_000);
    }

    #[test]
    fn copy_mode_always_recomputes_and_copies() {
        let mut c = TcpConn::new(1, BufferMode::Copy, 1460, 64 * 1024);
        let mut cache = ChecksumCache::new(1024);
        let payload = agg(&vec![7u8; 10_000]);
        for _ in 0..2 {
            let out = c.send(&payload, &mut cache);
            assert_eq!(out.csum_bytes_computed, 10_000);
            assert_eq!(out.bytes_copied, 10_000);
            assert_eq!(out.owned_occupancy, 64 * 1024);
        }
    }

    #[test]
    fn copy_occupancy_is_the_send_buffer_reservation() {
        let mut c = TcpConn::new(1, BufferMode::Copy, 1460, 64 * 1024);
        let mut cache = ChecksumCache::new(1024);
        // Large and small responses both reserve the full Tss (§5.7).
        let out = c.send(&agg(&vec![0u8; 200_000]), &mut cache);
        assert_eq!(out.owned_occupancy, 64 * 1024);
        let out = c.send(&agg(&vec![0u8; 500]), &mut cache);
        assert_eq!(out.owned_occupancy, 64 * 1024);
    }

    #[test]
    fn window_rate_math() {
        let c = TcpConn::new(1, BufferMode::Copy, 1460, 64 * 1024);
        assert!(c.window_rate(0.0).is_infinite());
        let r = c.window_rate(0.1);
        assert!((r - 655_360.0).abs() < 1e-6, "64KB / 100ms = 640KB/s");
    }

    #[test]
    fn built_segments_carry_exact_bytes() {
        let mut c = TcpConn::new(1, BufferMode::ZeroCopy, 100, 64 * 1024);
        let data: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        let payload = agg(&data);
        let chains = c.build_segments(&payload);
        assert_eq!(chains.len(), 3);
        let mut reassembled = Vec::new();
        for chain in &chains {
            let wire = chain.to_vec();
            let h = SegmentHeader::parse(&wire).unwrap();
            assert_eq!(h.payload_len as usize, wire.len() - 40);
            reassembled.extend_from_slice(&wire[40..]);
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn zero_copy_segments_own_only_headers() {
        let mut c = TcpConn::new(1, BufferMode::ZeroCopy, 1460, 64 * 1024);
        let payload = agg(&vec![0u8; 5000]);
        let owned: usize = c
            .build_segments(&payload)
            .iter()
            .map(|ch| ch.owned_bytes())
            .sum();
        assert_eq!(owned, 4 * 40, "four headers, zero payload copies");
        let mut c2 = TcpConn::new(2, BufferMode::Copy, 1460, 64 * 1024);
        let owned2: usize = c2
            .build_segments(&payload)
            .iter()
            .map(|ch| ch.owned_bytes())
            .sum();
        assert_eq!(owned2, 4 * 40 + 5000);
    }

    #[test]
    fn four_tuples_are_unique_per_connection_id() {
        use std::collections::HashSet;
        // Regression: `id & 0xFF` / `id % 60000` collided at serve_scale
        // connection counts — e.g. ids 1 and 480001 shared a 4-tuple
        // (480000 = lcm(256, 60000)).
        let tuple = |id| TcpConn::new(id, BufferMode::ZeroCopy, 1460, 64 * 1024).four_tuple();
        assert_ne!(tuple(1), tuple(480_001));
        // Every id in a serve_scale-sized (and beyond) range is unique.
        let mut seen = HashSet::new();
        for id in 0..100_000u64 {
            assert!(seen.insert(tuple(id)), "4-tuple collision at id {id}");
        }
        // Ids beyond the port span roll over into fresh client addresses.
        assert_ne!(tuple(7), tuple(7 + CLIENT_PORT_SPAN));
        assert_ne!(tuple(7), tuple(7 + 2 * CLIENT_PORT_SPAN));
    }

    #[test]
    fn oversize_mss_is_capped_to_a_representable_segment() {
        use crate::packet::MAX_SEGMENT_PAYLOAD;
        let mut c = TcpConn::new(1, BufferMode::ZeroCopy, usize::MAX, 64 * 1024);
        // A payload larger than the IP total-length limit must be split
        // into representable segments, and each must round-trip.
        let data = vec![0xA5u8; MAX_SEGMENT_PAYLOAD as usize + 4096];
        let chains = c.build_segments(&agg(&data));
        assert_eq!(chains.len(), 2);
        let mut reassembled = Vec::new();
        for chain in &chains {
            let wire = chain.to_vec();
            let h = SegmentHeader::parse(&wire).unwrap();
            assert_eq!(h.payload_len as usize, wire.len() - 40);
            reassembled.extend_from_slice(&wire[40..]);
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn establish_lifecycle() {
        let mut c = TcpConn::new(5, BufferMode::Copy, 1460, 1024);
        assert!(!c.is_established());
        c.establish();
        assert!(c.is_established());
        assert_eq!(c.id(), 5);
        assert_eq!(c.tss(), 1024);
    }
}

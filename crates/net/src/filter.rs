//! Early demultiplexing via a packet filter (§3.6).
//!
//! "Network interface drivers must determine the I/O stream associated
//! with an incoming packet, since this stream implies the ACL for the
//! data contained in the packet." The filter maps header fields to a
//! stream; the driver then allocates the payload's IO-Lite buffer from
//! that stream's pool *before* storing the data, avoiding a later copy.
//!
//! Disabling the filter reproduces the conventional driver: payloads
//! land in anonymous kernel buffers and must be copied once their
//! destination becomes known — the `ablate_demux` bench measures exactly
//! that.

use crate::packet::SegmentHeader;

/// Identifies an I/O stream (socket/connection) and thereby a buffer
/// pool and ACL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u64);

/// One demultiplexing rule. More specific rules (more populated fields)
/// win over less specific ones.
#[derive(Debug, Clone, Copy)]
pub struct FilterRule {
    /// Destination port to match (the listening socket).
    pub dst_port: u16,
    /// Optional source IP restriction (established connections).
    pub src_ip: Option<u32>,
    /// Optional source port restriction.
    pub src_port: Option<u16>,
    /// The stream packets matching this rule belong to.
    pub stream: StreamId,
}

impl FilterRule {
    fn specificity(&self) -> u32 {
        1 + u32::from(self.src_ip.is_some()) + u32::from(self.src_port.is_some())
    }

    fn matches(&self, h: &SegmentHeader) -> bool {
        self.dst_port == h.dst_port
            && self.src_ip.is_none_or(|ip| ip == h.src_ip)
            && self.src_port.is_none_or(|p| p == h.src_port)
    }
}

/// Demux statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Packets matched to a stream (placed in the right pool directly).
    pub matched: u64,
    /// Packets with no matching rule (or filter disabled): one copy is
    /// owed downstream.
    pub unmatched: u64,
}

/// The packet filter: an ordered rule set evaluated per packet.
///
/// `Clone` is a true deep copy, used by kernel-state snapshots.
#[derive(Debug, Default, Clone)]
pub struct PacketFilter {
    rules: Vec<FilterRule>,
    enabled: bool,
    stats: FilterStats,
}

impl PacketFilter {
    /// Creates an enabled, empty filter.
    pub fn new() -> Self {
        PacketFilter {
            rules: Vec::new(),
            enabled: true,
            stats: FilterStats::default(),
        }
    }

    /// Enables or disables early demux (ablation switch).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Installs a rule.
    pub fn add_rule(&mut self, rule: FilterRule) {
        self.rules.push(rule);
    }

    /// Removes all rules for a stream (connection teardown).
    pub fn remove_stream(&mut self, stream: StreamId) {
        self.rules.retain(|r| r.stream != stream);
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classifies one packet header, most-specific rule first.
    pub fn demux(&mut self, h: &SegmentHeader) -> Option<StreamId> {
        if !self.enabled {
            self.stats.unmatched += 1;
            return None;
        }
        let best = self
            .rules
            .iter()
            .filter(|r| r.matches(h))
            .max_by_key(|r| r.specificity());
        match best {
            Some(r) => {
                self.stats.matched += 1;
                Some(r.stream)
            }
            None => {
                self.stats.unmatched += 1;
                None
            }
        }
    }

    /// Demux counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Folds the filter's state into a stable digest (rules in install
    /// order).
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_bool(self.enabled);
        h.write_u64(self.stats.matched);
        h.write_u64(self.stats.unmatched);
        h.write_u64(self.rules.len() as u64);
        for r in &self.rules {
            h.write_u32(r.dst_port as u32);
            h.write_u32(r.src_ip.map_or(u32::MAX, |ip| ip));
            h.write_bool(r.src_ip.is_some());
            h.write_u32(r.src_port.map_or(0, u32::from));
            h.write_bool(r.src_port.is_some());
            h.write_u64(r.stream.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(src_ip: u32, src_port: u16, dst_port: u16) -> SegmentHeader {
        SegmentHeader {
            src_ip,
            dst_ip: 1,
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: 0x18,
            payload_len: 100,
        }
    }

    #[test]
    fn matches_listening_port() {
        let mut f = PacketFilter::new();
        f.add_rule(FilterRule {
            dst_port: 80,
            src_ip: None,
            src_port: None,
            stream: StreamId(1),
        });
        assert_eq!(f.demux(&header(9, 1234, 80)), Some(StreamId(1)));
        assert_eq!(f.demux(&header(9, 1234, 81)), None);
        assert_eq!(f.stats().matched, 1);
        assert_eq!(f.stats().unmatched, 1);
    }

    #[test]
    fn specific_rule_beats_wildcard() {
        let mut f = PacketFilter::new();
        f.add_rule(FilterRule {
            dst_port: 80,
            src_ip: None,
            src_port: None,
            stream: StreamId(1),
        });
        f.add_rule(FilterRule {
            dst_port: 80,
            src_ip: Some(42),
            src_port: Some(5000),
            stream: StreamId(2),
        });
        assert_eq!(f.demux(&header(42, 5000, 80)), Some(StreamId(2)));
        assert_eq!(f.demux(&header(43, 5000, 80)), Some(StreamId(1)));
    }

    #[test]
    fn disabled_filter_never_matches() {
        let mut f = PacketFilter::new();
        f.add_rule(FilterRule {
            dst_port: 80,
            src_ip: None,
            src_port: None,
            stream: StreamId(1),
        });
        f.set_enabled(false);
        assert_eq!(f.demux(&header(1, 1, 80)), None);
        assert_eq!(f.stats().unmatched, 1);
    }

    #[test]
    fn remove_stream_uninstalls_rules() {
        let mut f = PacketFilter::new();
        f.add_rule(FilterRule {
            dst_port: 80,
            src_ip: Some(1),
            src_port: Some(2),
            stream: StreamId(7),
        });
        assert_eq!(f.len(), 1);
        f.remove_stream(StreamId(7));
        assert!(f.is_empty());
    }
}

//! The Internet checksum (RFC 1071) over slices and aggregates.
//!
//! Computed for real over real bytes: the correctness tests compare
//! against a naive reference, and the checksum cache's hit/miss behaviour
//! feeds the cost model. Per-slice partial sums are combinable, which is
//! what makes caching per ⟨buffer, generation, range⟩ possible (§3.9):
//! TCP checksums a segment by folding the cached sums of its payload
//! slices with the freshly computed header sum.

use iolite_buf::{Aggregate, Slice};

/// A partial ones-complement sum with the byte length it covers.
///
/// Lengths matter when combining: a partial sum starting at an odd
/// global offset must be byte-swapped before folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialSum {
    /// Ones-complement 16-bit accumulator (not yet inverted).
    pub sum: u16,
    /// Number of bytes covered.
    pub len: u64,
}

/// Sums a byte run as 16-bit big-endian words (RFC 1071 core loop).
fn raw_sum(data: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    // Fold carries.
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Computes the partial sum of one slice's bytes.
pub fn slice_sum(s: &Slice) -> PartialSum {
    PartialSum {
        sum: raw_sum(s.as_bytes()),
        len: s.len() as u64,
    }
}

/// Computes the partial sum of a raw byte run (headers, copies).
pub fn bytes_sum(data: &[u8]) -> PartialSum {
    PartialSum {
        sum: raw_sum(data),
        len: data.len() as u64,
    }
}

/// Folds `b` onto `a`, where `b`'s data immediately follows `a`'s.
pub fn combine(a: PartialSum, b: PartialSum) -> PartialSum {
    // If `a` covers an odd number of bytes, `b`'s words are shifted one
    // byte in the overall stream: swap its accumulator before folding.
    let b_sum = if a.len % 2 == 1 {
        b.sum.rotate_left(8)
    } else {
        b.sum
    };
    let mut acc = u32::from(a.sum) + u32::from(b_sum);
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    PartialSum {
        sum: acc as u16,
        len: a.len + b.len,
    }
}

/// The final Internet checksum of a complete message: the ones
/// complement of the folded sum.
pub fn finalize(p: PartialSum) -> u16 {
    !p.sum
}

/// Convenience: the Internet checksum of an aggregate's value.
pub fn internet_checksum(agg: &Aggregate) -> u16 {
    let mut acc = PartialSum { sum: 0, len: 0 };
    for s in agg.slices() {
        acc = combine(acc, slice_sum(s));
    }
    finalize(acc)
}

/// Reference implementation over a contiguous byte vector (tests only,
/// but public so integration tests can cross-check).
pub fn reference_checksum(data: &[u8]) -> u16 {
    finalize(bytes_sum(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn agg_of(data: &[u8], chunk: usize) -> Aggregate {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk);
        Aggregate::from_bytes(&pool, data)
    }

    #[test]
    fn rfc1071_worked_example() {
        // RFC 1071 §3 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(bytes_sum(&data).sum, 0xddf2);
        assert_eq!(reference_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let data = [0xAB];
        assert_eq!(bytes_sum(&data).sum, 0xAB00);
    }

    #[test]
    fn fragmented_aggregate_matches_reference() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 256) as u8).collect();
        for chunk in [1, 2, 3, 7, 64, 999, 4096] {
            let agg = agg_of(&data, chunk);
            assert_eq!(
                internet_checksum(&agg),
                reference_checksum(&data),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn combine_handles_odd_boundaries() {
        let data = b"abcdefg";
        for split in 0..=data.len() {
            let a = bytes_sum(&data[..split]);
            let b = bytes_sum(&data[split..]);
            assert_eq!(
                finalize(combine(a, b)),
                reference_checksum(data),
                "split {split}"
            );
        }
    }

    #[test]
    fn empty_data_checksum() {
        assert_eq!(reference_checksum(&[]), 0xFFFF);
        assert_eq!(internet_checksum(&Aggregate::empty()), 0xFFFF);
    }

    #[test]
    fn checksum_detects_corruption() {
        let data: Vec<u8> = (0..100).collect();
        let mut bad = data.clone();
        bad[50] ^= 0x40;
        assert_ne!(reference_checksum(&data), reference_checksum(&bad));
    }
}

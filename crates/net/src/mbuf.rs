//! BSD mbufs encapsulating IO-Lite buffers (§4.1).
//!
//! "The encapsulation was accomplished by using the mbuf out-of-line
//! pointer to refer to an IO-Lite buffer ... Small data items such as
//! network packet headers are still stored inline in mbufs, but the
//! performance-critical bulk data reside in IO-Lite buffers."
//!
//! The inline/external distinction is what the memory accounting
//! measures: with IO-Lite, a socket send buffer's mbuf chain holds only
//! tiny inline headers plus *references*; without it, the chain holds
//! copied clusters.

use iolite_buf::{Aggregate, Slice};

/// Payload storage of one mbuf.
#[derive(Debug, Clone)]
pub enum MbufData {
    /// Small data (headers) stored inline in the mbuf.
    Inline(Vec<u8>),
    /// Bulk data referenced out-of-line in an immutable IO-Lite buffer.
    Ext(Slice),
}

/// One mbuf: a unit of network-stack buffering.
#[derive(Debug, Clone)]
pub struct Mbuf {
    data: MbufData,
}

impl Mbuf {
    /// Creates an inline mbuf (copies `data`, as the real stack does for
    /// headers).
    pub fn inline(data: &[u8]) -> Self {
        Mbuf {
            data: MbufData::Inline(data.to_vec()),
        }
    }

    /// Creates an external mbuf referencing an IO-Lite slice (no copy).
    pub fn ext(slice: Slice) -> Self {
        Mbuf {
            data: MbufData::Ext(slice),
        }
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        match &self.data {
            MbufData::Inline(v) => v.len(),
            MbufData::Ext(s) => s.len(),
        }
    }

    /// Whether the mbuf is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            MbufData::Inline(v) => v,
            MbufData::Ext(s) => s.as_bytes(),
        }
    }

    /// Access to the storage discriminant.
    pub fn data(&self) -> &MbufData {
        &self.data
    }

    /// Bytes of *owned* storage this mbuf holds (inline only; external
    /// references share IO-Lite memory).
    pub fn owned_bytes(&self) -> usize {
        match &self.data {
            MbufData::Inline(v) => v.len(),
            MbufData::Ext(_) => 0,
        }
    }
}

/// An ordered chain of mbufs: one packet, or one socket buffer's queue.
#[derive(Debug, Clone, Default)]
pub struct MbufChain {
    mbufs: Vec<Mbuf>,
}

impl MbufChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        MbufChain::default()
    }

    /// Builds a packet chain: inline header followed by zero-copy
    /// references to the payload aggregate's slices.
    pub fn packet(header: &[u8], payload: &Aggregate) -> Self {
        let mut chain = MbufChain::new();
        chain.push(Mbuf::inline(header));
        for s in payload.slices() {
            chain.push(Mbuf::ext(s.clone()));
        }
        chain
    }

    /// Builds a packet chain the conventional way: header plus payload
    /// *copied* into an owned cluster (what a non-IO-Lite stack does when
    /// the application `write()`s).
    pub fn packet_copied(header: &[u8], payload: &[u8]) -> Self {
        let mut chain = MbufChain::new();
        chain.push(Mbuf::inline(header));
        chain.push(Mbuf::inline(payload));
        chain
    }

    /// Like [`MbufChain::packet_copied`] but sourcing the payload from an
    /// aggregate: the materialized `Vec` *is* the owned cluster, so the
    /// copy into it is the only copy the conventional path pays.
    pub fn packet_copied_from_agg(header: &[u8], payload: &Aggregate) -> Self {
        let mut chain = MbufChain::new();
        chain.push(Mbuf::inline(header));
        chain.push(Mbuf {
            data: MbufData::Inline(payload.to_vec()),
        });
        chain
    }

    /// Appends one mbuf.
    pub fn push(&mut self, m: Mbuf) {
        self.mbufs.push(m);
    }

    /// The mbufs in order.
    pub fn mbufs(&self) -> &[Mbuf] {
        &self.mbufs
    }

    /// Total payload length.
    pub fn len(&self) -> usize {
        self.mbufs.iter().map(Mbuf::len).sum()
    }

    /// Whether the chain carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of owned (inline/copied) storage — the memory a
    /// conventional socket buffer pins, vs ~0 for IO-Lite chains.
    pub fn owned_bytes(&self) -> usize {
        self.mbufs.iter().map(Mbuf::owned_bytes).sum()
    }

    /// Materializes the wire bytes (tests and end-to-end checks).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        for m in &self.mbufs {
            out.extend_from_slice(m.bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn agg(data: &[u8]) -> Aggregate {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 1024);
        Aggregate::from_bytes(&pool, data)
    }

    #[test]
    fn zero_copy_packet_owns_only_header() {
        let payload = agg(&[0x55; 1000]);
        let chain = MbufChain::packet(&[0xAA; 40], &payload);
        assert_eq!(chain.len(), 1040);
        assert_eq!(chain.owned_bytes(), 40);
    }

    #[test]
    fn copied_packet_owns_everything() {
        let chain = MbufChain::packet_copied(&[0xAA; 40], &[0x55; 1000]);
        assert_eq!(chain.len(), 1040);
        assert_eq!(chain.owned_bytes(), 1040);
    }

    #[test]
    fn copied_from_agg_is_byte_exact_and_owned() {
        let pool = BufferPool::new(PoolId(2), Acl::kernel_only(), 64);
        let data: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let payload = Aggregate::from_bytes(&pool, &data);
        assert!(payload.num_slices() > 1, "fragmented source");
        let chain = MbufChain::packet_copied_from_agg(&[0xAA; 40], &payload);
        assert_eq!(chain.owned_bytes(), 540, "header + copied cluster");
        assert_eq!(&chain.to_vec()[40..], &data[..]);
    }

    #[test]
    fn wire_bytes_concatenate_in_order() {
        let payload = agg(b"worldwide");
        let chain = MbufChain::packet(b"hello ", &payload);
        assert_eq!(chain.to_vec(), b"hello worldwide");
    }

    #[test]
    fn ext_mbuf_shares_buffer_with_aggregate() {
        let payload = agg(b"shared");
        let chain = MbufChain::packet(b"", &payload);
        let ext = &chain.mbufs()[1];
        match ext.data() {
            MbufData::Ext(s) => assert!(s.same_buffer(payload.slice_at(0))),
            MbufData::Inline(_) => panic!("payload must be external"),
        }
    }

    #[test]
    fn empty_chain() {
        let c = MbufChain::new();
        assert!(c.is_empty());
        assert_eq!(c.owned_bytes(), 0);
        assert_eq!(c.to_vec(), Vec::<u8>::new());
    }
}

//! TCP receive-side stream reassembly over buffer aggregates.
//!
//! The receive path (§3.6) places each packet's payload in an IO-Lite
//! buffer of the right pool; this module assembles those payloads into
//! the in-order byte stream **by reference** — out-of-order segments
//! wait in a reorder queue as aggregates and are concatenated with
//! pointer manipulation when their turn comes, never copied. This is
//! the receive-side counterpart of the zero-copy send path.

use std::collections::BTreeMap;

use iolite_buf::Aggregate;

/// Reassembly statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Segments accepted in order.
    pub in_order: u64,
    /// Segments queued out of order.
    pub out_of_order: u64,
    /// Duplicate or fully overlapping segments dropped.
    pub duplicates: u64,
    /// Bytes trimmed from partially overlapping segments.
    pub bytes_trimmed: u64,
}

/// One direction of a TCP connection's receive buffer.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_net::reassembly::TcpReceiver;
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
/// let mut rx = TcpReceiver::new(1);
/// // Segment 2 arrives before segment 1.
/// rx.on_segment(6, Aggregate::from_bytes(&pool, b"world"));
/// assert!(rx.read_available().is_none());
/// rx.on_segment(1, Aggregate::from_bytes(&pool, b"hello"));
/// assert_eq!(rx.read_available().unwrap().to_vec(), b"helloworld");
/// ```
#[derive(Debug)]
pub struct TcpReceiver {
    next_seq: u64,
    /// Out-of-order segments keyed by sequence number.
    reorder: BTreeMap<u64, Aggregate>,
    /// In-order data awaiting the application.
    ready: Aggregate,
    stats: ReassemblyStats,
}

impl TcpReceiver {
    /// Creates a receiver expecting the first byte at `initial_seq`.
    pub fn new(initial_seq: u64) -> Self {
        TcpReceiver {
            next_seq: initial_seq,
            reorder: BTreeMap::new(),
            ready: Aggregate::empty(),
            stats: ReassemblyStats::default(),
        }
    }

    /// The next expected sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Accepts one segment (`seq` = sequence number of its first byte).
    ///
    /// In-order data becomes readable immediately; out-of-order data
    /// waits; duplicates are dropped; partial overlaps are trimmed.
    /// All of it by reference — no payload byte is copied.
    pub fn on_segment(&mut self, seq: u64, payload: Aggregate) {
        if payload.is_empty() {
            return;
        }
        let end = seq + payload.len();
        if end <= self.next_seq {
            // Entirely old data (retransmission of ACKed bytes).
            self.stats.duplicates += 1;
            return;
        }
        let mut seq = seq;
        let mut payload = payload;
        if seq < self.next_seq {
            // Overlapping prefix: trim it (zero-copy advance).
            let trim = self.next_seq - seq;
            payload.advance(trim);
            self.stats.bytes_trimmed += trim;
            seq = self.next_seq;
        }
        if seq == self.next_seq {
            self.stats.in_order += 1;
            self.ready.append(&payload);
            self.next_seq = end;
            self.drain_reorder();
        } else {
            // Future data: queue, keeping the earliest copy of a range.
            self.stats.out_of_order += 1;
            self.reorder.entry(seq).or_insert(payload);
        }
    }

    /// Pulls queued segments that have become contiguous.
    fn drain_reorder(&mut self) {
        while let Some((&seq, _)) = self.reorder.first_key_value() {
            if seq > self.next_seq {
                break;
            }
            let (seq, mut payload) = self.reorder.pop_first().expect("checked non-empty");
            let end = seq + payload.len();
            if end <= self.next_seq {
                self.stats.duplicates += 1;
                continue;
            }
            if seq < self.next_seq {
                let trim = self.next_seq - seq;
                payload.advance(trim);
                self.stats.bytes_trimmed += trim;
            }
            self.ready.append(&payload);
            self.next_seq = end;
        }
    }

    /// Takes all in-order bytes accumulated so far (`None` if empty).
    pub fn read_available(&mut self) -> Option<Aggregate> {
        if self.ready.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.ready))
        }
    }

    /// Bytes ready for the application.
    pub fn available(&self) -> u64 {
        self.ready.len()
    }

    /// Bytes parked in the reorder queue.
    pub fn reorder_bytes(&self) -> u64 {
        self.reorder.values().map(Aggregate::len).sum()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::kernel_only(), 4096)
    }

    fn agg(data: &[u8]) -> Aggregate {
        Aggregate::from_bytes(&pool(), data)
    }

    #[test]
    fn in_order_stream() {
        let mut rx = TcpReceiver::new(100);
        rx.on_segment(100, agg(b"abc"));
        rx.on_segment(103, agg(b"def"));
        assert_eq!(rx.read_available().unwrap().to_vec(), b"abcdef");
        assert_eq!(rx.next_seq(), 106);
        assert_eq!(rx.stats().in_order, 2);
    }

    #[test]
    fn out_of_order_waits_then_drains() {
        let mut rx = TcpReceiver::new(0);
        rx.on_segment(3, agg(b"def"));
        rx.on_segment(6, agg(b"ghi"));
        assert!(rx.read_available().is_none());
        assert_eq!(rx.reorder_bytes(), 6);
        rx.on_segment(0, agg(b"abc"));
        assert_eq!(rx.read_available().unwrap().to_vec(), b"abcdefghi");
        assert_eq!(rx.reorder_bytes(), 0);
        assert_eq!(rx.stats().out_of_order, 2);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rx = TcpReceiver::new(0);
        rx.on_segment(0, agg(b"abcd"));
        rx.on_segment(0, agg(b"abcd"));
        rx.on_segment(2, agg(b"cd"));
        assert_eq!(rx.stats().duplicates, 2);
        assert_eq!(rx.read_available().unwrap().to_vec(), b"abcd");
    }

    #[test]
    fn partial_overlap_is_trimmed_zero_copy() {
        let mut rx = TcpReceiver::new(0);
        rx.on_segment(0, agg(b"abcd"));
        // Retransmission covering [2, 8): only [4, 8) is new.
        rx.on_segment(2, agg(b"cdEFGH"));
        assert_eq!(rx.read_available().unwrap().to_vec(), b"abcdEFGH");
        assert_eq!(rx.stats().bytes_trimmed, 2);
    }

    #[test]
    fn reassembly_shares_buffers_with_segments() {
        let mut rx = TcpReceiver::new(0);
        let seg = agg(b"zero-copy");
        let slice = seg.slice_at(0).clone();
        rx.on_segment(0, seg);
        let out = rx.read_available().unwrap();
        assert!(out.slice_at(0).same_buffer(&slice), "no payload copy");
    }

    #[test]
    fn random_permutation_reassembles_exactly() {
        use iolite_sim::SimRng;
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let mut rng = SimRng::new(99);
        // Split into random segments and deliver in random order.
        let mut cuts = vec![0usize, data.len()];
        for _ in 0..20 {
            cuts.push(rng.next_index(data.len()));
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut segments: Vec<(u64, Aggregate)> = cuts
            .windows(2)
            .map(|w| (w[0] as u64, agg(&data[w[0]..w[1]])))
            .collect();
        rng.shuffle(&mut segments);
        let mut rx = TcpReceiver::new(0);
        for (seq, payload) in segments {
            rx.on_segment(seq, payload);
        }
        assert_eq!(rx.read_available().unwrap().to_vec(), data);
        assert_eq!(rx.reorder_bytes(), 0);
    }
}

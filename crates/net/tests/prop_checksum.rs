//! Property tests for the Internet checksum algebra and the checksum
//! cache's generation discipline.

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
use iolite_net::checksum::{bytes_sum, combine, finalize, reference_checksum};
use iolite_net::{internet_checksum, ChecksumCache};
use proptest::prelude::*;

proptest! {
    /// Splitting a message anywhere and folding partial sums equals the
    /// whole-message checksum (the property per-slice caching needs).
    #[test]
    fn combine_is_concatenation(data in proptest::collection::vec(any::<u8>(), 0..512),
                                splits in proptest::collection::vec(any::<usize>(), 0..6)) {
        let mut cut_points: Vec<usize> = splits
            .into_iter()
            .map(|s| if data.is_empty() { 0 } else { s % (data.len() + 1) })
            .collect();
        cut_points.push(0);
        cut_points.push(data.len());
        cut_points.sort_unstable();
        let mut acc = bytes_sum(&[]);
        for pair in cut_points.windows(2) {
            acc = combine(acc, bytes_sum(&data[pair[0]..pair[1]]));
        }
        prop_assert_eq!(finalize(acc), reference_checksum(&data));
    }

    /// Any fragmentation of an aggregate yields the same checksum.
    #[test]
    fn aggregate_checksum_fragmentation_invariant(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        chunk in 1usize..128,
    ) {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk);
        let agg = Aggregate::from_bytes(&pool, &data);
        prop_assert_eq!(internet_checksum(&agg), reference_checksum(&data));
    }

    /// The cache never serves a sum that differs from recomputation,
    /// across arbitrary allocate/drop/recompute interleavings (the
    /// generation-number discipline of §3.9).
    #[test]
    fn cache_never_stale(rounds in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 1..128), any::<bool>()), 1..40)) {
        // Tiny chunks force heavy recycling, the dangerous case.
        let pool = BufferPool::new(PoolId(2), Acl::kernel_only(), 128);
        let mut cache = ChecksumCache::new(8);
        let mut held: Vec<Aggregate> = Vec::new();
        for (data, drop_after) in rounds {
            let agg = Aggregate::from_bytes(&pool, &data);
            for s in agg.slices() {
                let cached = cache.sum_for(s);
                let fresh = iolite_net::slice_sum(s);
                prop_assert_eq!(cached, fresh, "stale checksum served");
            }
            if drop_after {
                held.clear();
            } else {
                held.push(agg);
            }
        }
    }
}

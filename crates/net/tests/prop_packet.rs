//! Property tests for segment-header wire encoding: serialize→parse
//! must be the identity for every representable header (regression for
//! the silent u16 wrap of the IP total-length field on payloads above
//! [`MAX_SEGMENT_PAYLOAD`], which corrupted round-trips).

use iolite_net::packet::MAX_SEGMENT_PAYLOAD;
use iolite_net::{SegmentHeader, TCP_IP_HEADER_BYTES};
use proptest::prelude::*;

proptest! {
    /// Every representable header round-trips exactly — including the
    /// payload sizes near the 16-bit total-length limit that used to
    /// wrap (`20 + 20 + payload_len` overflowing u16).
    #[test]
    fn serialize_parse_is_identity(
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        payload_len in 0u16..MAX_SEGMENT_PAYLOAD + 1,
    ) {
        let h = SegmentHeader {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            payload_len,
        };
        let wire = h.to_bytes();
        prop_assert_eq!(wire.len(), TCP_IP_HEADER_BYTES);
        // The total-length field carries headers + payload unwrapped.
        let total = u16::from_be_bytes([wire[2], wire[3]]);
        prop_assert_eq!(total as usize, TCP_IP_HEADER_BYTES + payload_len as usize);
        let parsed = SegmentHeader::parse(&wire).expect("well-formed header parses");
        prop_assert_eq!(parsed, h);
    }
}

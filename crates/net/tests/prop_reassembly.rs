//! Property tests for TCP segment reassembly (PR 9): under *any*
//! segmentation of a byte stream, delivered in *any* order, with
//! arbitrary duplication and overlapping retransmissions, the receiver
//! hands the application exactly the original bytes, exactly once, in
//! order — and its bookkeeping (cumulative ACK point, reorder-queue
//! occupancy) stays honest throughout.

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
use iolite_net::TcpReceiver;
use proptest::prelude::*;

/// Cuts `data` into `(seq, bytes)` segments at the given cut points.
fn segment(data: &[u8], cuts: &[usize]) -> Vec<(u64, Vec<u8>)> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|c| if data.is_empty() { 0 } else { c % (data.len() + 1) })
        .collect();
    points.push(0);
    points.push(data.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| (w[0] as u64, data[w[0]..w[1]].to_vec()))
        .collect()
}

/// Feeds segments in `order` (with optional duplicates interleaved) and
/// returns everything the receiver released, concatenated. Checks on
/// every step that the cumulative ACK point (`next_seq`) never runs
/// ahead of what was actually released-or-releasable in order.
fn deliver(
    rx: &mut TcpReceiver,
    pool: &BufferPool,
    segments: &[(u64, Vec<u8>)],
    order: &[usize],
    dup_every: usize,
) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, &idx) in order.iter().enumerate() {
        let (seq, bytes) = &segments[idx];
        rx.on_segment(*seq, Aggregate::from_bytes(pool, bytes));
        if dup_every > 0 && i % dup_every == 0 {
            // Immediate duplicate of the same segment — the
            // retransmission that raced its own ACK.
            rx.on_segment(*seq, Aggregate::from_bytes(pool, bytes));
        }
        if let Some(agg) = rx.read_available() {
            out.extend_from_slice(&agg.to_vec());
        }
        assert_eq!(rx.next_seq(), out.len() as u64 + rx.available());
    }
    while let Some(agg) = rx.read_available() {
        out.extend_from_slice(&agg.to_vec());
    }
    out
}

fn pool() -> BufferPool {
    BufferPool::new(PoolId(9), Acl::kernel_only(), 4096)
}

proptest! {
    /// Any permutation of any segmentation reassembles byte-identically.
    #[test]
    fn any_permutation_reassembles(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
        shuffle_seed in any::<u64>(),
    ) {
        let segments = segment(&data, &cuts);
        let mut order: Vec<usize> = (0..segments.len()).collect();
        // Fisher–Yates from the seed (no RNG deps in this crate's tests).
        let mut s = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut rx = TcpReceiver::new(0);
        let out = deliver(&mut rx, &pool(), &segments, &order, 0);
        prop_assert_eq!(rx.next_seq(), data.len() as u64);
        prop_assert_eq!(out, data);
        prop_assert_eq!(rx.reorder_bytes(), 0, "queue fully drained");
    }

    /// Duplication on top of permutation changes nothing: every byte is
    /// delivered exactly once.
    #[test]
    fn duplicates_are_invisible(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
        dup_every in 1usize..4,
    ) {
        let segments = segment(&data, &cuts);
        // Reversed order maximizes queue residency while dups arrive.
        let order: Vec<usize> = (0..segments.len()).rev().collect();
        let mut rx = TcpReceiver::new(0);
        let out = deliver(&mut rx, &pool(), &segments, &order, dup_every);
        prop_assert_eq!(out, data);
    }

    /// Overlapping retransmissions — segments re-cut at *different*
    /// boundaries, as go-back-N produces after a partial ACK — still
    /// reassemble to the original bytes exactly once.
    #[test]
    fn overlapping_recuts_reassemble(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        cuts_a in proptest::collection::vec(any::<usize>(), 0..12),
        cuts_b in proptest::collection::vec(any::<usize>(), 0..12),
        interleave in any::<bool>(),
    ) {
        let a = segment(&data, &cuts_a);
        let b = segment(&data, &cuts_b);
        let p = pool();
        let mut rx = TcpReceiver::new(0);
        let mut out = Vec::new();
        let feed = |rx: &mut TcpReceiver, seg: &(u64, Vec<u8>), out: &mut Vec<u8>| {
            rx.on_segment(seg.0, Aggregate::from_bytes(&p, &seg.1));
            if let Some(agg) = rx.read_available() {
                out.extend_from_slice(&agg.to_vec());
            }
        };
        if interleave {
            let mut ia = a.iter();
            let mut ib = b.iter().rev();
            loop {
                let (sa, sb) = (ia.next(), ib.next());
                if let Some(seg) = sb { feed(&mut rx, seg, &mut out); }
                if let Some(seg) = sa { feed(&mut rx, seg, &mut out); }
                if sa.is_none() && sb.is_none() { break; }
            }
        } else {
            // Whole stream at cut set B (out of order), then a full
            // go-back-N replay at cut set A.
            for seg in b.iter().rev() { feed(&mut rx, seg, &mut out); }
            for seg in &a { feed(&mut rx, seg, &mut out); }
        }
        while let Some(agg) = rx.read_available() {
            out.extend_from_slice(&agg.to_vec());
        }
        prop_assert_eq!(out, data);
        prop_assert_eq!(rx.next_seq(), data.len() as u64);
    }

    /// A nonzero initial sequence number shifts nothing: reassembly is
    /// position-relative.
    #[test]
    fn initial_seq_is_an_offset(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
        isn in 0u64..u64::MAX / 2,
    ) {
        let segments = segment(&data, &cuts);
        let mut rx = TcpReceiver::new(isn);
        let p = pool();
        let mut out = Vec::new();
        for (seq, bytes) in segments.iter().rev() {
            rx.on_segment(isn + seq, Aggregate::from_bytes(&p, bytes));
            if let Some(agg) = rx.read_available() {
                out.extend_from_slice(&agg.to_vec());
            }
        }
        prop_assert_eq!(out, data);
        prop_assert_eq!(rx.next_seq(), isn + data.len() as u64);
    }
}

#![warn(missing_docs)]
//! The IO-Lite buffer system: immutable I/O buffers and mutable buffer
//! aggregates (paper §3.1, §3.3, §4.5).
//!
//! All I/O data in IO-Lite lives in **immutable buffers** whose physical
//! location never changes; every subsystem (file cache, network, IPC,
//! applications) shares single physical copies read-only. Subsystems
//! manipulate data through **buffer aggregates** — ordered lists of
//! ⟨pointer, length⟩ *slices* into those buffers. Mutation allocates new
//! buffers for the changed bytes and chains them with the unchanged
//! slices.
//!
//! Buffers are allocated from per-ACL **pools** in 64KB **chunks** (the
//! access-control granularity of §4.5). Chunks recycle: when every
//! allocation in a chunk has been dropped, the chunk returns to its
//! pool's free list and the next allocation reuses it with a bumped
//! **generation number** — the mechanism behind both the cheap
//! steady-state IPC of §3.2 (mappings persist across recycling) and the
//! checksum cache of §3.9 (⟨address, generation⟩ uniquely identifies
//! contents system-wide).
//!
//! This crate is pure data-plane: it moves real bytes and reports
//! allocation events ([`AllocEvent`]) that the kernel layer converts into
//! simulated VM-mapping cost. It is deliberately single-threaded (`Rc`);
//! the enclosing simulation is deterministic and sequential.
//!
//! # Fast-path guarantees
//!
//! Aggregates keep a cumulative-offset index over their slice deque, so
//! the structural operations match the cost model the paper argues from
//! (§3.8) rather than degrading linearly with fragmentation: indexing
//! ([`Aggregate::byte_at`]) is O(log n) in the slice count,
//! [`Aggregate::range`]/[`Aggregate::copy_to`] are O(log n + k) for k
//! slices touched, [`Aggregate::advance`]/[`Aggregate::truncate`] trim
//! in place (amortized O(1) per dropped slice), prepending is O(1)
//! amortized per slice, and [`Aggregate::pack`] copies each byte exactly
//! once. Hot consumers iterate byte runs through the zero-alloc
//! [`AggCursor`] / [`Aggregate::chunks`] / [`Aggregate::as_iovecs`]
//! APIs instead of per-byte indexing or `to_vec` materialization; see
//! the [`aggregate`] module docs for the full complexity table.
//!
//! # Examples
//!
//! ```
//! use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
//!
//! let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(7)), 64 * 1024);
//! let hello = Aggregate::from_bytes(&pool, b"hello, ");
//! let world = Aggregate::from_bytes(&pool, b"world");
//! let both = hello.concat(&world);
//! assert_eq!(both.to_vec(), b"hello, world");
//! ```

pub mod acl;
pub mod aggregate;
pub mod cursor;
pub mod digest;
pub mod error;
pub mod fork;
pub mod ids;
pub mod pool;
pub mod reader;
pub mod slice;

pub use acl::Acl;
pub use aggregate::Aggregate;
pub use cursor::AggCursor;
pub use digest::{digest_aggregate, splitmix64, Fnv64};
pub use error::BufError;
pub use fork::PoolForker;
pub use ids::{BufferId, ChunkId, DomainId, Generation, PoolId};
pub use pool::{AllocEvent, BufMut, BufferPool, PoolStats};
pub use reader::AggReader;
pub use slice::Slice;

/// The virtual-memory page size the paper's prototype uses (FreeBSD x86).
pub const PAGE_SIZE: usize = 4096;

/// The default chunk size: the §4.5 access-control granularity.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

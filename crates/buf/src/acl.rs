//! Access-control lists for buffer pools (§3.3).
//!
//! Every pool carries a set of protection domains allowed to read the
//! buffers allocated from it. The set is tiny in practice (a server
//! process, maybe one CGI process, and the kernel), so a sorted `Vec`
//! beats a hash set.

use std::fmt;

use crate::ids::DomainId;

/// A set of protection domains with access to a pool's buffers.
///
/// The kernel ([`DomainId::KERNEL`]) is implicitly a member of every ACL:
/// the network subsystem "has access to the pages by virtue of being part
/// of the kernel" (§3.10).
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, DomainId};
///
/// let acl = Acl::with_domain(DomainId(4));
/// assert!(acl.allows(DomainId(4)));
/// assert!(acl.allows(DomainId::KERNEL));
/// assert!(!acl.allows(DomainId(5)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Acl {
    domains: Vec<DomainId>,
}

impl Acl {
    /// An ACL granting access only to the kernel.
    pub fn kernel_only() -> Self {
        Acl::default()
    }

    /// An ACL granting access to a single domain (plus the kernel).
    pub fn with_domain(d: DomainId) -> Self {
        let mut acl = Acl::default();
        acl.grant(d);
        acl
    }

    /// An ACL granting access to each listed domain (plus the kernel).
    pub fn with_domains(ds: &[DomainId]) -> Self {
        let mut acl = Acl::default();
        for &d in ds {
            acl.grant(d);
        }
        acl
    }

    /// Adds a domain to the ACL. Idempotent.
    pub fn grant(&mut self, d: DomainId) {
        if let Err(pos) = self.domains.binary_search(&d) {
            self.domains.insert(pos, d);
        }
    }

    /// Removes a domain from the ACL. Idempotent.
    pub fn revoke(&mut self, d: DomainId) {
        if let Ok(pos) = self.domains.binary_search(&d) {
            self.domains.remove(pos);
        }
    }

    /// Whether `d` may read buffers allocated under this ACL.
    pub fn allows(&self, d: DomainId) -> bool {
        d == DomainId::KERNEL || self.domains.binary_search(&d).is_ok()
    }

    /// The explicitly granted domains (the kernel is implicit).
    pub fn domains(&self) -> &[DomainId] {
        &self.domains
    }

    /// Number of explicitly granted domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no user domains are granted.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

impl fmt::Debug for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Acl{{kernel")?;
        for d in &self.domains {
            write!(f, ",{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_always_allowed() {
        assert!(Acl::kernel_only().allows(DomainId::KERNEL));
        assert!(Acl::with_domain(DomainId(9)).allows(DomainId::KERNEL));
    }

    #[test]
    fn grant_and_revoke() {
        let mut acl = Acl::kernel_only();
        assert!(!acl.allows(DomainId(1)));
        acl.grant(DomainId(1));
        assert!(acl.allows(DomainId(1)));
        acl.grant(DomainId(1));
        assert_eq!(acl.len(), 1);
        acl.revoke(DomainId(1));
        assert!(!acl.allows(DomainId(1)));
        acl.revoke(DomainId(1));
        assert!(acl.is_empty());
    }

    #[test]
    fn domains_stay_sorted() {
        let acl = Acl::with_domains(&[DomainId(5), DomainId(2), DomainId(8)]);
        assert_eq!(acl.domains(), &[DomainId(2), DomainId(5), DomainId(8)]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Acl::with_domains(&[DomainId(1), DomainId(2)]);
        let b = Acl::with_domains(&[DomainId(2), DomainId(1)]);
        assert_eq!(a, b);
    }
}

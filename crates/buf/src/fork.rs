//! Deep pool forking for kernel-state snapshots.
//!
//! [`crate::BufferPool`]'s `Clone` **shares** the pool (one `Arc`'d
//! allocator), which is the right semantics for handles but the wrong one
//! for a pure `apply(state, command) -> state'`: a snapshot taken by
//! cloning would still mutate the original through the shared interior.
//! [`PoolForker`] produces a genuinely independent copy of a set of pools
//! and of every aggregate the kernel state holds into them.
//!
//! Forking works in two passes driven by the caller:
//!
//! 1. **Fork the pools.** Each chunk of a forked pool gets an independent
//!    twin (same [`crate::ChunkId`], pool, size, and generation); the
//!    forker remembers the original→twin mapping by identity.
//! 2. **Fork the aggregates.** Every slice whose chunk belongs to a
//!    forked pool is rebound onto a twin buffer (bytes copied once per
//!    underlying buffer, views preserved); slices into non-forked pools
//!    are shared as-is.
//!
//! Rebinding keeps the forked pool's recycling behaviour faithful: the
//! twin chunks' reference counts include exactly the forked state's
//! buffers, so a drained chunk recycles in the fork when — and only
//! when — the forked state no longer references it. References held
//! *outside* the forked state (application-held slices) deliberately do
//! not pin twin chunks; a snapshot captures kernel state, not the
//! application heap.

use std::collections::HashMap;
use std::sync::Arc;

use crate::aggregate::Aggregate;
use crate::slice::{BufferInner, ChunkState, Slice};

/// Forks buffer pools and rebinds aggregates onto the forked chunks.
///
/// One forker instance must be used for one whole snapshot: the identity
/// maps it accumulates are what preserve buffer sharing (two aggregates
/// viewing one buffer still view one buffer after the fork).
#[derive(Default)]
pub struct PoolForker {
    /// Original chunk identity → forked twin.
    chunks: HashMap<usize, Arc<ChunkState>>,
    /// Original buffer identity → forked twin.
    buffers: HashMap<usize, Arc<BufferInner>>,
}

impl PoolForker {
    /// Creates an empty forker for one snapshot.
    pub fn new() -> Self {
        PoolForker::default()
    }

    /// Returns the twin of `orig`, creating it on first sight.
    pub(crate) fn fork_chunk(&mut self, orig: &Arc<ChunkState>) -> Arc<ChunkState> {
        let key = Arc::as_ptr(orig) as usize;
        if let Some(c) = self.chunks.get(&key) {
            return Arc::clone(c);
        }
        let forked = Arc::new(ChunkState::with_generation(
            orig.id(),
            orig.pool(),
            orig.size(),
            orig.generation().0,
        ));
        self.chunks.insert(key, Arc::clone(&forked));
        forked
    }

    /// Forks one slice: rebinds it onto a twin buffer if its chunk
    /// belongs to a pool forked earlier with [`crate::BufferPool::fork`],
    /// otherwise shares the original buffer.
    pub fn fork_slice(&mut self, s: &Slice) -> Slice {
        let (inner, off, len) = s.parts();
        let chunk_key = Arc::as_ptr(inner.chunk()) as usize;
        let Some(forked_chunk) = self.chunks.get(&chunk_key).map(Arc::clone) else {
            return s.clone();
        };
        let buf_key = Arc::as_ptr(inner) as usize;
        let forked_inner = match self.buffers.get(&buf_key) {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(BufferInner::new(
                    inner.bytes().to_vec().into_boxed_slice(),
                    inner.meta().clone(),
                    forked_chunk,
                ));
                self.buffers.insert(buf_key, Arc::clone(&b));
                b
            }
        };
        Slice::from_parts(forked_inner, off, len)
    }

    /// Forks every slice of an aggregate, preserving order and views.
    pub fn fork_aggregate(&mut self, a: &Aggregate) -> Aggregate {
        let mut out = Aggregate::empty();
        for s in a.slices() {
            out.append_slice(self.fork_slice(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, BufferPool, DomainId, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(7), Acl::with_domain(DomainId(1)), 4096)
    }

    #[test]
    fn forked_pool_is_independent() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"hello world");
        let mut f = PoolForker::new();
        let p2 = p.fork(&mut f);
        let a2 = f.fork_aggregate(&a);
        assert_eq!(p2.id(), p.id());
        assert_eq!(a2.to_vec(), b"hello world");
        // Allocating from the fork must not disturb the original.
        let before = p.stats();
        let _ = Aggregate::from_bytes(&p2, b"xyz");
        assert_eq!(p.stats().allocs, before.allocs);
        assert!(p2.stats().allocs > before.allocs);
    }

    #[test]
    fn fork_preserves_buffer_identity_and_generation() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let s = a.slice_at(0);
        let mut f = PoolForker::new();
        let _p2 = p.fork(&mut f);
        let a2 = f.fork_aggregate(&a);
        let s2 = a2.slice_at(0);
        assert_eq!(s2.id(), s.id());
        assert_eq!(s2.generation(), s.generation());
        assert_eq!(s2.pool(), s.pool());
        // Two forks of the same buffer share one twin.
        let b2 = f.fork_slice(s);
        assert!(a2.slice_at(0).same_buffer(&b2));
    }

    #[test]
    fn slices_of_unforked_pools_are_shared() {
        let p = pool();
        let other = BufferPool::new(PoolId(8), Acl::with_domain(DomainId(2)), 4096);
        let a = Aggregate::from_bytes(&other, b"shared");
        let mut f = PoolForker::new();
        let _p2 = p.fork(&mut f);
        let a2 = f.fork_aggregate(&a);
        assert!(a2.slice_at(0).same_buffer(a.slice_at(0)));
    }

    #[test]
    fn fork_keeps_open_chunk_packing_deterministic() {
        let p = pool();
        let _a = Aggregate::from_bytes(&p, b"xx");
        let mut f = PoolForker::new();
        let p2 = p.fork(&mut f);
        // Both the original and the fork pack the next allocation into
        // the same chunk at the same offset.
        let m1 = p.alloc(4).unwrap();
        let m2 = p2.alloc(4).unwrap();
        assert_eq!(m1.id(), m2.id());
        assert_eq!(m1.generation(), m2.generation());
    }
}

//! Buffer aggregates: the mutable ADT over immutable buffers (§3.1).
//!
//! An aggregate is an ordered list of [`Slice`]s. Its *value* is the
//! concatenation of its slices' bytes. Aggregates are passed **by value**
//! between subsystems while the underlying buffers pass by reference —
//! cloning an aggregate never copies payload bytes.
//!
//! The operations mirror the paper's list: creation, destruction,
//! duplication, concatenation, truncation, prepending, appending,
//! splitting, plus the §3.8 mutation model (`replace`: new buffers
//! chained with unmodified slices) and the "case 3" escape hatch
//! (`pack`: defragment into one contiguous buffer when chaining costs
//! exceed a copy).
//!
//! # Complexity
//!
//! The slice list is a deque paired with a cumulative-offset index
//! (`ends[i]` = end offset of slice `i`), so §3.8's "indexing cost" is
//! logarithmic rather than linear in the fragmentation degree. With
//! `n` = slice count and `k` = slices overlapping the touched range:
//!
//! | operation | cost |
//! |---|---|
//! | [`Aggregate::byte_at`] | O(log n) |
//! | [`Aggregate::range`], [`Aggregate::copy_to`] | O(log n + k) |
//! | [`Aggregate::advance`], [`Aggregate::truncate`] | O(k) in place, amortized O(1) per dropped slice |
//! | [`Aggregate::append_slice`], [`Aggregate::prepend_slice`] | O(1) amortized |
//! | [`Aggregate::append`], [`Aggregate::prepend`] | O(other's n) |
//! | [`Aggregate::pack`], [`Aggregate::copy_from_agg`] | O(bytes), exactly one copy |
//! | [`Aggregate::cursor`], [`Aggregate::chunks`] | O(1) to create, zero-alloc to iterate |

use std::collections::{HashSet, VecDeque};
use std::fmt;

use crate::cursor::AggCursor;
use crate::error::BufError;
use crate::pool::BufferPool;
use crate::reader::AggReader;
use crate::slice::Slice;

/// The absolute coordinate of logical offset 0 in a fresh aggregate.
///
/// Offsets in the index are kept in a monotonically increasing absolute
/// coordinate space so `advance` (base moves up) and `prepend_slice`
/// (base moves down) both avoid renumbering. Starting mid-range leaves
/// 2^63 bytes of headroom in each direction.
const ORIGIN: u64 = 1 << 63;

/// A mutable buffer aggregate over immutable IO-Lite buffers.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
///
/// let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 4096);
/// let a = Aggregate::from_bytes(&pool, b"GET /index.html");
/// let (verb, rest) = a.split_at(3);
/// assert_eq!(verb.to_vec(), b"GET");
/// assert_eq!(rest.to_vec(), b" /index.html");
/// ```
#[derive(Clone)]
pub struct Aggregate {
    slices: VecDeque<Slice>,
    /// `ends[i]` is the absolute end offset of `slices[i]`; strictly
    /// increasing because empty slices are never stored.
    ends: VecDeque<u64>,
    /// Absolute offset of logical byte 0.
    base: u64,
    len: u64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate {
            slices: VecDeque::new(),
            ends: VecDeque::new(),
            base: ORIGIN,
            len: 0,
        }
    }
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn empty() -> Self {
        Aggregate::default()
    }

    /// Creates an aggregate viewing a single slice.
    pub fn from_slice(s: Slice) -> Self {
        let mut agg = Aggregate::empty();
        agg.append_slice(s);
        agg
    }

    /// Allocates buffers from `pool` and copies `data` into them.
    ///
    /// Data larger than the pool's chunk size spans multiple buffers;
    /// the resulting aggregate still reads back as one contiguous value.
    /// This is the ingress point where outside bytes *enter* the IO-Lite
    /// world (and the one place a copy is inherent).
    pub fn from_bytes(pool: &BufferPool, data: &[u8]) -> Self {
        let mut agg = Aggregate::empty();
        let max = pool.chunk_size();
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(max);
            let mut b = pool
                .alloc(take)
                .expect("chunk-size-bounded allocation cannot fail");
            b.put(&rest[..take]);
            agg.append_slice(b.freeze());
            rest = &rest[take..];
        }
        agg
    }

    /// Like [`Aggregate::from_bytes`] but with page-aligned, page-sized
    /// buffers, as the file system produces for disk data (§3.5).
    pub fn from_bytes_aligned(pool: &BufferPool, data: &[u8], align: usize) -> Self {
        let mut agg = Aggregate::empty();
        let max = pool.chunk_size();
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(max);
            let mut b = pool
                .alloc_aligned(take, align)
                .expect("chunk-size-bounded allocation cannot fail");
            b.put(&rest[..take]);
            agg.append_slice(b.freeze());
            rest = &rest[take..];
        }
        agg
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the aggregate holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slices (the fragmentation degree; drives indexing cost
    /// in §3.8's analysis).
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// The slices, in order.
    pub fn slices(
        &self,
    ) -> impl ExactSizeIterator<Item = &Slice> + DoubleEndedIterator + Clone + '_ {
        self.slices.iter()
    }

    /// The `i`-th slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_slices()`.
    pub fn slice_at(&self, i: usize) -> &Slice {
        &self.slices[i]
    }

    /// The contiguous byte runs, in order — the vectored (`iovec`) view
    /// hot consumers iterate instead of indexing per byte.
    pub fn chunks(&self) -> impl ExactSizeIterator<Item = &[u8]> + Clone + '_ {
        self.slices.iter().map(Slice::as_bytes)
    }

    /// Fills `out` with the aggregate's byte runs (an `iovec` array for
    /// vectored I/O). `out` is cleared first; reusing one `Vec` across
    /// calls keeps the steady state allocation-free.
    pub fn as_iovecs<'a>(&'a self, out: &mut Vec<&'a [u8]>) {
        out.clear();
        out.extend(self.chunks());
    }

    /// A borrowing cursor positioned at `offset` (clamped to the end).
    ///
    /// Creation is O(log n); all traversal from there is zero-alloc.
    pub fn cursor_at(&self, offset: u64) -> AggCursor<'_> {
        AggCursor::new(self, offset)
    }

    /// A borrowing cursor positioned at the start.
    pub fn cursor(&self) -> AggCursor<'_> {
        self.cursor_at(0)
    }

    pub(crate) fn slice_deque(&self) -> &VecDeque<Slice> {
        &self.slices
    }

    /// Locates the slice containing logical offset `idx`, returning
    /// `(slice index, offset within that slice)`. O(log n).
    ///
    /// Precondition: `idx < self.len`.
    pub(crate) fn locate(&self, idx: u64) -> (usize, usize) {
        debug_assert!(idx < self.len);
        let target = self.base + idx;
        // First slice whose end is strictly beyond the target.
        let i = self.ends.partition_point(|&e| e <= target);
        let start = self.ends[i] - self.slices[i].len() as u64;
        (i, (target - start) as usize)
    }

    /// Appends one slice. O(1) amortized.
    pub fn append_slice(&mut self, s: Slice) {
        if s.is_empty() {
            return;
        }
        let end = self.ends.back().copied().unwrap_or(self.base) + s.len() as u64;
        self.len += s.len() as u64;
        self.ends.push_back(end);
        self.slices.push_back(s);
    }

    /// Prepends one slice. O(1) amortized (no renumbering: the base
    /// offset moves down instead).
    pub fn prepend_slice(&mut self, s: Slice) {
        if s.is_empty() {
            return;
        }
        self.len += s.len() as u64;
        self.ends.push_front(self.base);
        self.base -= s.len() as u64;
        self.slices.push_front(s);
    }

    /// Appends all slices of `other` (by reference; no payload copy).
    pub fn append(&mut self, other: &Aggregate) {
        for s in &other.slices {
            self.append_slice(s.clone());
        }
    }

    /// Prepends all slices of `other`. O(other's slice count); `self`'s
    /// existing slices are not shifted.
    pub fn prepend(&mut self, other: &Aggregate) {
        for s in other.slices.iter().rev() {
            self.prepend_slice(s.clone());
        }
    }

    /// Returns `self ++ other` without modifying either.
    pub fn concat(&self, other: &Aggregate) -> Aggregate {
        let mut out = self.clone();
        out.append(other);
        out
    }

    /// Splits into `(first mid bytes, rest)` without copying.
    ///
    /// `mid` is clamped to the aggregate's length.
    pub fn split_at(&self, mid: u64) -> (Aggregate, Aggregate) {
        let mid = mid.min(self.len);
        let head = self.range(0, mid).expect("clamped");
        let tail = self.range(mid, self.len - mid).expect("clamped");
        (head, tail)
    }

    /// Keeps only the first `len` bytes, in place: trailing slices are
    /// dropped and at most one boundary slice is trimmed; nothing is
    /// rebuilt or cloned.
    pub fn truncate(&mut self, len: u64) {
        if len >= self.len {
            return;
        }
        let target = self.base + len;
        while let Some(&end) = self.ends.back() {
            let slen = self.slices.back().expect("parallel deques").len() as u64;
            if end - slen >= target {
                self.ends.pop_back();
                self.slices.pop_back();
            } else {
                break;
            }
        }
        if let (Some(end), Some(last)) = (self.ends.back_mut(), self.slices.back_mut()) {
            if *end > target {
                let keep = (last.len() as u64 - (*end - target)) as usize;
                *last = last.sub(0, keep).expect("keep < len");
                *end = target;
            }
        }
        self.len = len;
    }

    /// Drops the first `n` bytes, in place: leading slices are dropped
    /// and at most one boundary slice is trimmed (the zero-copy trim TCP
    /// reassembly leans on).
    pub fn advance(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let n = n.min(self.len);
        let target = self.base + n;
        while let Some(&end) = self.ends.front() {
            if end <= target {
                self.ends.pop_front();
                self.slices.pop_front();
            } else {
                break;
            }
        }
        if let (Some(&end), Some(front)) = (self.ends.front(), self.slices.front_mut()) {
            let keep = (end - target) as usize;
            if keep < front.len() {
                let cut = front.len() - keep;
                *front = front.sub(cut, keep).expect("in range");
            }
        }
        self.base = target;
        self.len -= n;
    }

    /// A zero-copy view of `len` bytes starting at `start`.
    ///
    /// O(log n + k) where `k` is the number of slices in the range — the
    /// slices outside it are never visited.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::OutOfRange`] if the range exceeds the
    /// aggregate (including on arithmetic overflow of `start + len`).
    pub fn range(&self, start: u64, len: u64) -> Result<Aggregate, BufError> {
        let end = start.checked_add(len).ok_or(BufError::OutOfRange {
            requested: u64::MAX,
            available: self.len,
        })?;
        if end > self.len {
            return Err(BufError::OutOfRange {
                requested: end,
                available: self.len,
            });
        }
        let mut out = Aggregate::empty();
        if len == 0 {
            return Ok(out);
        }
        let (mut i, off) = self.locate(start);
        let mut remaining = len;
        // First slice: trim the front.
        let first = &self.slices[i];
        let avail = first.len() - off;
        let take = (remaining as usize).min(avail);
        out.append_slice(first.sub(off, take).expect("in range"));
        remaining -= take as u64;
        i += 1;
        while remaining > 0 {
            let s = &self.slices[i];
            if (s.len() as u64) <= remaining {
                out.append_slice(s.clone());
                remaining -= s.len() as u64;
            } else {
                out.append_slice(s.sub(0, remaining as usize).expect("in range"));
                remaining = 0;
            }
            i += 1;
        }
        Ok(out)
    }

    /// Copies the aggregate's value into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len as usize);
        for chunk in self.chunks() {
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Copies up to `dst.len()` bytes starting at `offset` into `dst`,
    /// returning how many were copied. O(log n + copied bytes).
    pub fn copy_to(&self, offset: u64, dst: &mut [u8]) -> usize {
        if offset >= self.len || dst.is_empty() {
            return 0;
        }
        self.cursor_at(offset).copy_to(dst)
    }

    /// The byte at `idx`, or `None` past the end.
    ///
    /// This is the §3.8 "indexing cost" operation; the offset index
    /// makes it O(log n) in the slice count.
    pub fn byte_at(&self, idx: u64) -> Option<u8> {
        if idx >= self.len {
            return None;
        }
        let (i, off) = self.locate(idx);
        Some(self.slices[i].as_bytes()[off])
    }

    /// The logical offset of the first occurrence of `byte` at or after
    /// `start`, scanning the byte runs without allocation.
    pub fn find_byte(&self, start: u64, byte: u8) -> Option<u64> {
        if start >= self.len {
            return None;
        }
        self.cursor_at(start).find_byte(byte)
    }

    /// Whether the aggregate's value begins with `needle` (byte-wise,
    /// across slice boundaries, without materializing).
    pub fn starts_with(&self, needle: &[u8]) -> bool {
        self.cursor().starts_with(needle)
    }

    /// Value equality (byte-wise), independent of fragmentation.
    pub fn content_eq(&self, other: &Aggregate) -> bool {
        if self.len != other.len {
            return false;
        }
        // Compare run-by-run without materializing either side.
        let mut a = self.cursor();
        let mut b = other.cursor();
        while let (Some(ca), Some(cb)) = (a.peek_chunk(), b.peek_chunk()) {
            let n = ca.len().min(cb.len());
            if ca[..n] != cb[..n] {
                return false;
            }
            a.advance(n as u64);
            b.advance(n as u64);
        }
        true
    }

    /// Iterates over the aggregate's bytes.
    ///
    /// Prefer [`Aggregate::chunks`] or [`Aggregate::cursor`] on hot
    /// paths: run-wise access lets the consumer use slice operations
    /// instead of paying per-byte iterator overhead.
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.chunks().flat_map(|c| c.iter().copied())
    }

    /// A `std::io::Read` adapter over the aggregate.
    pub fn reader(&self) -> AggReader<'_> {
        AggReader::new(self)
    }

    /// The §3.8 mutation model: returns a new aggregate equal to `self`
    /// with `range` replaced by `new_data`, copying **only** `new_data`
    /// into fresh buffers and chaining the untouched slices.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::OutOfRange`] if `start + len` exceeds the
    /// aggregate (including on arithmetic overflow).
    pub fn replace(
        &self,
        pool: &BufferPool,
        start: u64,
        len: u64,
        new_data: &[u8],
    ) -> Result<Aggregate, BufError> {
        let end = start.checked_add(len).ok_or(BufError::OutOfRange {
            requested: u64::MAX,
            available: self.len,
        })?;
        if end > self.len {
            return Err(BufError::OutOfRange {
                requested: end,
                available: self.len,
            });
        }
        let mut out = self.range(0, start).expect("validated");
        out.append(&Aggregate::from_bytes(pool, new_data));
        out.append(&self.range(end, self.len - end).expect("validated"));
        Ok(out)
    }

    /// The zero-copy variant of [`Aggregate::replace`]: returns a new
    /// aggregate equal to `self` with `range` replaced by `patch`,
    /// chaining *every* slice — head, patch, and tail — by reference.
    /// No byte moves.
    ///
    /// This is the §3.5 copy-on-write write path for writers that
    /// already own their new bytes as an aggregate (an upload body
    /// reassembled from the wire): the patch is spliced over the cached
    /// version while concurrent readers keep their references to the
    /// old slices, so they observe only the complete old value — never
    /// a torn mix.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::OutOfRange`] if `start + len` exceeds the
    /// aggregate (including on arithmetic overflow).
    pub fn splice_agg(&self, start: u64, len: u64, patch: &Aggregate) -> Result<Aggregate, BufError> {
        let end = start.checked_add(len).ok_or(BufError::OutOfRange {
            requested: u64::MAX,
            available: self.len,
        })?;
        if end > self.len {
            return Err(BufError::OutOfRange {
                requested: end,
                available: self.len,
            });
        }
        let mut out = self.range(0, start).expect("validated");
        out.append(patch);
        out.append(&self.range(end, self.len - end).expect("validated"));
        Ok(out)
    }

    /// Defragments into a minimal number of contiguous buffers (the
    /// §3.8 "case 3" full copy, and the layout `mmap` needs). Each byte
    /// is copied exactly once, straight into the destination buffers.
    pub fn pack(&self, pool: &BufferPool) -> Aggregate {
        let mut out = Aggregate::empty();
        out.copy_from_agg(pool, self);
        out
    }

    /// Appends a *deep copy* of `src`'s value, allocated from `pool`,
    /// copying each byte exactly once (no intermediate `Vec`).
    pub fn copy_from_agg(&mut self, pool: &BufferPool, src: &Aggregate) {
        let max = pool.chunk_size();
        let mut cur = src.cursor();
        while cur.remaining() > 0 {
            let take = (cur.remaining() as usize).min(max);
            let mut b = pool
                .alloc(take)
                .expect("chunk-size-bounded allocation cannot fail");
            let mut filled = 0;
            while filled < take {
                let chunk = cur.peek_chunk().expect("length accounted");
                let n = chunk.len().min(take - filled);
                b.put(&chunk[..n]);
                cur.advance(n as u64);
                filled += n;
            }
            self.append_slice(b.freeze());
        }
    }

    /// Sum of distinct buffer bytes referenced, counting each underlying
    /// buffer once at its **full** allocated size (used by memory
    /// accounting: overlapping or repeated slices don't double-bill, and
    /// a partial view still pins the whole buffer).
    pub fn distinct_buffer_bytes(&self) -> u64 {
        match self.slices.len() {
            0 => 0,
            1 => self.slices[0].buffer_len() as u64,
            _ => {
                let mut seen = HashSet::with_capacity(self.slices.len());
                let mut total = 0u64;
                for s in &self.slices {
                    if seen.insert(s.buffer_key()) {
                        total += s.buffer_len() as u64;
                    }
                }
                total
            }
        }
    }
}

impl fmt::Debug for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aggregate(len={}, slices={})",
            self.len,
            self.slices.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, DomainId, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64)
    }

    #[test]
    fn from_bytes_round_trips() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"hello world");
        assert_eq!(a.len(), 11);
        assert_eq!(a.to_vec(), b"hello world");
    }

    #[test]
    fn large_data_spans_chunks() {
        let p = pool();
        let data: Vec<u8> = (0..200u8).collect();
        let a = Aggregate::from_bytes(&p, &data);
        assert!(a.num_slices() >= 4, "64-byte chunks force splitting");
        assert_eq!(a.to_vec(), data);
    }

    #[test]
    fn concat_and_prepend() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abc");
        let b = Aggregate::from_bytes(&p, b"def");
        assert_eq!(a.concat(&b).to_vec(), b"abcdef");
        let mut c = b.clone();
        c.prepend(&a);
        assert_eq!(c.to_vec(), b"abcdef");
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn prepend_keeps_index_consistent() {
        let p = pool();
        let mut a = Aggregate::from_bytes(&p, b"world");
        a.prepend(&Aggregate::from_bytes(&p, b"hello "));
        a.prepend(&Aggregate::from_bytes(&p, b">> "));
        assert_eq!(a.to_vec(), b">> hello world");
        for (i, &b) in b">> hello world".iter().enumerate() {
            assert_eq!(a.byte_at(i as u64), Some(b));
        }
        // Mixed front/back mutation after prepending.
        a.advance(3);
        a.append_slice(Aggregate::from_bytes(&p, b"!").slice_at(0).clone());
        assert_eq!(a.to_vec(), b"hello world!");
    }

    #[test]
    fn split_at_various_points() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let (h, t) = a.split_at(0);
        assert!(h.is_empty());
        assert_eq!(t.to_vec(), b"abcdef");
        let (h, t) = a.split_at(6);
        assert_eq!(h.to_vec(), b"abcdef");
        assert!(t.is_empty());
        let (h, t) = a.split_at(2);
        assert_eq!(h.to_vec(), b"ab");
        assert_eq!(t.to_vec(), b"cdef");
        // Clamped past the end.
        let (h, t) = a.split_at(100);
        assert_eq!(h.len(), 6);
        assert!(t.is_empty());
    }

    #[test]
    fn truncate_and_advance() {
        let p = pool();
        let mut a = Aggregate::from_bytes(&p, b"abcdef");
        a.truncate(4);
        assert_eq!(a.to_vec(), b"abcd");
        a.advance(1);
        assert_eq!(a.to_vec(), b"bcd");
        a.truncate(100);
        assert_eq!(a.len(), 3);
        a.advance(0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn advance_and_truncate_are_in_place() {
        // 16-byte buffers: a 64-byte value has 4 slices.
        let p = BufferPool::new(PoolId(3), Acl::kernel_only(), 16);
        let data: Vec<u8> = (0..64u8).collect();
        let mut a = Aggregate::from_bytes(&p, &data);
        assert_eq!(a.num_slices(), 4);
        a.advance(20); // Drops one slice, trims the next.
        assert_eq!(a.num_slices(), 3);
        assert_eq!(a.to_vec(), &data[20..]);
        a.truncate(30); // 20..50: drops the tail slice, trims the new last.
        assert_eq!(a.to_vec(), &data[20..50]);
        for (i, &b) in data[20..50].iter().enumerate() {
            assert_eq!(a.byte_at(i as u64), Some(b));
        }
        a.advance(30);
        assert!(a.is_empty());
        assert_eq!(a.num_slices(), 0);
    }

    #[test]
    fn range_is_zero_copy_view() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        let r = a.range(2, 4).unwrap();
        assert_eq!(r.to_vec(), b"cdef");
        assert!(a.range(5, 10).is_err());
    }

    #[test]
    fn range_rejects_overflowing_bounds() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        // start + len wraps around u64: must be OutOfRange, not a panic
        // or a bogus success.
        assert!(matches!(
            a.range(u64::MAX, 2),
            Err(BufError::OutOfRange { .. })
        ));
        assert!(matches!(
            a.range(2, u64::MAX),
            Err(BufError::OutOfRange { .. })
        ));
        assert!(matches!(
            a.replace(&p, u64::MAX, 2, b"x"),
            Err(BufError::OutOfRange { .. })
        ));
        assert!(matches!(
            a.replace(&p, 2, u64::MAX - 1, b"x"),
            Err(BufError::OutOfRange { .. })
        ));
    }

    #[test]
    fn byte_at_indexing() {
        let p = pool();
        let data: Vec<u8> = (0..150u8).collect();
        let a = Aggregate::from_bytes(&p, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(a.byte_at(i as u64), Some(b));
        }
        assert_eq!(a.byte_at(150), None);
    }

    #[test]
    fn copy_to_partial_windows() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        let mut buf = [0u8; 3];
        assert_eq!(a.copy_to(2, &mut buf), 3);
        assert_eq!(&buf, b"cde");
        assert_eq!(a.copy_to(6, &mut buf), 2);
        assert_eq!(&buf[..2], b"gh");
        assert_eq!(a.copy_to(8, &mut buf), 0);
    }

    #[test]
    fn content_eq_ignores_fragmentation() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let b = Aggregate::from_bytes(&p, b"abc").concat(&Aggregate::from_bytes(&p, b"def"));
        assert!(a.content_eq(&b));
        let c = Aggregate::from_bytes(&p, b"abcdeX");
        assert!(!a.content_eq(&c));
        let d = Aggregate::from_bytes(&p, b"abcde");
        assert!(!a.content_eq(&d));
    }

    #[test]
    fn find_byte_and_starts_with() {
        let p = BufferPool::new(PoolId(4), Acl::kernel_only(), 4);
        let a = Aggregate::from_bytes(&p, b"GET /x HTTP/1.1\r\n");
        assert!(a.num_slices() > 2, "spans buffers");
        assert!(a.starts_with(b"GET /x"));
        assert!(!a.starts_with(b"GET /y"));
        assert!(!a.starts_with(b"GET /x HTTP/1.1\r\n++"));
        assert_eq!(a.find_byte(0, b' '), Some(3));
        assert_eq!(a.find_byte(4, b' '), Some(6));
        assert_eq!(a.find_byte(0, b'\r'), Some(15));
        assert_eq!(a.find_byte(0, b'Z'), None);
        assert_eq!(a.find_byte(100, b'G'), None);
    }

    #[test]
    fn as_iovecs_reuses_scratch() {
        let p = BufferPool::new(PoolId(4), Acl::kernel_only(), 4);
        let a = Aggregate::from_bytes(&p, b"0123456789");
        let mut iov = Vec::new();
        a.as_iovecs(&mut iov);
        assert_eq!(iov.len(), a.num_slices());
        let flat: Vec<u8> = iov.concat();
        assert_eq!(flat, b"0123456789");
        // Second call clears rather than appends.
        a.as_iovecs(&mut iov);
        assert_eq!(iov.len(), a.num_slices());
    }

    #[test]
    fn replace_chains_new_buffer() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"GET /old.html HTTP/1.0");
        let b = a.replace(&p, 5, 3, b"new").unwrap();
        assert_eq!(b.to_vec(), b"GET /new.html HTTP/1.0");
        // Original is untouched (immutability).
        assert_eq!(a.to_vec(), b"GET /old.html HTTP/1.0");
        // The unmodified head and tail share buffers with the original.
        assert!(b.slice_at(0).same_buffer(a.slice_at(0)));
    }

    #[test]
    fn replace_with_different_length() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let grown = a.replace(&p, 3, 0, b"XYZ").unwrap();
        assert_eq!(grown.to_vec(), b"abcXYZdef");
        let shrunk = a.replace(&p, 1, 4, b"").unwrap();
        assert_eq!(shrunk.to_vec(), b"af");
        assert!(a.replace(&p, 5, 5, b"!").is_err());
    }

    #[test]
    fn splice_agg_is_fully_by_reference() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"GET /old.html HTTP/1.0");
        let patch = Aggregate::from_bytes(&p, b"new");
        let b = a.splice_agg(5, 3, &patch).unwrap();
        assert_eq!(b.to_vec(), b"GET /new.html HTTP/1.0");
        // Original is untouched (CoW: readers of `a` see the old value).
        assert_eq!(a.to_vec(), b"GET /old.html HTTP/1.0");
        // Head and tail share buffers with the original, and the patch
        // region shares the patch's buffer — nothing was copied.
        assert!(b.slice_at(0).same_buffer(a.slice_at(0)));
        assert!(b.slice_at(1).same_buffer(patch.slice_at(0)));
        assert!(b.slice_at(2).same_buffer(a.slice_at(0)));
        // Whole-value splice: the result *is* the patch by reference.
        let whole = a.splice_agg(0, a.len(), &patch).unwrap();
        assert_eq!(whole.to_vec(), b"new");
        assert!(whole.slice_at(0).same_buffer(patch.slice_at(0)));
        // Bounds are still checked.
        assert!(a.splice_agg(20, 5, &patch).is_err());
    }

    #[test]
    fn pack_defragments() {
        let p = BufferPool::new(PoolId(2), Acl::kernel_only(), 4096);
        let mut a = Aggregate::empty();
        for i in 0..10 {
            a.append(&Aggregate::from_bytes(&p, &[i as u8]));
        }
        assert_eq!(a.num_slices(), 10);
        let packed = a.pack(&p);
        assert_eq!(packed.num_slices(), 1);
        assert!(packed.content_eq(&a));
    }

    #[test]
    fn pack_spans_destination_chunks() {
        let src = BufferPool::new(PoolId(2), Acl::kernel_only(), 7);
        let dst = BufferPool::new(PoolId(3), Acl::kernel_only(), 64);
        let data: Vec<u8> = (0..200u8).collect();
        let frag = Aggregate::from_bytes(&src, &data);
        let packed = frag.pack(&dst);
        assert_eq!(packed.to_vec(), data);
        assert_eq!(packed.num_slices(), 4, "200 bytes over 64-byte chunks");
    }

    #[test]
    fn distinct_buffer_bytes_dedups() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcd");
        let s = a.slice_at(0).clone();
        let mut dup = Aggregate::from_slice(s.clone());
        dup.append_slice(s);
        assert_eq!(dup.len(), 8);
        assert_eq!(dup.distinct_buffer_bytes(), 4);
    }

    #[test]
    fn distinct_buffer_bytes_bills_whole_buffers() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        let s = a.slice_at(0);
        // Two disjoint partial views of one 8-byte buffer: the buffer is
        // pinned once, at its full size.
        let mut views = Aggregate::from_slice(s.sub(0, 2).unwrap());
        views.append_slice(s.sub(5, 3).unwrap());
        assert_eq!(views.len(), 5);
        assert_eq!(views.distinct_buffer_bytes(), 8);
    }

    #[test]
    fn empty_slices_are_dropped() {
        let p = pool();
        let mut a = Aggregate::empty();
        let s = Aggregate::from_bytes(&p, b"ab").slice_at(0).clone();
        a.append_slice(s.sub(0, 0).unwrap());
        assert!(a.is_empty());
        assert_eq!(a.num_slices(), 0);
    }

    #[test]
    fn reader_reads_all() {
        use std::io::Read;
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"stream me");
        let mut out = String::new();
        a.reader().read_to_string(&mut out).unwrap();
        assert_eq!(out, "stream me");
    }
}

//! Buffer aggregates: the mutable ADT over immutable buffers (§3.1).
//!
//! An aggregate is an ordered list of [`Slice`]s. Its *value* is the
//! concatenation of its slices' bytes. Aggregates are passed **by value**
//! between subsystems while the underlying buffers pass by reference —
//! cloning an aggregate never copies payload bytes.
//!
//! The operations mirror the paper's list: creation, destruction,
//! duplication, concatenation, truncation, prepending, appending,
//! splitting, plus the §3.8 mutation model (`replace`: new buffers
//! chained with unmodified slices) and the "case 3" escape hatch
//! (`pack`: defragment into one contiguous buffer when chaining costs
//! exceed a copy).

use std::fmt;

use crate::error::BufError;
use crate::pool::BufferPool;
use crate::reader::AggReader;
use crate::slice::Slice;

/// A mutable buffer aggregate over immutable IO-Lite buffers.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
///
/// let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 4096);
/// let a = Aggregate::from_bytes(&pool, b"GET /index.html");
/// let (verb, rest) = a.split_at(3);
/// assert_eq!(verb.to_vec(), b"GET");
/// assert_eq!(rest.to_vec(), b" /index.html");
/// ```
#[derive(Clone, Default)]
pub struct Aggregate {
    slices: Vec<Slice>,
    len: u64,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn empty() -> Self {
        Aggregate::default()
    }

    /// Creates an aggregate viewing a single slice.
    pub fn from_slice(s: Slice) -> Self {
        let len = s.len() as u64;
        if len == 0 {
            return Aggregate::empty();
        }
        Aggregate {
            slices: vec![s],
            len,
        }
    }

    /// Allocates buffers from `pool` and copies `data` into them.
    ///
    /// Data larger than the pool's chunk size spans multiple buffers;
    /// the resulting aggregate still reads back as one contiguous value.
    /// This is the ingress point where outside bytes *enter* the IO-Lite
    /// world (and the one place a copy is inherent).
    pub fn from_bytes(pool: &BufferPool, data: &[u8]) -> Self {
        let mut agg = Aggregate::empty();
        let max = pool.chunk_size();
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(max);
            let mut b = pool
                .alloc(take)
                .expect("chunk-size-bounded allocation cannot fail");
            b.put(&rest[..take]);
            agg.append_slice(b.freeze());
            rest = &rest[take..];
        }
        agg
    }

    /// Like [`Aggregate::from_bytes`] but with page-aligned, page-sized
    /// buffers, as the file system produces for disk data (§3.5).
    pub fn from_bytes_aligned(pool: &BufferPool, data: &[u8], align: usize) -> Self {
        let mut agg = Aggregate::empty();
        let max = pool.chunk_size();
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(max);
            let mut b = pool
                .alloc_aligned(take, align)
                .expect("chunk-size-bounded allocation cannot fail");
            b.put(&rest[..take]);
            agg.append_slice(b.freeze());
            rest = &rest[take..];
        }
        agg
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the aggregate holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slices (the fragmentation degree; drives indexing cost
    /// in §3.8's analysis).
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// The slices, in order.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Appends one slice.
    pub fn append_slice(&mut self, s: Slice) {
        if s.is_empty() {
            return;
        }
        self.len += s.len() as u64;
        self.slices.push(s);
    }

    /// Prepends one slice.
    pub fn prepend_slice(&mut self, s: Slice) {
        if s.is_empty() {
            return;
        }
        self.len += s.len() as u64;
        self.slices.insert(0, s);
    }

    /// Appends all slices of `other` (by reference; no payload copy).
    pub fn append(&mut self, other: &Aggregate) {
        self.slices.extend(other.slices.iter().cloned());
        self.len += other.len;
    }

    /// Prepends all slices of `other`.
    pub fn prepend(&mut self, other: &Aggregate) {
        let mut slices = other.slices.clone();
        slices.append(&mut self.slices);
        self.slices = slices;
        self.len += other.len;
    }

    /// Returns `self ++ other` without modifying either.
    pub fn concat(&self, other: &Aggregate) -> Aggregate {
        let mut out = self.clone();
        out.append(other);
        out
    }

    /// Splits into `(first mid bytes, rest)` without copying.
    ///
    /// `mid` is clamped to the aggregate's length.
    pub fn split_at(&self, mid: u64) -> (Aggregate, Aggregate) {
        let mid = mid.min(self.len);
        let mut head = Aggregate::empty();
        let mut tail = Aggregate::empty();
        let mut remaining = mid;
        for s in &self.slices {
            let sl = s.len() as u64;
            if remaining >= sl {
                head.append_slice(s.clone());
                remaining -= sl;
            } else if remaining > 0 {
                let cut = remaining as usize;
                head.append_slice(s.sub(0, cut).expect("cut < len"));
                tail.append_slice(s.sub(cut, s.len() - cut).expect("in range"));
                remaining = 0;
            } else {
                tail.append_slice(s.clone());
            }
        }
        (head, tail)
    }

    /// Keeps only the first `len` bytes.
    pub fn truncate(&mut self, len: u64) {
        if len >= self.len {
            return;
        }
        *self = self.split_at(len).0;
    }

    /// Drops the first `n` bytes.
    pub fn advance(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        *self = self.split_at(n).1;
    }

    /// A zero-copy view of `len` bytes starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::OutOfRange`] if the range exceeds the
    /// aggregate.
    pub fn range(&self, start: u64, len: u64) -> Result<Aggregate, BufError> {
        if start + len > self.len {
            return Err(BufError::OutOfRange {
                requested: start + len,
                available: self.len,
            });
        }
        let (_, tail) = self.split_at(start);
        let (mid, _) = tail.split_at(len);
        Ok(mid)
    }

    /// Copies the aggregate's value into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len as usize);
        for s in &self.slices {
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Copies up to `dst.len()` bytes starting at `offset` into `dst`,
    /// returning how many were copied.
    pub fn copy_to(&self, offset: u64, dst: &mut [u8]) -> usize {
        let mut skipped = 0u64;
        let mut written = 0usize;
        for s in &self.slices {
            let bytes = s.as_bytes();
            let sl = bytes.len() as u64;
            if skipped + sl <= offset {
                skipped += sl;
                continue;
            }
            let start = (offset.saturating_sub(skipped)) as usize;
            let avail = &bytes[start..];
            let take = avail.len().min(dst.len() - written);
            dst[written..written + take].copy_from_slice(&avail[..take]);
            written += take;
            skipped += sl;
            if written == dst.len() {
                break;
            }
        }
        written
    }

    /// The byte at `idx`, or `None` past the end.
    ///
    /// This is the §3.8 "indexing cost" operation: it walks the slice
    /// list, so heavily fragmented aggregates pay more.
    pub fn byte_at(&self, idx: u64) -> Option<u8> {
        if idx >= self.len {
            return None;
        }
        let mut skipped = 0u64;
        for s in &self.slices {
            let sl = s.len() as u64;
            if idx < skipped + sl {
                return Some(s.as_bytes()[(idx - skipped) as usize]);
            }
            skipped += sl;
        }
        None
    }

    /// Value equality (byte-wise), independent of fragmentation.
    pub fn content_eq(&self, other: &Aggregate) -> bool {
        if self.len != other.len {
            return false;
        }
        // Compare without materializing either side.
        let mut a = self.iter_bytes();
        let mut b = other.iter_bytes();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x == y => continue,
                _ => return false,
            }
        }
    }

    /// Iterates over the aggregate's bytes.
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.slices
            .iter()
            .flat_map(|s| s.as_bytes().iter().copied())
    }

    /// A `std::io::Read` adapter over the aggregate.
    pub fn reader(&self) -> AggReader<'_> {
        AggReader::new(self)
    }

    /// The §3.8 mutation model: returns a new aggregate equal to `self`
    /// with `range` replaced by `new_data`, copying **only** `new_data`
    /// into fresh buffers and chaining the untouched slices.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::OutOfRange`] if `start + len` exceeds the
    /// aggregate.
    pub fn replace(
        &self,
        pool: &BufferPool,
        start: u64,
        len: u64,
        new_data: &[u8],
    ) -> Result<Aggregate, BufError> {
        if start + len > self.len {
            return Err(BufError::OutOfRange {
                requested: start + len,
                available: self.len,
            });
        }
        let (head, rest) = self.split_at(start);
        let (_, tail) = rest.split_at(len);
        let mut out = head;
        out.append(&Aggregate::from_bytes(pool, new_data));
        out.append(&tail);
        Ok(out)
    }

    /// Defragments into a minimal number of contiguous buffers (the
    /// §3.8 "case 3" full copy, and the layout `mmap` needs).
    pub fn pack(&self, pool: &BufferPool) -> Aggregate {
        Aggregate::from_bytes(pool, &self.to_vec())
    }

    /// Sum of distinct buffer bytes referenced, counting each underlying
    /// buffer once (used by memory accounting: overlapping or repeated
    /// slices don't double-bill).
    pub fn distinct_buffer_bytes(&self) -> u64 {
        let mut seen: Vec<&Slice> = Vec::new();
        let mut total = 0u64;
        for s in &self.slices {
            if !seen.iter().any(|t| t.same_buffer(s)) {
                total += s.len() as u64;
                seen.push(s);
            }
        }
        total
    }
}

impl fmt::Debug for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aggregate(len={}, slices={})",
            self.len,
            self.slices.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, DomainId, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64)
    }

    #[test]
    fn from_bytes_round_trips() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"hello world");
        assert_eq!(a.len(), 11);
        assert_eq!(a.to_vec(), b"hello world");
    }

    #[test]
    fn large_data_spans_chunks() {
        let p = pool();
        let data: Vec<u8> = (0..200u8).collect();
        let a = Aggregate::from_bytes(&p, &data);
        assert!(a.num_slices() >= 4, "64-byte chunks force splitting");
        assert_eq!(a.to_vec(), data);
    }

    #[test]
    fn concat_and_prepend() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abc");
        let b = Aggregate::from_bytes(&p, b"def");
        assert_eq!(a.concat(&b).to_vec(), b"abcdef");
        let mut c = b.clone();
        c.prepend(&a);
        assert_eq!(c.to_vec(), b"abcdef");
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn split_at_various_points() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let (h, t) = a.split_at(0);
        assert!(h.is_empty());
        assert_eq!(t.to_vec(), b"abcdef");
        let (h, t) = a.split_at(6);
        assert_eq!(h.to_vec(), b"abcdef");
        assert!(t.is_empty());
        let (h, t) = a.split_at(2);
        assert_eq!(h.to_vec(), b"ab");
        assert_eq!(t.to_vec(), b"cdef");
        // Clamped past the end.
        let (h, t) = a.split_at(100);
        assert_eq!(h.len(), 6);
        assert!(t.is_empty());
    }

    #[test]
    fn truncate_and_advance() {
        let p = pool();
        let mut a = Aggregate::from_bytes(&p, b"abcdef");
        a.truncate(4);
        assert_eq!(a.to_vec(), b"abcd");
        a.advance(1);
        assert_eq!(a.to_vec(), b"bcd");
        a.truncate(100);
        assert_eq!(a.len(), 3);
        a.advance(0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn range_is_zero_copy_view() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        let r = a.range(2, 4).unwrap();
        assert_eq!(r.to_vec(), b"cdef");
        assert!(a.range(5, 10).is_err());
    }

    #[test]
    fn byte_at_indexing() {
        let p = pool();
        let data: Vec<u8> = (0..150u8).collect();
        let a = Aggregate::from_bytes(&p, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(a.byte_at(i as u64), Some(b));
        }
        assert_eq!(a.byte_at(150), None);
    }

    #[test]
    fn copy_to_partial_windows() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdefgh");
        let mut buf = [0u8; 3];
        assert_eq!(a.copy_to(2, &mut buf), 3);
        assert_eq!(&buf, b"cde");
        assert_eq!(a.copy_to(6, &mut buf), 2);
        assert_eq!(&buf[..2], b"gh");
        assert_eq!(a.copy_to(8, &mut buf), 0);
    }

    #[test]
    fn content_eq_ignores_fragmentation() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let b = Aggregate::from_bytes(&p, b"abc").concat(&Aggregate::from_bytes(&p, b"def"));
        assert!(a.content_eq(&b));
        let c = Aggregate::from_bytes(&p, b"abcdeX");
        assert!(!a.content_eq(&c));
        let d = Aggregate::from_bytes(&p, b"abcde");
        assert!(!a.content_eq(&d));
    }

    #[test]
    fn replace_chains_new_buffer() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"GET /old.html HTTP/1.0");
        let b = a.replace(&p, 5, 3, b"new").unwrap();
        assert_eq!(b.to_vec(), b"GET /new.html HTTP/1.0");
        // Original is untouched (immutability).
        assert_eq!(a.to_vec(), b"GET /old.html HTTP/1.0");
        // The unmodified head and tail share buffers with the original.
        assert!(b.slices()[0].same_buffer(&a.slices()[0]));
    }

    #[test]
    fn replace_with_different_length() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcdef");
        let grown = a.replace(&p, 3, 0, b"XYZ").unwrap();
        assert_eq!(grown.to_vec(), b"abcXYZdef");
        let shrunk = a.replace(&p, 1, 4, b"").unwrap();
        assert_eq!(shrunk.to_vec(), b"af");
        assert!(a.replace(&p, 5, 5, b"!").is_err());
    }

    #[test]
    fn pack_defragments() {
        let p = BufferPool::new(PoolId(2), Acl::kernel_only(), 4096);
        let mut a = Aggregate::empty();
        for i in 0..10 {
            a.append(&Aggregate::from_bytes(&p, &[i as u8]));
        }
        assert_eq!(a.num_slices(), 10);
        let packed = a.pack(&p);
        assert_eq!(packed.num_slices(), 1);
        assert!(packed.content_eq(&a));
    }

    #[test]
    fn distinct_buffer_bytes_dedups() {
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"abcd");
        let s = a.slices()[0].clone();
        let mut dup = Aggregate::from_slice(s.clone());
        dup.append_slice(s);
        assert_eq!(dup.len(), 8);
        assert_eq!(dup.distinct_buffer_bytes(), 4);
    }

    #[test]
    fn empty_slices_are_dropped() {
        let p = pool();
        let mut a = Aggregate::empty();
        let s = Aggregate::from_bytes(&p, b"ab").slices()[0].clone();
        a.append_slice(s.sub(0, 0).unwrap());
        assert!(a.is_empty());
        assert_eq!(a.num_slices(), 0);
    }

    #[test]
    fn reader_reads_all() {
        use std::io::Read;
        let p = pool();
        let a = Aggregate::from_bytes(&p, b"stream me");
        let mut out = String::new();
        a.reader().read_to_string(&mut out).unwrap();
        assert_eq!(out, "stream me");
    }
}

//! Immutable buffers and slices (§3.1, Figure 1).
//!
//! A [`Slice`] is the ⟨address, length⟩ tuple of Figure 1: a view into a
//! contiguous range of one immutable IO-Lite buffer. Slices are cheap to
//! clone (reference-counted) and may overlap arbitrarily. The underlying
//! bytes can never change; the only mutation path is allocating new
//! buffers and chaining aggregates (§3.8) — or the §3.1 footnote's
//! in-place optimization when a buffer is provably unshared, exposed here
//! as [`Slice::try_mutate_in_place`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::acl::Acl;
use crate::ids::{BufferId, ChunkId, Generation, PoolId};
use crate::pool::BufMeta;

/// Shared accounting state for one 64KB chunk of the IO-Lite window.
///
/// Buffer storage itself lives per-allocation (`BufferInner`); the chunk
/// tracks identity, generation and pool membership so recycling and the
/// checksum cache behave exactly as in the paper.
pub(crate) struct ChunkState {
    id: ChunkId,
    pool: PoolId,
    size: usize,
    // Relaxed suffices: chunks are shard-confined, so the counter is
    // never raced; the atomic exists only to make the type `Send`.
    generation: AtomicU64,
}

impl ChunkState {
    pub(crate) fn new(id: ChunkId, pool: PoolId, size: usize) -> Self {
        ChunkState {
            id,
            pool,
            size,
            generation: AtomicU64::new(0),
        }
    }

    /// An independent copy at a given generation, for pool forking.
    pub(crate) fn with_generation(id: ChunkId, pool: PoolId, size: usize, generation: u64) -> Self {
        ChunkState {
            id,
            pool,
            size,
            generation: AtomicU64::new(generation),
        }
    }

    pub(crate) fn id(&self) -> ChunkId {
        self.id
    }

    pub(crate) fn generation(&self) -> Generation {
        Generation(self.generation.load(Ordering::Relaxed))
    }

    pub(crate) fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    #[allow(dead_code)]
    pub(crate) fn pool(&self) -> PoolId {
        self.pool
    }

    #[allow(dead_code)]
    pub(crate) fn size(&self) -> usize {
        self.size
    }
}

/// One immutable IO-Lite buffer: the sealed result of a
/// [`crate::BufMut`].
pub(crate) struct BufferInner {
    bytes: Box<[u8]>,
    meta: BufMeta,
    /// Keeps the chunk's liveness count up while any slice references the
    /// buffer, which is exactly the recycling condition of §3.2.
    _chunk: Arc<ChunkState>,
}

impl BufferInner {
    pub(crate) fn new(bytes: Box<[u8]>, meta: BufMeta, chunk: Arc<ChunkState>) -> Self {
        BufferInner {
            bytes,
            meta,
            _chunk: chunk,
        }
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub(crate) fn meta(&self) -> &BufMeta {
        &self.meta
    }

    pub(crate) fn chunk(&self) -> &Arc<ChunkState> {
        &self._chunk
    }
}

/// An immutable view of a contiguous byte range within one IO-Lite
/// buffer.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, BufferPool, DomainId, PoolId};
///
/// let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 4096);
/// let mut b = pool.alloc(5).unwrap();
/// b.put(b"hello");
/// let s = b.freeze();
/// assert_eq!(s.as_bytes(), b"hello");
/// let sub = s.sub(1, 3).unwrap();
/// assert_eq!(sub.as_bytes(), b"ell");
/// ```
#[derive(Clone)]
pub struct Slice {
    inner: Arc<BufferInner>,
    off: usize,
    len: usize,
}

impl Slice {
    pub(crate) fn whole(inner: Arc<BufferInner>) -> Self {
        let len = inner.bytes.len();
        Slice { inner, off: 0, len }
    }

    /// Decomposes the slice for pool forking.
    pub(crate) fn parts(&self) -> (&Arc<BufferInner>, usize, usize) {
        (&self.inner, self.off, self.len)
    }

    /// Rebuilds a slice from forked parts.
    pub(crate) fn from_parts(inner: Arc<BufferInner>, off: usize, len: usize) -> Self {
        Slice { inner, off, len }
    }

    /// The bytes this slice views.
    pub fn as_bytes(&self) -> &[u8] {
        &self.inner.bytes[self.off..self.off + self.len]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The identity (address analog) of the underlying buffer.
    pub fn id(&self) -> BufferId {
        self.inner.meta.id
    }

    /// The generation of the underlying buffer (§3.9).
    pub fn generation(&self) -> Generation {
        self.inner.meta.generation
    }

    /// The pool the buffer was allocated from.
    pub fn pool(&self) -> PoolId {
        self.inner.meta.pool
    }

    /// The ACL snapshot taken at allocation time.
    pub fn acl(&self) -> &Acl {
        &self.inner.meta.acl
    }

    /// Offset of this view within its buffer.
    pub fn offset_in_buffer(&self) -> usize {
        self.off
    }

    /// A sub-view of this slice.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BufError::OutOfRange`] if `off + len` exceeds this
    /// slice's length.
    pub fn sub(&self, off: usize, len: usize) -> Result<Slice, crate::BufError> {
        if off + len > self.len {
            return Err(crate::BufError::OutOfRange {
                requested: (off + len) as u64,
                available: self.len as u64,
            });
        }
        Ok(Slice {
            inner: Arc::clone(&self.inner),
            off: self.off + off,
            len,
        })
    }

    /// Whether two slices view the same buffer (possibly different
    /// ranges).
    pub fn same_buffer(&self, other: &Slice) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Total byte count of the underlying buffer (the whole allocation,
    /// not just this view) — what memory accounting bills per buffer.
    pub fn buffer_len(&self) -> usize {
        self.inner.bytes.len()
    }

    /// A key identifying the underlying buffer *instance* (stable across
    /// clones and sub-views, distinct across generations).
    pub(crate) fn buffer_key(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Number of live references to the underlying buffer.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Attempts the §3.1-footnote optimization: modify the buffer in
    /// place because nothing else can observe it.
    ///
    /// Succeeds only when this slice is the *sole* reference to its
    /// buffer and views it entirely; then `mutate` receives the bytes
    /// mutably. Generation is *not* bumped: logically this models
    /// write-before-sharing, so no stale checksum can exist.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BufError::Shared`] when other references exist or
    /// the slice is a partial view.
    pub fn try_mutate_in_place(
        &mut self,
        mutate: impl FnOnce(&mut [u8]),
    ) -> Result<(), crate::BufError> {
        if Arc::strong_count(&self.inner) != 1 || self.off != 0 || self.len != self.inner.bytes.len()
        {
            return Err(crate::BufError::Shared);
        }
        // A sole, whole-buffer reference: safe to view mutably.
        let inner = Arc::get_mut(&mut self.inner).ok_or(crate::BufError::Shared)?;
        mutate(&mut inner.bytes);
        Ok(())
    }
}

impl fmt::Debug for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Slice({} {} +{} len {})",
            self.id(),
            self.generation(),
            self.off,
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use crate::{Acl, BufError, DomainId, PoolId};

    fn slice_of(data: &[u8]) -> Slice {
        let pool = BufferPool::new(PoolId(9), Acl::with_domain(DomainId(2)), 4096);
        let mut b = pool.alloc(data.len()).unwrap();
        b.put(data);
        b.freeze()
    }

    #[test]
    fn sub_views_share_storage() {
        let s = slice_of(b"abcdef");
        let t = s.sub(2, 3).unwrap();
        assert_eq!(t.as_bytes(), b"cde");
        assert!(s.same_buffer(&t));
        assert_eq!(t.offset_in_buffer(), 2);
        // Sub-of-sub composes offsets.
        let u = t.sub(1, 1).unwrap();
        assert_eq!(u.as_bytes(), b"d");
    }

    #[test]
    fn sub_out_of_range_errors() {
        let s = slice_of(b"abc");
        assert!(matches!(s.sub(2, 5), Err(BufError::OutOfRange { .. })));
    }

    #[test]
    fn overlapping_slices_allowed() {
        let s = slice_of(b"abcdef");
        let a = s.sub(0, 4).unwrap();
        let b = s.sub(2, 4).unwrap();
        assert_eq!(a.as_bytes(), b"abcd");
        assert_eq!(b.as_bytes(), b"cdef");
    }

    #[test]
    fn acl_snapshot_travels_with_slice() {
        let s = slice_of(b"x");
        assert!(s.acl().allows(DomainId(2)));
        assert!(!s.acl().allows(DomainId(3)));
    }

    #[test]
    fn in_place_mutation_requires_exclusivity() {
        let mut s = slice_of(b"aaaa");
        // Clone makes it shared: mutation refused.
        let c = s.clone();
        assert_eq!(
            s.try_mutate_in_place(|_| unreachable!()),
            Err(BufError::Shared)
        );
        drop(c);
        s.try_mutate_in_place(|b| b[0] = b'z').unwrap();
        assert_eq!(s.as_bytes(), b"zaaa");
    }

    #[test]
    fn partial_view_cannot_mutate_in_place() {
        let s = slice_of(b"abcd");
        let mut part = s.sub(0, 2).unwrap();
        drop(s);
        assert_eq!(
            part.try_mutate_in_place(|_| unreachable!()),
            Err(BufError::Shared)
        );
    }

    #[test]
    fn ref_count_reflects_clones() {
        let s = slice_of(b"x");
        assert_eq!(s.ref_count(), 1);
        let c = s.clone();
        assert_eq!(s.ref_count(), 2);
        drop(c);
        assert_eq!(s.ref_count(), 1);
    }
}

//! `std::io::Read` adapter for aggregates.
//!
//! Lets converted applications (the §5.8 UNIX utilities) consume
//! aggregate data through standard-library interfaces without
//! materializing the value. Backed by [`AggCursor`], so `remaining`
//! is O(1) and reads advance run-by-run.

use std::io::{self, Read};

use crate::aggregate::Aggregate;
use crate::cursor::AggCursor;

/// A cursor that reads an [`Aggregate`]'s bytes sequentially.
pub struct AggReader<'a> {
    cur: AggCursor<'a>,
}

impl<'a> AggReader<'a> {
    pub(crate) fn new(agg: &'a Aggregate) -> Self {
        AggReader { cur: agg.cursor() }
    }

    /// Bytes remaining to read.
    pub fn remaining(&self) -> u64 {
        self.cur.remaining()
    }
}

impl Read for AggReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Ok(self.cur.copy_to(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, BufferPool, PoolId};

    fn fragmented() -> Aggregate {
        let p = BufferPool::new(PoolId(1), Acl::kernel_only(), 4);
        Aggregate::from_bytes(&p, b"abcdefghij")
    }

    #[test]
    fn reads_across_slice_boundaries() {
        let a = fragmented();
        assert!(a.num_slices() > 1);
        let mut r = a.reader();
        let mut buf = [0u8; 3];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"def");
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn read_to_end_gets_everything() {
        let a = fragmented();
        let mut out = Vec::new();
        a.reader().read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdefghij");
    }

    #[test]
    fn read_past_end_returns_zero() {
        let a = fragmented();
        let mut r = a.reader();
        let mut sink = vec![0u8; 64];
        assert_eq!(r.read(&mut sink).unwrap(), 10);
        assert_eq!(r.read(&mut sink).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
    }
}

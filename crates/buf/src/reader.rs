//! `std::io::Read` adapter for aggregates.
//!
//! Lets converted applications (the §5.8 UNIX utilities) consume
//! aggregate data through standard-library interfaces without
//! materializing the value.

use std::io::{self, Read};

use crate::aggregate::Aggregate;

/// A cursor that reads an [`Aggregate`]'s bytes sequentially.
pub struct AggReader<'a> {
    agg: &'a Aggregate,
    slice_idx: usize,
    offset: usize,
}

impl<'a> AggReader<'a> {
    pub(crate) fn new(agg: &'a Aggregate) -> Self {
        AggReader {
            agg,
            slice_idx: 0,
            offset: 0,
        }
    }

    /// Bytes remaining to read.
    pub fn remaining(&self) -> u64 {
        let consumed: u64 = self
            .agg
            .slices()
            .iter()
            .take(self.slice_idx)
            .map(|s| s.len() as u64)
            .sum::<u64>()
            + self.offset as u64;
        self.agg.len() - consumed
    }
}

impl Read for AggReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut written = 0;
        while written < buf.len() {
            let Some(slice) = self.agg.slices().get(self.slice_idx) else {
                break;
            };
            let bytes = slice.as_bytes();
            let avail = &bytes[self.offset..];
            if avail.is_empty() {
                self.slice_idx += 1;
                self.offset = 0;
                continue;
            }
            let take = avail.len().min(buf.len() - written);
            buf[written..written + take].copy_from_slice(&avail[..take]);
            written += take;
            self.offset += take;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, BufferPool, PoolId};

    fn fragmented() -> Aggregate {
        let p = BufferPool::new(PoolId(1), Acl::kernel_only(), 4);
        Aggregate::from_bytes(&p, b"abcdefghij")
    }

    #[test]
    fn reads_across_slice_boundaries() {
        let a = fragmented();
        assert!(a.num_slices() > 1);
        let mut r = a.reader();
        let mut buf = [0u8; 3];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"def");
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn read_to_end_gets_everything() {
        let a = fragmented();
        let mut out = Vec::new();
        a.reader().read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdefghij");
    }

    #[test]
    fn read_past_end_returns_zero() {
        let a = fragmented();
        let mut r = a.reader();
        let mut sink = vec![0u8; 64];
        assert_eq!(r.read(&mut sink).unwrap(), 10);
        assert_eq!(r.read(&mut sink).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
    }
}

//! Stable state digests for deterministic-replay checks.
//!
//! The pure kernel core exposes a `state_hash()` so that a replayed
//! command journal can be checked bit-for-bit against the live run. The
//! hash must be stable across processes and runs, so it cannot use
//! `std::collections::hash_map::DefaultHasher` (randomly seeded) or any
//! pointer identity. [`Fnv64`] is a plain FNV-1a fold; every crate that
//! owns a piece of kernel state implements a `digest(&mut Fnv64)` helper
//! over it, always iterating unordered containers in sorted key order.

use crate::aggregate::Aggregate;

/// A 64-bit FNV-1a hasher with a fixed, seed-free initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Creates a hasher at the canonical FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u32` into the digest.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` into the digest (always as 64 bits).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a boolean into the digest.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Folds a string (length-prefixed) into the digest.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest value so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Finalizer of the splitmix64 generator: a full-avalanche 64-bit mixer.
///
/// Every output bit depends on every input bit, so taking `mix % n` (or
/// any bit subset) of the result distributes sequential or structured
/// ids uniformly. Used for shard routing — the PR 5 lesson is that
/// truncating an id (`id & 0xFF`) aliases structured id spaces, so all
/// routing decisions must pass the *full* 64-bit id through this mixer
/// first.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds an aggregate's identity and contents into a digest: length, then
/// per slice the ⟨pool, buffer, generation, view offset, view length⟩
/// tuple followed by the viewed bytes.
pub fn digest_aggregate(agg: &Aggregate, h: &mut Fnv64) {
    h.write_u64(agg.len());
    h.write_u64(agg.num_slices() as u64);
    for s in agg.slices() {
        h.write_u32(s.pool().0);
        h.write_u64(s.id().chunk.0);
        h.write_u32(s.id().offset);
        h.write_u64(s.generation().0);
        h.write_u64(s.offset_in_buffer() as u64);
        h.write_u64(s.len() as u64);
        h.write_bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, BufferPool, DomainId, PoolId};

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
        // Known-good FNV-1a of the empty input.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn aggregate_digest_depends_on_identity_and_bytes() {
        let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 4096);
        let a = Aggregate::from_bytes(&pool, b"hello");
        let b = Aggregate::from_bytes(&pool, b"hello");
        let mut ha = Fnv64::new();
        digest_aggregate(&a, &mut ha);
        let mut hb = Fnv64::new();
        digest_aggregate(&b, &mut hb);
        // Same bytes, different buffers: identity differs.
        assert_ne!(ha.finish(), hb.finish());
        // Same aggregate digests identically.
        let mut ha2 = Fnv64::new();
        digest_aggregate(&a, &mut ha2);
        assert_eq!(ha.finish(), ha2.finish());
    }
}

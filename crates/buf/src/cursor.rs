//! Borrowing cursors over aggregates.
//!
//! An [`AggCursor`] walks an [`Aggregate`]'s byte runs without
//! allocating or copying: consumers see `&[u8]` chunks and advance a
//! position. This is the vectored fast path the §3.8 indexing-cost
//! analysis calls for — hot consumers (TCP reassembly, HTTP parsing,
//! pipes, the converted UNIX utilities) iterate runs instead of calling
//! `byte_at` per byte or materializing with `to_vec`.

use crate::aggregate::Aggregate;

/// A zero-alloc forward cursor over an [`Aggregate`]'s bytes.
///
/// Creation at an interior offset is O(log n) via the aggregate's
/// cumulative-offset index; every subsequent step is O(1) per run
/// touched.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4);
/// let agg = Aggregate::from_bytes(&pool, b"status: ok");
/// let mut cur = agg.cursor();
/// assert!(cur.starts_with(b"status:"));
/// assert_eq!(cur.find_byte(b' '), Some(7));
/// cur.advance(8);
/// let mut rest = Vec::new();
/// while let Some(chunk) = cur.next_chunk() {
///     rest.extend_from_slice(chunk);
/// }
/// assert_eq!(rest, b"ok");
/// ```
#[derive(Clone)]
pub struct AggCursor<'a> {
    agg: &'a Aggregate,
    /// Index of the current slice in the aggregate's deque.
    idx: usize,
    /// Offset within the current slice; invariant: strictly less than
    /// the slice's length whenever `idx` is in bounds.
    off: usize,
    /// Logical position from the aggregate's start.
    pos: u64,
}

impl<'a> AggCursor<'a> {
    pub(crate) fn new(agg: &'a Aggregate, offset: u64) -> Self {
        if offset >= agg.len() {
            return AggCursor {
                agg,
                idx: agg.num_slices(),
                off: 0,
                pos: agg.len(),
            };
        }
        let (idx, off) = agg.locate(offset);
        AggCursor {
            agg,
            idx,
            off,
            pos: offset,
        }
    }

    /// Logical position from the aggregate's start.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Bytes left between the cursor and the end.
    pub fn remaining(&self) -> u64 {
        self.agg.len() - self.pos
    }

    /// The unread part of the current byte run, without consuming it.
    /// `None` at the end.
    pub fn peek_chunk(&self) -> Option<&'a [u8]> {
        let s = self.agg.slice_deque().get(self.idx)?;
        Some(&s.as_bytes()[self.off..])
    }

    /// Returns the unread part of the current run and steps past it.
    pub fn next_chunk(&mut self) -> Option<&'a [u8]> {
        let chunk = self.peek_chunk()?;
        self.idx += 1;
        self.off = 0;
        self.pos += chunk.len() as u64;
        Some(chunk)
    }

    /// Moves forward `n` bytes (clamped to the end).
    pub fn advance(&mut self, n: u64) {
        let n = n.min(self.remaining());
        self.pos += n;
        let mut left = n as usize;
        while left > 0 {
            let slen = self.agg.slice_deque()[self.idx].len() - self.off;
            if left < slen {
                self.off += left;
                return;
            }
            left -= slen;
            self.idx += 1;
            self.off = 0;
        }
    }

    /// Copies up to `dst.len()` bytes into `dst`, consuming them;
    /// returns the count copied.
    pub fn copy_to(&mut self, dst: &mut [u8]) -> usize {
        let mut written = 0;
        while written < dst.len() {
            let Some(chunk) = self.peek_chunk() else { break };
            let n = chunk.len().min(dst.len() - written);
            dst[written..written + n].copy_from_slice(&chunk[..n]);
            written += n;
            self.advance(n as u64);
        }
        written
    }

    /// The logical offset (from the aggregate's start) of the first
    /// `byte` at or after the cursor. Does not consume.
    pub fn find_byte(&self, byte: u8) -> Option<u64> {
        let mut probe = self.clone();
        while let Some(chunk) = probe.peek_chunk() {
            if let Some(i) = chunk.iter().position(|&b| b == byte) {
                return Some(probe.pos + i as u64);
            }
            probe.next_chunk();
        }
        None
    }

    /// Whether the bytes at the cursor begin with `needle`. Does not
    /// consume.
    pub fn starts_with(&self, needle: &[u8]) -> bool {
        if (needle.len() as u64) > self.remaining() {
            return false;
        }
        let mut probe = self.clone();
        let mut rest = needle;
        while !rest.is_empty() {
            let chunk = probe.peek_chunk().expect("length checked");
            let n = chunk.len().min(rest.len());
            if chunk[..n] != rest[..n] {
                return false;
            }
            rest = &rest[n..];
            probe.advance(n as u64);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acl, BufferPool, PoolId};

    fn frag(data: &[u8], chunk: usize) -> Aggregate {
        let p = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk);
        Aggregate::from_bytes(&p, data)
    }

    #[test]
    fn chunks_cover_the_value_exactly() {
        let a = frag(b"abcdefghij", 3);
        let mut cur = a.cursor();
        let mut out = Vec::new();
        while let Some(c) = cur.next_chunk() {
            out.extend_from_slice(c);
        }
        assert_eq!(out, b"abcdefghij");
        assert_eq!(cur.remaining(), 0);
        assert!(cur.peek_chunk().is_none());
    }

    #[test]
    fn cursor_at_interior_offset() {
        let a = frag(b"abcdefghij", 3);
        let mut cur = a.cursor_at(4);
        assert_eq!(cur.position(), 4);
        assert_eq!(cur.remaining(), 6);
        assert_eq!(cur.peek_chunk().unwrap(), b"ef");
        let mut dst = [0u8; 4];
        assert_eq!(cur.copy_to(&mut dst), 4);
        assert_eq!(&dst, b"efgh");
        assert_eq!(cur.position(), 8);
    }

    #[test]
    fn cursor_past_end_is_empty() {
        let a = frag(b"abc", 2);
        let mut cur = a.cursor_at(100);
        assert_eq!(cur.remaining(), 0);
        assert!(cur.next_chunk().is_none());
        let mut dst = [0u8; 2];
        assert_eq!(cur.copy_to(&mut dst), 0);
    }

    #[test]
    fn advance_clamps_and_lands_mid_slice() {
        let a = frag(b"abcdefghij", 4);
        let mut cur = a.cursor();
        cur.advance(5);
        assert_eq!(cur.peek_chunk().unwrap(), b"fgh");
        cur.advance(1000);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn find_byte_does_not_consume() {
        let a = frag(b"key=value;done", 2);
        let cur = a.cursor();
        assert_eq!(cur.find_byte(b'='), Some(3));
        assert_eq!(cur.find_byte(b';'), Some(9));
        assert_eq!(cur.position(), 0, "probe left the cursor in place");
        let tail = a.cursor_at(10);
        assert_eq!(tail.find_byte(b';'), None);
    }

    #[test]
    fn starts_with_across_boundaries() {
        let a = frag(b"Content-Length: 42", 5);
        assert!(a.cursor().starts_with(b"Content-Length:"));
        assert!(a.cursor_at(16).starts_with(b"42"));
        assert!(!a.cursor_at(16).starts_with(b"424"));
    }

    #[test]
    fn empty_aggregate_cursor() {
        let a = Aggregate::empty();
        let mut cur = a.cursor();
        assert_eq!(cur.remaining(), 0);
        assert!(cur.next_chunk().is_none());
        assert_eq!(cur.find_byte(b'x'), None);
        assert!(cur.starts_with(b""));
        assert!(!cur.starts_with(b"x"));
    }
}

//! Error type for buffer operations.

use std::fmt;

/// Errors produced by buffer and aggregate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufError {
    /// A range extends past the end of an aggregate or slice.
    OutOfRange {
        /// Requested end offset.
        requested: u64,
        /// Available length.
        available: u64,
    },
    /// An in-place mutation was attempted on a buffer that other
    /// references can observe (§3.1: in-place modification is only legal
    /// when the data are not currently shared).
    Shared,
    /// An allocation exceeded the pool's chunk size.
    TooLarge {
        /// Requested allocation size.
        requested: usize,
        /// Maximum supported single allocation.
        max: usize,
    },
}

impl fmt::Display for BufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufError::OutOfRange {
                requested,
                available,
            } => write!(
                f,
                "range end {requested} exceeds available length {available}"
            ),
            BufError::Shared => write!(f, "buffer is shared; in-place modification refused"),
            BufError::TooLarge { requested, max } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds chunk size {max}"
                )
            }
        }
    }
}

impl std::error::Error for BufError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = BufError::OutOfRange {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(BufError::Shared.to_string().contains("shared"));
        let t = BufError::TooLarge {
            requested: 100,
            max: 64,
        };
        assert!(t.to_string().contains("100"));
    }
}

//! Identifier newtypes shared across the IO-Lite stack.

use std::fmt;

/// A protection domain: a process, or the kernel itself.
///
/// IO-Lite ensures access control "at the granularity of processes"
/// (§3.3); every buffer pool carries an access-control list of domains.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The kernel's own domain; a trusted producer that keeps permanent
    /// write permission on its pools (§3.2).
    pub const KERNEL: DomainId = DomainId(0);
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == DomainId::KERNEL {
            write!(f, "kernel")
        } else {
            write!(f, "pid{}", self.0)
        }
    }
}

/// An allocation pool of IO-Lite buffers sharing one ACL (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

/// A 64KB chunk of the IO-Lite window (§4.5) — the granularity of VM
/// access-control operations. Chunk identities are stable across
/// recycling; the [`Generation`] distinguishes successive uses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChunkId(pub u64);

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}

/// The "address" of an IO-Lite buffer: which chunk it occupies and at
/// what byte offset.
///
/// Because chunks recycle, the same `BufferId` recurs over time; paired
/// with a [`Generation`] it uniquely identifies buffer *contents*
/// system-wide, which is what the checksum cache keys on (§3.9).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BufferId {
    /// The chunk this buffer lives in.
    pub chunk: ChunkId,
    /// Byte offset of the buffer within its chunk.
    pub offset: u32,
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.chunk, self.offset)
    }
}

/// A buffer generation number, "incremented every time a buffer is
/// reallocated" (§3.9).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Generation(pub u64);

impl Generation {
    /// The next generation.
    pub fn next(self) -> Generation {
        Generation(self.0 + 1)
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_domain_displays() {
        assert_eq!(DomainId::KERNEL.to_string(), "kernel");
        assert_eq!(DomainId(3).to_string(), "pid3");
    }

    #[test]
    fn generation_advances() {
        let g = Generation::default();
        assert_eq!(g.next(), Generation(1));
        assert_eq!(g.next().next(), Generation(2));
    }

    #[test]
    fn buffer_id_identity() {
        let a = BufferId {
            chunk: ChunkId(1),
            offset: 4096,
        };
        let b = BufferId {
            chunk: ChunkId(1),
            offset: 4096,
        };
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "chunk1+0x1000");
    }
}

//! Buffer pools: chunked, ACL-tagged, recycling allocators (§3.3, §4.5).
//!
//! A pool hands out writable allocations ([`BufMut`]) carved from 64KB
//! chunks. Freezing a `BufMut` yields an immutable [`Slice`]. When every
//! allocation in a chunk has been dropped, the chunk is *recycled*: the
//! next use bumps its generation number and — crucially for the IPC cost
//! model of §3.2 — requires **no** new VM mappings in the domains that
//! already saw it, because read-only mappings persist after deallocation.
//!
//! The pool reports an [`AllocEvent`] per allocation so the kernel layer
//! can charge page-mapping cost only for *fresh* chunks.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::acl::Acl;
use crate::error::BufError;
use crate::ids::{BufferId, ChunkId, DomainId, Generation, PoolId};
use crate::slice::{BufferInner, ChunkState, Slice};

/// How the chunk backing an allocation was obtained.
///
/// The kernel layer converts this into simulated VM cost: only
/// [`AllocEvent::FreshChunk`] requires establishing mappings; recycled
/// and already-open chunks ride on lazily persisting mappings (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocEvent {
    /// A brand-new chunk was created; receiving domains will need VM maps.
    FreshChunk,
    /// A fully-drained chunk was reused; its generation was bumped and
    /// existing mappings remain valid.
    RecycledChunk,
    /// The allocation was packed into the pool's currently open chunk.
    OpenChunk,
}

/// Counters describing a pool's allocation behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served.
    pub allocs: u64,
    /// Bytes handed out (payload, not chunk padding).
    pub bytes_allocated: u64,
    /// Brand-new chunks created.
    pub chunks_created: u64,
    /// Chunks reused after draining.
    pub chunks_recycled: u64,
    /// Chunks released back to the VM system by [`BufferPool::release_free_chunks`].
    pub chunks_released: u64,
    /// Reads whose placement was billed to this pool (`IOL_read` with an
    /// explicit allocation pool, §3.4). The data may physically live in
    /// the file cache; attribution records which pool the caller asked
    /// the placement to be accounted against.
    pub reads_attributed: u64,
    /// Bytes covered by attributed reads.
    pub bytes_attributed: u64,
}

struct PoolInner {
    id: PoolId,
    acl: Acl,
    chunk_size: usize,
    next_chunk: u64,
    /// The chunk currently being bump-allocated, and its fill offset.
    open: Option<(Arc<ChunkState>, usize)>,
    /// Chunks known to be fully drained and ready for reuse.
    free: Vec<Arc<ChunkState>>,
    /// Every chunk this pool has created and not released.
    registry: Vec<Arc<ChunkState>>,
    stats: PoolStats,
}

/// A pool of IO-Lite buffers sharing one access-control list.
///
/// Cloning the handle shares the pool. All data allocated from one pool
/// is readable by exactly the domains on its ACL (§3.3: "the choice of a
/// pool from which a new IO-Lite buffer is allocated determines the ACL
/// of the data stored in the buffer").
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// Creates a pool with the given identity, ACL, and chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(id: PoolId, acl: Acl, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                id,
                acl,
                chunk_size,
                next_chunk: 0,
                open: None,
                free: Vec::new(),
                registry: Vec::new(),
                stats: PoolStats::default(),
            })),
        }
    }

    /// The pool's identity.
    pub fn id(&self) -> PoolId {
        self.inner.lock().unwrap().id
    }

    /// The pool's access-control list.
    pub fn acl(&self) -> Acl {
        self.inner.lock().unwrap().acl.clone()
    }

    /// Grants an additional domain read access to future *and existing*
    /// buffers of this pool.
    ///
    /// Existing slices snapshot the ACL at allocation time, so this only
    /// affects future allocations; the paper's servers set ACLs up front
    /// (one pool per CGI instance, §3.10).
    pub fn grant(&self, d: DomainId) {
        self.inner.lock().unwrap().acl.grant(d);
    }

    /// The pool's chunk size.
    pub fn chunk_size(&self) -> usize {
        self.inner.lock().unwrap().chunk_size
    }

    /// Allocates `len` writable bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BufError::TooLarge`] if `len` exceeds the chunk size;
    /// larger data objects span multiple buffers via
    /// [`crate::Aggregate::from_bytes`].
    pub fn alloc(&self, len: usize) -> Result<BufMut, BufError> {
        self.alloc_inner(len, 1)
    }

    /// Allocates `len` bytes aligned to `align` within the chunk.
    ///
    /// The file system uses page alignment for disk-sourced data ("file
    /// data that originate from a local disk are generally page-aligned
    /// and page-sized", §3.5).
    ///
    /// # Errors
    ///
    /// Returns [`BufError::TooLarge`] if the aligned allocation cannot fit
    /// in a single chunk.
    pub fn alloc_aligned(&self, len: usize, align: usize) -> Result<BufMut, BufError> {
        self.alloc_inner(len, align.max(1))
    }

    fn alloc_inner(&self, len: usize, align: usize) -> Result<BufMut, BufError> {
        let mut inner = self.inner.lock().unwrap();
        let chunk_size = inner.chunk_size;
        if len > chunk_size {
            return Err(BufError::TooLarge {
                requested: len,
                max: chunk_size,
            });
        }
        // Try to pack into the open chunk.
        let mut placed: Option<(Arc<ChunkState>, usize, AllocEvent)> = None;
        if let Some((chunk, fill)) = inner.open.take() {
            let aligned = fill.div_ceil(align) * align;
            if aligned + len <= chunk_size {
                placed = Some((chunk, aligned, AllocEvent::OpenChunk));
            }
            // Else: the open chunk is abandoned to the registry; it will
            // recycle once its allocations drain.
        }
        let (chunk, offset, event) = match placed {
            Some(p) => p,
            None => {
                // Prefer a recycled chunk; scavenge the registry for
                // drained chunks if the free list is empty.
                if inner.free.is_empty() {
                    scavenge(&mut inner);
                }
                if let Some(chunk) = inner.free.pop() {
                    chunk.bump_generation();
                    inner.stats.chunks_recycled += 1;
                    (chunk, 0, AllocEvent::RecycledChunk)
                } else {
                    let id = ChunkId(inner.next_chunk);
                    inner.next_chunk += 1;
                    let chunk = Arc::new(ChunkState::new(id, inner.id, chunk_size));
                    inner.registry.push(Arc::clone(&chunk));
                    inner.stats.chunks_created += 1;
                    (chunk, 0, AllocEvent::FreshChunk)
                }
            }
        };
        inner.open = Some((Arc::clone(&chunk), offset + len));
        inner.stats.allocs += 1;
        inner.stats.bytes_allocated += len as u64;
        let meta = BufMeta {
            id: BufferId {
                chunk: chunk.id(),
                offset: offset as u32,
            },
            generation: chunk.generation(),
            pool: inner.id,
            acl: inner.acl.clone(),
        };
        Ok(BufMut {
            bytes: Vec::with_capacity(len),
            capacity: len,
            meta,
            chunk,
            event,
        })
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap().stats
    }

    /// Bills a pool-directed read of `bytes` to this pool's counters
    /// (§3.4: "a version of IOL_read allows applications to specify an
    /// allocation pool"). Cached file data stays in the cache's physical
    /// buffers, so attribution is an accounting act, not an allocation.
    pub fn attribute_read(&self, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.stats.reads_attributed += 1;
        inner.stats.bytes_attributed += bytes;
    }

    /// Bytes of chunk storage currently resident (live + free chunks).
    ///
    /// The VM accountant treats this as the pool's physical footprint:
    /// chunks are the unit of residency because they are the unit of
    /// mapping (§4.5).
    pub fn resident_bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        (inner.registry.len() * inner.chunk_size) as u64
    }

    /// Number of chunks currently drained and reusable.
    pub fn free_chunks(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        scavenge(&mut inner);
        inner.free.len()
    }

    /// Deep-forks the pool into an independent allocator for kernel-state
    /// snapshots (plain `Clone` shares the pool).
    ///
    /// Every chunk is twinned through `forker` (same identity, same
    /// generation, same open-chunk fill offset), so the fork allocates
    /// exactly like the original. The caller must then rebind all
    /// state-held aggregates with [`crate::PoolForker::fork_aggregate`]
    /// so the twins' reference counts reflect the forked state.
    pub fn fork(&self, forker: &mut crate::PoolForker) -> BufferPool {
        let inner = self.inner.lock().unwrap();
        let forked = PoolInner {
            id: inner.id,
            acl: inner.acl.clone(),
            chunk_size: inner.chunk_size,
            next_chunk: inner.next_chunk,
            open: inner
                .open
                .as_ref()
                .map(|(c, fill)| (forker.fork_chunk(c), *fill)),
            free: inner.free.iter().map(|c| forker.fork_chunk(c)).collect(),
            registry: inner
                .registry
                .iter()
                .map(|c| forker.fork_chunk(c))
                .collect(),
            stats: inner.stats,
        };
        BufferPool {
            inner: Arc::new(Mutex::new(forked)),
        }
    }

    /// Releases up to `max_bytes` of drained chunk storage back to the
    /// system (the pageout path of §3.7), returning the bytes released.
    pub fn release_free_chunks(&self, max_bytes: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        scavenge(&mut inner);
        let mut released = 0u64;
        let chunk_size = inner.chunk_size as u64;
        while released + chunk_size <= max_bytes {
            let Some(chunk) = inner.free.pop() else { break };
            inner.registry.retain(|c| !Arc::ptr_eq(c, &chunk));
            inner.stats.chunks_released += 1;
            released += chunk_size;
        }
        released
    }
}

/// Moves drained chunks from the registry to the free list.
///
/// A chunk is drained when the only outstanding `Arc`s are the registry's
/// own, i.e. no `BufferInner` (live slice) and no open-chunk handle
/// reference it.
fn scavenge(inner: &mut PoolInner) {
    // A drained open chunk (registry Arc + open Arc only) can be closed and
    // recycled like any other.
    if let Some((chunk, _)) = &inner.open {
        if Arc::strong_count(chunk) == 2 {
            inner.open = None;
        }
    }
    let open_chunk = inner.open.as_ref().map(|(c, _)| Arc::clone(c));
    let mut moved = Vec::new();
    for chunk in &inner.registry {
        let is_open = open_chunk.as_ref().is_some_and(|o| Arc::ptr_eq(o, chunk));
        let already_free = inner.free.iter().any(|f| Arc::ptr_eq(f, chunk));
        // Expected counts: 1 for the registry, +1 for `open`, +1 if on
        // the free list, +1 for the probe we are not taking. Any count
        // beyond registry/open/free handles means live allocations.
        let baseline = 1 + usize::from(is_open) + usize::from(already_free);
        if !is_open && !already_free && Arc::strong_count(chunk) == baseline {
            moved.push(Arc::clone(chunk));
        }
    }
    inner.free.extend(moved);
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        write!(
            f,
            "BufferPool({}, acl={:?}, chunks={})",
            inner.id,
            inner.acl,
            inner.registry.len()
        )
    }
}

#[derive(Clone)]
pub(crate) struct BufMeta {
    pub(crate) id: BufferId,
    pub(crate) generation: Generation,
    pub(crate) pool: PoolId,
    pub(crate) acl: Acl,
}

/// A writable, not-yet-immutable buffer allocation.
///
/// This is the "temporary write permission" window of §3.2: the producer
/// fills the buffer, then [`BufMut::freeze`]s it into an immutable
/// [`Slice`]. Unwritten capacity is dropped at freeze time.
pub struct BufMut {
    bytes: Vec<u8>,
    capacity: usize,
    meta: BufMeta,
    chunk: Arc<ChunkState>,
    event: AllocEvent,
}

impl BufMut {
    /// How the backing chunk was obtained (for VM cost accounting).
    pub fn event(&self) -> AllocEvent {
        self.event
    }

    /// Total writable capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.bytes.len()
    }

    /// Remaining writable capacity.
    pub fn remaining(&self) -> usize {
        self.capacity - self.bytes.len()
    }

    /// The buffer's address-analog identity.
    pub fn id(&self) -> BufferId {
        self.meta.id
    }

    /// The buffer's generation.
    pub fn generation(&self) -> Generation {
        self.meta.generation
    }

    /// Appends bytes, up to capacity.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the remaining capacity; producers size
    /// allocations before filling them.
    pub fn put(&mut self, data: &[u8]) {
        assert!(
            data.len() <= self.remaining(),
            "write of {} bytes exceeds remaining capacity {}",
            data.len(),
            self.remaining()
        );
        self.bytes.extend_from_slice(data);
    }

    /// Appends `len` bytes produced by `f(index)`.
    ///
    /// Used by synthetic data generators (CGI content, test patterns).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the remaining capacity.
    pub fn put_with(&mut self, len: usize, mut f: impl FnMut(usize) -> u8) {
        assert!(len <= self.remaining());
        let base = self.bytes.len();
        for i in 0..len {
            self.bytes.push(f(base + i));
        }
    }

    /// Seals the buffer: contents become immutable and shareable.
    pub fn freeze(self) -> Slice {
        let inner = Arc::new(BufferInner::new(
            self.bytes.into_boxed_slice(),
            self.meta,
            self.chunk,
        ));
        Slice::whole(inner)
    }
}

impl fmt::Debug for BufMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BufMut({}, {}/{} bytes)",
            self.meta.id,
            self.bytes.len(),
            self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 1024)
    }

    #[test]
    fn first_alloc_uses_fresh_chunk() {
        let p = pool();
        let b = p.alloc(100).unwrap();
        assert_eq!(b.event(), AllocEvent::FreshChunk);
        assert_eq!(b.capacity(), 100);
        assert_eq!(p.stats().chunks_created, 1);
    }

    #[test]
    fn small_allocs_pack_into_open_chunk() {
        let p = pool();
        let _a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        assert_eq!(b.event(), AllocEvent::OpenChunk);
        assert_eq!(p.stats().chunks_created, 1);
        // Packed at sequential offsets in the same chunk.
        assert_eq!(b.id().offset, 100);
    }

    #[test]
    fn oversized_alloc_rejected() {
        let p = pool();
        let err = p.alloc(4096).unwrap_err();
        assert_eq!(
            err,
            BufError::TooLarge {
                requested: 4096,
                max: 1024
            }
        );
    }

    #[test]
    fn alignment_is_respected() {
        let p = pool();
        let _a = p.alloc(10).unwrap();
        let b = p.alloc_aligned(100, 64).unwrap();
        assert_eq!(b.id().offset % 64, 0);
        assert_eq!(b.id().offset, 64);
    }

    #[test]
    fn drained_chunk_recycles_with_bumped_generation() {
        let p = pool();
        let s1 = p.alloc(1024).unwrap().freeze();
        let id1 = s1.id();
        let gen1 = s1.generation();
        drop(s1);
        // Force a new chunk decision: the open chunk is full, the old one
        // is drained.
        let s2 = p.alloc(1024).unwrap();
        assert_eq!(s2.event(), AllocEvent::RecycledChunk);
        assert_eq!(s2.id().chunk, id1.chunk);
        assert_eq!(s2.generation(), gen1.next());
        assert_eq!(p.stats().chunks_created, 1);
        assert_eq!(p.stats().chunks_recycled, 1);
    }

    #[test]
    fn live_slices_prevent_recycling() {
        let p = pool();
        let live = p.alloc(1024).unwrap().freeze();
        let b = p.alloc(1024).unwrap();
        assert_eq!(b.event(), AllocEvent::FreshChunk);
        assert_eq!(p.stats().chunks_created, 2);
        drop(live);
    }

    #[test]
    fn put_with_generates_bytes() {
        let p = pool();
        let mut b = p.alloc(4).unwrap();
        b.put_with(4, |i| i as u8 * 2);
        let s = b.freeze();
        assert_eq!(s.as_bytes(), &[0, 2, 4, 6]);
    }

    #[test]
    fn freeze_keeps_only_written_bytes() {
        let p = pool();
        let mut b = p.alloc(100).unwrap();
        b.put(b"abc");
        let s = b.freeze();
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_bytes(), b"abc");
    }

    #[test]
    fn resident_bytes_track_chunks() {
        let p = pool();
        assert_eq!(p.resident_bytes(), 0);
        let s = p.alloc(10).unwrap().freeze();
        assert_eq!(p.resident_bytes(), 1024);
        drop(s);
        // Chunk is drained but still resident until released.
        assert_eq!(p.resident_bytes(), 1024);
        assert_eq!(p.free_chunks(), 1);
        let released = p.release_free_chunks(u64::MAX);
        assert_eq!(released, 1024);
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.stats().chunks_released, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds remaining capacity")]
    fn overfull_put_panics() {
        let p = pool();
        let mut b = p.alloc(2).unwrap();
        b.put(b"abc");
    }
}

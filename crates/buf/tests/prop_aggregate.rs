//! Property tests for the buffer-aggregate algebra.
//!
//! The invariant throughout: an aggregate's *value* (its byte string) is
//! preserved by every zero-copy operation, regardless of how the value is
//! fragmented across immutable buffers.

use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use proptest::prelude::*;

fn pool(chunk: usize) -> BufferPool {
    BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), chunk)
}

/// Builds an aggregate whose fragmentation is controlled by `chunk`.
fn agg_from(data: &[u8], chunk: usize) -> Aggregate {
    Aggregate::from_bytes(&pool(chunk), data)
}

proptest! {
    #[test]
    fn from_bytes_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2048),
                              chunk in 1usize..256) {
        let a = agg_from(&data, chunk);
        prop_assert_eq!(a.to_vec(), data.clone());
        prop_assert_eq!(a.len(), data.len() as u64);
    }

    #[test]
    fn split_concat_is_identity(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                mid in any::<u64>(),
                                chunk in 1usize..128) {
        let a = agg_from(&data, chunk);
        let (h, t) = a.split_at(mid % (data.len() as u64 + 1));
        let rejoined = h.concat(&t);
        prop_assert!(rejoined.content_eq(&a));
        prop_assert_eq!(h.len() + t.len(), a.len());
    }

    #[test]
    fn range_matches_std_slice(data in proptest::collection::vec(any::<u8>(), 1..1024),
                               a in any::<usize>(), b in any::<usize>(),
                               chunk in 1usize..128) {
        let start = a % data.len();
        let len = b % (data.len() - start + 1);
        let agg = agg_from(&data, chunk);
        let r = agg.range(start as u64, len as u64).unwrap();
        prop_assert_eq!(r.to_vec(), data[start..start + len].to_vec());
    }

    #[test]
    fn truncate_advance_compose(data in proptest::collection::vec(any::<u8>(), 0..512),
                                n in any::<u64>(), m in any::<u64>(),
                                chunk in 1usize..64) {
        let mut agg = agg_from(&data, chunk);
        let n = n % (data.len() as u64 + 1);
        agg.truncate(n);
        let m = m % (n + 1);
        agg.advance(m);
        prop_assert_eq!(agg.to_vec(), data[m as usize..n as usize].to_vec());
    }

    #[test]
    fn replace_matches_vec_splice(data in proptest::collection::vec(any::<u8>(), 0..512),
                                  start in any::<u64>(), len in any::<u64>(),
                                  patch in proptest::collection::vec(any::<u8>(), 0..128),
                                  chunk in 1usize..64) {
        let p = pool(chunk);
        let agg = Aggregate::from_bytes(&p, &data);
        let start = start % (data.len() as u64 + 1);
        let len = len % (data.len() as u64 - start + 1);
        let out = agg.replace(&p, start, len, &patch).unwrap();

        let mut expect = data[..start as usize].to_vec();
        expect.extend_from_slice(&patch);
        expect.extend_from_slice(&data[(start + len) as usize..]);
        prop_assert_eq!(out.to_vec(), expect);
        // The original value is never disturbed (immutability).
        prop_assert_eq!(agg.to_vec(), data.clone());
    }

    #[test]
    fn byte_at_matches_indexing(data in proptest::collection::vec(any::<u8>(), 1..512),
                                chunk in 1usize..64) {
        let agg = agg_from(&data, chunk);
        for (i, &b) in data.iter().enumerate() {
            prop_assert_eq!(agg.byte_at(i as u64), Some(b));
        }
        prop_assert_eq!(agg.byte_at(data.len() as u64), None);
    }

    #[test]
    fn copy_to_matches_slice(data in proptest::collection::vec(any::<u8>(), 1..512),
                             off in any::<u64>(), want in 0usize..64,
                             chunk in 1usize..64) {
        let agg = agg_from(&data, chunk);
        let off = off % (data.len() as u64 + 1);
        let mut buf = vec![0u8; want];
        let got = agg.copy_to(off, &mut buf);
        let expect = &data[off as usize..(off as usize + want).min(data.len())];
        prop_assert_eq!(got, expect.len());
        prop_assert_eq!(&buf[..got], expect);
    }

    #[test]
    fn pack_preserves_value(data in proptest::collection::vec(any::<u8>(), 0..512),
                            chunk in 1usize..32) {
        let small = pool(chunk);
        let big = pool(4096);
        let frag = Aggregate::from_bytes(&small, &data);
        let packed = frag.pack(&big);
        prop_assert!(packed.content_eq(&frag));
        prop_assert!(packed.num_slices() <= 1 || data.len() > 4096);
    }

    #[test]
    fn content_eq_is_value_equality(data in proptest::collection::vec(any::<u8>(), 0..256),
                                    c1 in 1usize..64, c2 in 1usize..64) {
        let a = agg_from(&data, c1);
        let b = agg_from(&data, c2);
        prop_assert!(a.content_eq(&b));
    }

    #[test]
    fn reader_streams_value(data in proptest::collection::vec(any::<u8>(), 0..512),
                            chunk in 1usize..64) {
        use std::io::Read;
        let a = agg_from(&data, chunk);
        let mut out = Vec::new();
        a.reader().read_to_end(&mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn recycling_never_corrupts_live_data(sizes in proptest::collection::vec(1usize..512, 1..40)) {
        // Interleave allocations and drops; live aggregates must keep
        // their values even as chunks recycle underneath the pool.
        let p = pool(1024);
        let mut live: Vec<(Vec<u8>, Aggregate)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..sz).map(|j| (i * 31 + j) as u8).collect();
            let agg = Aggregate::from_bytes(&p, &data);
            live.push((data, agg));
            if i % 3 == 2 {
                live.remove(0);
            }
            for (expect, agg) in &live {
                prop_assert_eq!(&agg.to_vec(), expect);
            }
        }
    }
}

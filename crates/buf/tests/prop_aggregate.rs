//! Property tests for the buffer-aggregate algebra.
//!
//! The invariant throughout: an aggregate's *value* (its byte string) is
//! preserved by every zero-copy operation, regardless of how the value is
//! fragmented across immutable buffers.

use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use proptest::prelude::*;

fn pool(chunk: usize) -> BufferPool {
    BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), chunk)
}

/// Builds an aggregate whose fragmentation is controlled by `chunk`.
fn agg_from(data: &[u8], chunk: usize) -> Aggregate {
    Aggregate::from_bytes(&pool(chunk), data)
}

proptest! {
    #[test]
    fn from_bytes_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2048),
                              chunk in 1usize..256) {
        let a = agg_from(&data, chunk);
        prop_assert_eq!(a.to_vec(), data.clone());
        prop_assert_eq!(a.len(), data.len() as u64);
    }

    #[test]
    fn split_concat_is_identity(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                mid in any::<u64>(),
                                chunk in 1usize..128) {
        let a = agg_from(&data, chunk);
        let (h, t) = a.split_at(mid % (data.len() as u64 + 1));
        let rejoined = h.concat(&t);
        prop_assert!(rejoined.content_eq(&a));
        prop_assert_eq!(h.len() + t.len(), a.len());
    }

    #[test]
    fn range_matches_std_slice(data in proptest::collection::vec(any::<u8>(), 1..1024),
                               a in any::<usize>(), b in any::<usize>(),
                               chunk in 1usize..128) {
        let start = a % data.len();
        let len = b % (data.len() - start + 1);
        let agg = agg_from(&data, chunk);
        let r = agg.range(start as u64, len as u64).unwrap();
        prop_assert_eq!(r.to_vec(), data[start..start + len].to_vec());
    }

    #[test]
    fn truncate_advance_compose(data in proptest::collection::vec(any::<u8>(), 0..512),
                                n in any::<u64>(), m in any::<u64>(),
                                chunk in 1usize..64) {
        let mut agg = agg_from(&data, chunk);
        let n = n % (data.len() as u64 + 1);
        agg.truncate(n);
        let m = m % (n + 1);
        agg.advance(m);
        prop_assert_eq!(agg.to_vec(), data[m as usize..n as usize].to_vec());
    }

    #[test]
    fn replace_matches_vec_splice(data in proptest::collection::vec(any::<u8>(), 0..512),
                                  start in any::<u64>(), len in any::<u64>(),
                                  patch in proptest::collection::vec(any::<u8>(), 0..128),
                                  chunk in 1usize..64) {
        let p = pool(chunk);
        let agg = Aggregate::from_bytes(&p, &data);
        let start = start % (data.len() as u64 + 1);
        let len = len % (data.len() as u64 - start + 1);
        let out = agg.replace(&p, start, len, &patch).unwrap();

        let mut expect = data[..start as usize].to_vec();
        expect.extend_from_slice(&patch);
        expect.extend_from_slice(&data[(start + len) as usize..]);
        prop_assert_eq!(out.to_vec(), expect);
        // The original value is never disturbed (immutability).
        prop_assert_eq!(agg.to_vec(), data.clone());
    }

    #[test]
    fn byte_at_matches_indexing(data in proptest::collection::vec(any::<u8>(), 1..512),
                                chunk in 1usize..64) {
        let agg = agg_from(&data, chunk);
        for (i, &b) in data.iter().enumerate() {
            prop_assert_eq!(agg.byte_at(i as u64), Some(b));
        }
        prop_assert_eq!(agg.byte_at(data.len() as u64), None);
    }

    #[test]
    fn copy_to_matches_slice(data in proptest::collection::vec(any::<u8>(), 1..512),
                             off in any::<u64>(), want in 0usize..64,
                             chunk in 1usize..64) {
        let agg = agg_from(&data, chunk);
        let off = off % (data.len() as u64 + 1);
        let mut buf = vec![0u8; want];
        let got = agg.copy_to(off, &mut buf);
        let expect = &data[off as usize..(off as usize + want).min(data.len())];
        prop_assert_eq!(got, expect.len());
        prop_assert_eq!(&buf[..got], expect);
    }

    #[test]
    fn pack_preserves_value(data in proptest::collection::vec(any::<u8>(), 0..512),
                            chunk in 1usize..32) {
        let small = pool(chunk);
        let big = pool(4096);
        let frag = Aggregate::from_bytes(&small, &data);
        let packed = frag.pack(&big);
        prop_assert!(packed.content_eq(&frag));
        prop_assert!(packed.num_slices() <= 1 || data.len() > 4096);
    }

    #[test]
    fn content_eq_is_value_equality(data in proptest::collection::vec(any::<u8>(), 0..256),
                                    c1 in 1usize..64, c2 in 1usize..64) {
        let a = agg_from(&data, c1);
        let b = agg_from(&data, c2);
        prop_assert!(a.content_eq(&b));
    }

    #[test]
    fn reader_streams_value(data in proptest::collection::vec(any::<u8>(), 0..512),
                            chunk in 1usize..64) {
        use std::io::Read;
        let a = agg_from(&data, chunk);
        let mut out = Vec::new();
        a.reader().read_to_end(&mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn cursor_and_iovecs_match_to_vec_across_mutations(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        chunk in 1usize..96,
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..24),
    ) {
        // Drive an aggregate and a Vec<u8> model through the same random
        // sequence of advance / truncate / sub-range / replace, checking
        // after every step that the zero-alloc access paths (cursor
        // chunks, interior cursor copy, iovec view, byte_at) agree with
        // the materialized value.
        let p = pool(chunk);
        let mut agg = Aggregate::from_bytes(&p, &data);
        let mut model = data.clone();
        for (op, x, y) in ops {
            let len = model.len() as u64;
            match op % 4 {
                0 => {
                    let n = x % (len + 1);
                    agg.advance(n);
                    model.drain(..n as usize);
                }
                1 => {
                    let n = x % (len + 1);
                    agg.truncate(n);
                    model.truncate(n as usize);
                }
                2 => {
                    let start = x % (len + 1);
                    let sub = y % (len - start + 1);
                    agg = agg.range(start, sub).unwrap();
                    model = model[start as usize..(start + sub) as usize].to_vec();
                }
                _ => {
                    let start = x % (len + 1);
                    let cut = y % (len - start + 1);
                    let patch: Vec<u8> =
                        (0..(y % 40) as u8).map(|i| i.wrapping_mul(31)).collect();
                    agg = agg.replace(&p, start, cut, &patch).unwrap();
                    model.splice(
                        start as usize..(start + cut) as usize,
                        patch.iter().copied(),
                    );
                }
            }
            prop_assert_eq!(agg.len(), model.len() as u64);
            // Cursor chunk walk reconstructs the value.
            let mut via_cursor = Vec::with_capacity(model.len());
            let mut cur = agg.cursor();
            while let Some(c) = cur.next_chunk() {
                via_cursor.extend_from_slice(c);
            }
            prop_assert_eq!(&via_cursor, &model);
            prop_assert_eq!(&agg.to_vec(), &model);
            // The iovec view flattens to the same value.
            let mut iov = Vec::new();
            agg.as_iovecs(&mut iov);
            prop_assert_eq!(iov.concat(), model.clone());
            if !model.is_empty() {
                // Interior cursor: copy the tail from a random offset.
                let off = (x ^ y) % model.len() as u64;
                let mut buf = vec![0u8; model.len() - off as usize];
                prop_assert_eq!(agg.cursor_at(off).copy_to(&mut buf), buf.len());
                prop_assert_eq!(&buf[..], &model[off as usize..]);
                // Indexed probe agrees with the model.
                prop_assert_eq!(agg.byte_at(off), Some(model[off as usize]));
                // find_byte agrees with the model's linear scan.
                let target = model[off as usize];
                let expect = model
                    .iter()
                    .position(|&b| b == target)
                    .map(|i| i as u64);
                prop_assert_eq!(agg.find_byte(0, target), expect);
            }
        }
    }

    #[test]
    fn recycling_never_corrupts_live_data(sizes in proptest::collection::vec(1usize..512, 1..40)) {
        // Interleave allocations and drops; live aggregates must keep
        // their values even as chunks recycle underneath the pool.
        let p = pool(1024);
        let mut live: Vec<(Vec<u8>, Aggregate)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..sz).map(|j| (i * 31 + j) as u8).collect();
            let agg = Aggregate::from_bytes(&p, &data);
            live.push((data, agg));
            if i % 3 == 2 {
                live.remove(0);
            }
            for (expect, agg) in &live {
                prop_assert_eq!(&agg.to_vec(), expect);
            }
        }
    }
}

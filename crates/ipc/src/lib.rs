#![warn(missing_docs)]
//! Interprocess communication: pipes and UNIX-domain sockets (paper
//! §3.2, §4.4).
//!
//! "If the processes on both ends of a pipe or UNIX domain socket-pair
//! use the IO-Lite API, then the data transfer proceeds copy-free by
//! passing the associated IO-Lite buffers by reference."
//!
//! [`Pipe`] implements both worlds over real data:
//!
//! * [`PipeMode::Copy`] — conventional BSD: the writer copies bytes into
//!   a bounded kernel buffer, the reader copies them out again (two
//!   copies per byte), and a large transfer degenerates into many
//!   fill/drain rounds with context switches — the CGI bottleneck of
//!   Figs. 5/6.
//! * [`PipeMode::ZeroCopy`] — IO-Lite: aggregates queue by reference;
//!   no byte is touched, and recycled buffers make the steady state
//!   approach shared-memory cost (the `permute` result of §5.8).
//!
//! The crate reports copies/rounds; the kernel layer charges time.

use std::collections::VecDeque;

use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};

/// Buffering behaviour of a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeMode {
    /// Conventional copy-in/copy-out through a kernel buffer.
    Copy,
    /// IO-Lite pass-by-reference.
    ZeroCopy,
}

/// Pipe activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Bytes accepted from writers.
    pub bytes_written: u64,
    /// Bytes delivered to readers.
    pub bytes_read: u64,
    /// Bytes physically copied (0 in zero-copy mode).
    pub bytes_copied: u64,
    /// Write calls that found the pipe full (producer/consumer rounds;
    /// each implies a context-switch pair in the timing model).
    pub full_events: u64,
    /// Write system calls.
    pub writes: u64,
    /// Read system calls.
    pub reads: u64,
}

/// A bounded, unidirectional byte channel between two domains.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_ipc::{Pipe, PipeMode};
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
/// let mut pipe = Pipe::new(PipeMode::ZeroCopy, 64 * 1024);
/// let msg = Aggregate::from_bytes(&pool, b"hello");
/// assert_eq!(pipe.write(&msg), 5);
/// let got = pipe.read(100).unwrap();
/// assert_eq!(got.to_vec(), b"hello");
/// ```
#[derive(Debug)]
pub struct Pipe {
    mode: PipeMode,
    capacity: u64,
    queue: VecDeque<Aggregate>,
    buffered: u64,
    closed: bool,
    stats: PipeStats,
    /// The kernel-buffer backing for copy mode, persistent across
    /// writes: drained copies return their chunks to this pool's free
    /// list, so the steady-state hot pipe path (the Fig. 5/6 CGI
    /// experiment) recycles chunks instead of allocating a fresh pool
    /// per `write`. `None` for zero-copy pipes, which never copy.
    scratch: Option<BufferPool>,
}

impl Pipe {
    /// Creates a pipe with the given mode and kernel-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(mode: PipeMode, capacity: u64) -> Self {
        assert!(capacity > 0);
        Pipe {
            mode,
            capacity,
            queue: VecDeque::new(),
            buffered: 0,
            closed: false,
            stats: PipeStats::default(),
            // A kernel-side pool holding anonymous copies, allocated
            // only when the mode can copy. Its id must still be unique:
            // chunk ids and generations are per-pool counters, and the
            // checksum cache keys on ⟨pool, buffer, generation⟩ — two
            // pools sharing one id would alias each other's slice
            // identities and could serve a stale checksum on the wire.
            scratch: (mode == PipeMode::Copy).then(|| {
                BufferPool::new(next_scratch_pool_id(), Acl::kernel_only(), 64 * 1024)
            }),
        }
    }

    /// Creates a pipe whose copy-mode scratch pool uses a caller-chosen
    /// id instead of the process-global descending counter.
    ///
    /// The pure kernel core uses this: scratch ids allocated from the
    /// global atomic would differ between a live run and a journal
    /// replay, breaking deterministic state digests. The caller promises
    /// `scratch_id` stays in the descending kernel band (above
    /// `u32::MAX / 2`) so it can never alias kernel-assigned pool ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `scratch_id` is outside the
    /// reserved band.
    pub fn with_scratch_id(mode: PipeMode, capacity: u64, scratch_id: PoolId) -> Self {
        assert!(capacity > 0);
        assert!(
            scratch_id.0 > u32::MAX / 2,
            "scratch pool id must sit in the reserved kernel band"
        );
        Pipe {
            mode,
            capacity,
            queue: VecDeque::new(),
            buffered: 0,
            closed: false,
            stats: PipeStats::default(),
            scratch: (mode == PipeMode::Copy)
                .then(|| BufferPool::new(scratch_id, Acl::kernel_only(), 64 * 1024)),
        }
    }

    /// Deep-forks the pipe for a kernel-state snapshot: the scratch pool
    /// is forked and queued aggregates are rebound through `forker`.
    pub fn fork(&self, forker: &mut iolite_buf::PoolForker) -> Pipe {
        let scratch = self.scratch.as_ref().map(|p| p.fork(forker));
        Pipe {
            mode: self.mode,
            capacity: self.capacity,
            queue: self.queue.iter().map(|a| forker.fork_aggregate(a)).collect(),
            buffered: self.buffered,
            closed: self.closed,
            stats: self.stats,
            scratch,
        }
    }

    /// Folds the pipe's state into a stable digest.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_bool(matches!(self.mode, PipeMode::ZeroCopy));
        h.write_u64(self.capacity);
        h.write_u64(self.buffered);
        h.write_bool(self.closed);
        for v in [
            self.stats.bytes_written,
            self.stats.bytes_read,
            self.stats.bytes_copied,
            self.stats.full_events,
            self.stats.writes,
            self.stats.reads,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.queue.len() as u64);
        for a in &self.queue {
            iolite_buf::digest_aggregate(a, h);
        }
    }

    /// The pipe's mode.
    pub fn mode(&self) -> PipeMode {
        self.mode
    }

    /// Bytes currently buffered in the pipe.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Remaining capacity.
    pub fn space(&self) -> u64 {
        self.capacity - self.buffered
    }

    /// Whether the write end has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Closes the write end; readers drain what remains then see EOF.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Writes as much of `data` as fits, returning the bytes accepted.
    ///
    /// Zero-copy mode enqueues a sub-aggregate by reference; copy mode
    /// physically duplicates the accepted bytes (the kernel-buffer
    /// copy-in). A short write means the pipe is full: the producer must
    /// block until a reader drains it (one fill/drain round).
    ///
    /// # Panics
    ///
    /// Panics if the pipe is closed.
    pub fn write(&mut self, data: &Aggregate) -> u64 {
        assert!(!self.closed, "write to closed pipe");
        self.stats.writes += 1;
        let take = data.len().min(self.space());
        if take < data.len() {
            self.stats.full_events += 1;
        }
        if take == 0 {
            return 0;
        }
        let part = data.range(0, take).expect("in range");
        let queued = match self.mode {
            PipeMode::ZeroCopy => part,
            PipeMode::Copy => {
                // Copy-in: the kernel buffer holds its own bytes. Each
                // byte is copied exactly once, straight into recycled
                // scratch chunks — the conventional path pays one
                // copy-in, not a materialize-then-copy double, and no
                // allocation in the steady state.
                self.stats.bytes_copied += take;
                part.pack(self.scratch.as_ref().expect("copy mode has scratch"))
            }
        };
        self.queue.push_back(queued);
        self.buffered += take;
        self.stats.bytes_written += take;
        take
    }

    /// Reads up to `max` bytes.
    ///
    /// Returns `None` when the pipe is empty (EAGAIN, or EOF if closed).
    /// Copy mode charges the copy-out; zero-copy hands references
    /// through.
    pub fn read(&mut self, max: u64) -> Option<Aggregate> {
        if max == 0 || self.queue.is_empty() {
            return None;
        }
        self.stats.reads += 1;
        let mut out = Aggregate::empty();
        while out.len() < max {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let want = max - out.len();
            if front.len() <= want {
                out.append(front);
                self.queue.pop_front();
            } else {
                let head = front.range(0, want).expect("in range");
                front.advance(want);
                out.append(&head);
            }
        }
        self.buffered -= out.len();
        self.stats.bytes_read += out.len();
        if self.mode == PipeMode::Copy {
            // Copy-out into the reader's buffer.
            self.stats.bytes_copied += out.len();
        }
        Some(out)
    }

    /// Activity counters.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }
}

/// Allocates a unique id for a pipe's kernel-side scratch pool. Ids
/// descend from just below the top of the id space: the kernel assigns
/// process/user pool ids ascending from 1, and the topmost ids are
/// reserved for fixed kernel sentinels (the rx path's anonymous pool
/// is `u32::MAX - 1`), so the bands never meet.
fn next_scratch_pool_id() -> PoolId {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(u32::MAX - 256);
    let id = NEXT.fetch_sub(1, Ordering::Relaxed);
    // Fail loudly long before wrap-around could walk the descending
    // band into kernel-assigned ids and alias pool identities.
    assert!(id > u32::MAX / 2, "scratch pool id space exhausted");
    PoolId(id)
}

/// A bidirectional UNIX-domain socket pair: two pipes.
#[derive(Debug)]
pub struct UnixSocketPair {
    /// Direction A→B.
    pub a_to_b: Pipe,
    /// Direction B→A.
    pub b_to_a: Pipe,
}

impl UnixSocketPair {
    /// Creates a socket pair in the given mode.
    pub fn new(mode: PipeMode, capacity: u64) -> Self {
        UnixSocketPair {
            a_to_b: Pipe::new(mode, capacity),
            b_to_a: Pipe::new(mode, capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024)
    }

    fn agg(data: &[u8]) -> Aggregate {
        Aggregate::from_bytes(&pool(), data)
    }

    #[test]
    fn zero_copy_roundtrip_no_copies() {
        let mut p = Pipe::new(PipeMode::ZeroCopy, 1024);
        let msg = agg(b"payload");
        assert_eq!(p.write(&msg), 7);
        let got = p.read(100).unwrap();
        assert_eq!(got.to_vec(), b"payload");
        assert_eq!(p.stats().bytes_copied, 0);
        // The reader's aggregate references the writer's buffer.
        assert!(got.slice_at(0).same_buffer(msg.slice_at(0)));
    }

    #[test]
    fn copy_mode_copies_twice() {
        let mut p = Pipe::new(PipeMode::Copy, 1024);
        let msg = agg(b"payload");
        p.write(&msg);
        let got = p.read(100).unwrap();
        assert_eq!(got.to_vec(), b"payload");
        // Copy-in + copy-out.
        assert_eq!(p.stats().bytes_copied, 14);
        assert!(!got.slice_at(0).same_buffer(msg.slice_at(0)));
    }

    /// Regression: copy mode used to allocate a brand-new `BufferPool`
    /// on every `write` — allocation churn on the hot pipe path the
    /// Fig. 5/6 CGI experiment measures. The persistent scratch pool
    /// must recycle its chunks in the steady state.
    #[test]
    fn copy_mode_scratch_pool_recycles_chunks() {
        let msg = agg(&[7u8; 32 * 1024]);
        let mut p = Pipe::new(PipeMode::Copy, 64 * 1024);
        for _ in 0..100 {
            assert_eq!(p.write(&msg), 32 * 1024);
            let got = p.read(u64::MAX).unwrap();
            assert_eq!(got.len(), 32 * 1024);
        }
        let scratch = p.scratch.as_ref().expect("copy mode has scratch");
        let st = scratch.stats();
        assert!(
            st.chunks_created <= 3,
            "steady state must not allocate fresh chunks: {}",
            st.chunks_created
        );
        // Two 32KB copies pack into each 64KB chunk, so every other
        // write drains-and-recycles one chunk.
        assert!(
            st.chunks_recycled >= 45,
            "drained copies must recycle: {}",
            st.chunks_recycled
        );
        assert!(scratch.resident_bytes() <= 3 * 64 * 1024);
    }

    /// Regression: two pipes' scratch pools must not alias. Chunk ids
    /// and generations are per-pool counters, so same-shaped first
    /// copies land on identical per-pool coordinates — only the pool id
    /// keeps their checksum-cache identities distinct.
    #[test]
    fn scratch_pools_have_distinct_identities() {
        let mut p1 = Pipe::new(PipeMode::Copy, 1024);
        let mut p2 = Pipe::new(PipeMode::Copy, 1024);
        p1.write(&agg(b"first pipe"));
        p2.write(&agg(b"other data"));
        let a = p1.read(100).unwrap();
        let b = p2.read(100).unwrap();
        assert_eq!(a.slice_at(0).id(), b.slice_at(0).id());
        assert_eq!(a.slice_at(0).generation(), b.slice_at(0).generation());
        assert_ne!(a.slice_at(0).pool(), b.slice_at(0).pool());
        // Scratch ids stay clear of the fixed kernel sentinels at the
        // very top of the id space (e.g. the rx path's anonymous pool).
        assert!(a.slice_at(0).pool().0 <= u32::MAX - 256);
        assert!(b.slice_at(0).pool().0 <= u32::MAX - 256);
        // Zero-copy pipes never allocate a scratch pool at all.
        assert!(Pipe::new(PipeMode::ZeroCopy, 1024).scratch.is_none());
    }

    #[test]
    fn capacity_forces_short_writes() {
        let mut p = Pipe::new(PipeMode::ZeroCopy, 10);
        let msg = agg(&[1u8; 25]);
        assert_eq!(p.write(&msg), 10);
        assert_eq!(p.stats().full_events, 1);
        assert_eq!(p.space(), 0);
        // Drain and continue: the fill/drain round structure.
        let got = p.read(10).unwrap();
        assert_eq!(got.len(), 10);
        let rest = msg.range(10, 15).unwrap();
        assert_eq!(p.write(&rest), 10);
    }

    #[test]
    fn partial_reads_preserve_order() {
        let mut p = Pipe::new(PipeMode::ZeroCopy, 1024);
        p.write(&agg(b"abcdef"));
        p.write(&agg(b"ghij"));
        let first = p.read(4).unwrap();
        assert_eq!(first.to_vec(), b"abcd");
        let second = p.read(100).unwrap();
        assert_eq!(second.to_vec(), b"efghij");
        assert!(p.read(10).is_none());
    }

    #[test]
    fn read_spans_queued_messages() {
        let mut p = Pipe::new(PipeMode::Copy, 1024);
        p.write(&agg(b"one"));
        p.write(&agg(b"two"));
        let got = p.read(6).unwrap();
        assert_eq!(got.to_vec(), b"onetwo");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn close_semantics() {
        let mut p = Pipe::new(PipeMode::ZeroCopy, 1024);
        p.write(&agg(b"last"));
        p.close();
        assert!(p.is_closed());
        // Remaining data still drains after close.
        assert_eq!(p.read(10).unwrap().to_vec(), b"last");
        assert!(p.read(10).is_none());
    }

    #[test]
    #[should_panic(expected = "closed pipe")]
    fn write_after_close_panics() {
        let mut p = Pipe::new(PipeMode::Copy, 16);
        p.close();
        p.write(&agg(b"x"));
    }

    #[test]
    fn socket_pair_is_bidirectional() {
        let mut sp = UnixSocketPair::new(PipeMode::ZeroCopy, 1024);
        sp.a_to_b.write(&agg(b"request"));
        sp.b_to_a.write(&agg(b"response"));
        assert_eq!(sp.a_to_b.read(100).unwrap().to_vec(), b"request");
        assert_eq!(sp.b_to_a.read(100).unwrap().to_vec(), b"response");
    }

    #[test]
    fn stats_track_rounds() {
        let mut p = Pipe::new(PipeMode::Copy, 8);
        let msg = agg(&[0u8; 64]);
        let mut offset = 0u64;
        let mut rounds = 0;
        while offset < 64 {
            let part = msg.range(offset, 64 - offset).unwrap();
            let n = p.write(&part);
            offset += n;
            if offset < 64 {
                p.read(8).unwrap();
                rounds += 1;
            }
        }
        assert_eq!(rounds, 7, "64 bytes through an 8-byte pipe");
        assert!(p.stats().full_events >= 7);
    }
}

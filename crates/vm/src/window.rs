//! The IO-Lite window: chunk-granularity mapping state per protection
//! domain (§3.3, §4.5, Figure 1).
//!
//! The window "appears in the virtual address spaces of all protection
//! domains, including the kernel". Transferring an aggregate across a
//! domain boundary makes the underlying chunks readable in the receiving
//! domain. Mappings are established lazily and **persist** after buffer
//! deallocation, forming the "lazily established pool of read-only
//! shared-memory pages" of §3.2 — so recycled chunks transfer at shared-
//! memory cost, and only first-time transfers pay page-mapping cost.

use std::collections::HashMap;
use std::fmt;

use iolite_buf::{Acl, ChunkId, DomainId, PAGE_SIZE};

/// Access-control violation: the receiving domain is not on the ACL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessDenied {
    /// The domain that was refused.
    pub domain: DomainId,
}

impl fmt::Display for AccessDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain {} is not on the buffer pool's ACL", self.domain)
    }
}

impl std::error::Error for AccessDenied {}

/// Access permission a domain holds on a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perm {
    /// Read-only mapping (consumers).
    Read,
    /// Read-write mapping (the producer while filling; §3.2's "temporary
    /// write permissions").
    ReadWrite,
}

/// Counters describing mapping activity (drives simulated VM cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Map operations that created a new chunk mapping.
    pub chunk_maps: u64,
    /// Pages covered by those new mappings.
    pub pages_mapped: u64,
    /// Transfers that required no new mapping (recycled/warm chunks).
    pub warm_transfers: u64,
    /// Write-permission toggles for untrusted producers.
    pub write_toggles: u64,
    /// Access-control denials.
    pub denials: u64,
}

/// Per-domain chunk mapping tables for the IO-Lite window.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, ChunkId, DomainId};
/// use iolite_vm::IoLiteWindow;
///
/// let mut w = IoLiteWindow::new(64 * 1024);
/// let acl = Acl::with_domain(DomainId(3));
/// // First transfer of a chunk maps 16 pages; repeats are free.
/// assert_eq!(w.transfer(&[ChunkId(0)], DomainId(3), &acl).unwrap(), 16);
/// assert_eq!(w.transfer(&[ChunkId(0)], DomainId(3), &acl).unwrap(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct IoLiteWindow {
    chunk_size: usize,
    maps: HashMap<DomainId, HashMap<ChunkId, Perm>>,
    stats: MapStats,
}

impl IoLiteWindow {
    /// Creates a window for chunks of the given size.
    pub fn new(chunk_size: usize) -> Self {
        IoLiteWindow {
            chunk_size,
            maps: HashMap::new(),
            stats: MapStats::default(),
        }
    }

    /// Pages per chunk for cost accounting.
    pub fn pages_per_chunk(&self) -> u64 {
        (self.chunk_size / PAGE_SIZE) as u64
    }

    /// Transfers buffers occupying `chunks` to `domain`, enforcing the
    /// pool ACL, and returns the number of **newly mapped pages** (zero
    /// for warm transfers).
    ///
    /// The kernel domain is implicitly mapped (it "has access ... by
    /// virtue of being part of the kernel", §3.10) and costs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`AccessDenied`] and counts a denial if `domain` is not
    /// on the ACL; callers surface this as an access-control fault.
    pub fn transfer(
        &mut self,
        chunks: &[ChunkId],
        domain: DomainId,
        acl: &Acl,
    ) -> Result<u64, AccessDenied> {
        if domain == DomainId::KERNEL {
            return Ok(0);
        }
        if !acl.allows(domain) {
            self.stats.denials += 1;
            return Err(AccessDenied { domain });
        }
        let table = self.maps.entry(domain).or_default();
        let mut new_pages = 0;
        for &c in chunks {
            if table.contains_key(&c) {
                continue;
            }
            table.insert(c, Perm::Read);
            self.stats.chunk_maps += 1;
            new_pages += (self.chunk_size / PAGE_SIZE) as u64;
        }
        if new_pages == 0 {
            self.stats.warm_transfers += 1;
        } else {
            self.stats.pages_mapped += new_pages;
        }
        Ok(new_pages)
    }

    /// Grants the producer temporary write permission on a chunk while it
    /// fills buffers (§3.2). Trusted (kernel) producers skip this.
    ///
    /// Returns the number of newly mapped pages (a fresh writable chunk
    /// needs a map; toggling an existing read mapping is cheaper and is
    /// counted in [`MapStats::write_toggles`]).
    pub fn grant_write(&mut self, chunk: ChunkId, domain: DomainId) -> u64 {
        if domain == DomainId::KERNEL {
            return 0;
        }
        let pages = (self.chunk_size / PAGE_SIZE) as u64;
        let table = self.maps.entry(domain).or_default();
        match table.get(&chunk) {
            Some(Perm::ReadWrite) => 0,
            Some(Perm::Read) => {
                table.insert(chunk, Perm::ReadWrite);
                self.stats.write_toggles += 1;
                0
            }
            None => {
                table.insert(chunk, Perm::ReadWrite);
                self.stats.chunk_maps += 1;
                self.stats.pages_mapped += pages;
                pages
            }
        }
    }

    /// Revokes write permission after the producer seals its buffers.
    pub fn revoke_write(&mut self, chunk: ChunkId, domain: DomainId) {
        if domain == DomainId::KERNEL {
            return;
        }
        if let Some(table) = self.maps.get_mut(&domain) {
            if let Some(p) = table.get_mut(&chunk) {
                if *p == Perm::ReadWrite {
                    *p = Perm::Read;
                    self.stats.write_toggles += 1;
                }
            }
        }
    }

    /// Whether `domain` currently maps `chunk`.
    pub fn is_mapped(&self, chunk: ChunkId, domain: DomainId) -> bool {
        domain == DomainId::KERNEL
            || self
                .maps
                .get(&domain)
                .is_some_and(|t| t.contains_key(&chunk))
    }

    /// Number of chunks mapped in `domain`.
    pub fn mapped_chunks(&self, domain: DomainId) -> usize {
        self.maps.get(&domain).map_or(0, |t| t.len())
    }

    /// Drops all of `domain`'s mappings (process exit).
    pub fn unmap_domain(&mut self, domain: DomainId) {
        self.maps.remove(&domain);
    }

    /// Mapping-activity counters.
    pub fn stats(&self) -> MapStats {
        self.stats
    }

    /// Folds the window's mapping state into a stable digest (sorted
    /// iteration over both map levels).
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.chunk_size as u64);
        for v in [
            self.stats.chunk_maps,
            self.stats.pages_mapped,
            self.stats.warm_transfers,
            self.stats.write_toggles,
            self.stats.denials,
        ] {
            h.write_u64(v);
        }
        let mut domains: Vec<DomainId> = self.maps.keys().copied().collect();
        domains.sort_unstable();
        h.write_u64(domains.len() as u64);
        for d in domains {
            h.write_u32(d.0);
            let table = &self.maps[&d];
            let mut chunks: Vec<ChunkId> = table.keys().copied().collect();
            chunks.sort_unstable();
            h.write_u64(chunks.len() as u64);
            for c in chunks {
                h.write_u64(c.0);
                h.write_bool(matches!(table[&c], Perm::ReadWrite));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acl_for(d: DomainId) -> Acl {
        Acl::with_domain(d)
    }

    #[test]
    fn first_transfer_maps_then_warm() {
        let mut w = IoLiteWindow::new(64 * 1024);
        let d = DomainId(1);
        let acl = acl_for(d);
        let pages = w.transfer(&[ChunkId(0), ChunkId(1)], d, &acl).unwrap();
        assert_eq!(pages, 32);
        assert_eq!(w.stats().chunk_maps, 2);
        let pages = w.transfer(&[ChunkId(0), ChunkId(1)], d, &acl).unwrap();
        assert_eq!(pages, 0);
        assert_eq!(w.stats().warm_transfers, 1);
    }

    #[test]
    fn kernel_transfers_are_free() {
        let mut w = IoLiteWindow::new(64 * 1024);
        let acl = Acl::kernel_only();
        assert_eq!(w.transfer(&[ChunkId(5)], DomainId::KERNEL, &acl), Ok(0));
        assert_eq!(w.stats().chunk_maps, 0);
        assert!(w.is_mapped(ChunkId(5), DomainId::KERNEL));
    }

    #[test]
    fn acl_denial_counted() {
        let mut w = IoLiteWindow::new(64 * 1024);
        let acl = acl_for(DomainId(1));
        assert!(w.transfer(&[ChunkId(0)], DomainId(2), &acl).is_err());
        assert_eq!(w.stats().denials, 1);
        assert!(!w.is_mapped(ChunkId(0), DomainId(2)));
    }

    #[test]
    fn write_grant_and_revoke_toggle() {
        let mut w = IoLiteWindow::new(64 * 1024);
        let d = DomainId(1);
        // Fresh writable chunk pays the map.
        assert_eq!(w.grant_write(ChunkId(0), d), 16);
        // Re-granting is free.
        assert_eq!(w.grant_write(ChunkId(0), d), 0);
        w.revoke_write(ChunkId(0), d);
        // Upgrading an existing read mapping only toggles.
        assert_eq!(w.grant_write(ChunkId(0), d), 0);
        assert_eq!(w.stats().write_toggles, 2);
        assert_eq!(w.stats().chunk_maps, 1);
    }

    #[test]
    fn mappings_persist_per_domain() {
        let mut w = IoLiteWindow::new(64 * 1024);
        let d1 = DomainId(1);
        let d2 = DomainId(2);
        let acl = Acl::with_domains(&[d1, d2]);
        w.transfer(&[ChunkId(7)], d1, &acl).unwrap();
        assert!(w.is_mapped(ChunkId(7), d1));
        assert!(!w.is_mapped(ChunkId(7), d2));
        w.transfer(&[ChunkId(7)], d2, &acl).unwrap();
        assert_eq!(w.mapped_chunks(d1), 1);
        assert_eq!(w.mapped_chunks(d2), 1);
        w.unmap_domain(d1);
        assert!(!w.is_mapped(ChunkId(7), d1));
        assert!(w.is_mapped(ChunkId(7), d2));
    }
}

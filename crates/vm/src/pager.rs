//! The pageout daemon's cache-eviction trigger (§3.7).
//!
//! The paper's rule, verbatim: "If, during the period since the last
//! cache entry eviction, more than half of VM pages selected for
//! replacement were pages containing cached I/O data, then it is assumed
//! that the current file cache is too large, and we evict one cache
//! entry. Because the cache is enlarged on every miss, this policy tends
//! to keep the file cache at a size such that about half of all VM page
//! replacements affect file cache pages."
//!
//! The file-cache module reports page replacements to this daemon and
//! asks it whether to evict; backing-store writes are counted so the
//! multi-backing-store behaviour (paging space plus the files a page
//! caches for) stays observable.

/// Classification of a page selected for replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// The page holds cached I/O data (IO-Lite buffers backing the file
    /// cache).
    CachedIo,
    /// Any other page (application anonymous memory, program text...).
    Other,
}

/// What the pageout daemon decided to do under memory pressure.
///
/// With a write path (PR 10) the daemon is no longer just an eviction
/// trigger: dirty cache entries cannot be discarded, so pressure on a
/// write-heavy cache must be relieved by *write-back* (clean the dirty
/// data, then it becomes evictable), while pressure on a read-heavy
/// cache is still relieved by plain clean eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageoutAction {
    /// Flush dirty entries through the write-back scheduler.
    WriteBack,
    /// Evict one clean cache entry (§3.7).
    EvictClean,
    /// No action: the §3.7 predicate is not armed.
    Idle,
}

/// Implements the §3.7 eviction-trigger rule and pageout statistics.
#[derive(Debug, Default, Clone)]
pub struct PageoutDaemon {
    /// Replacements observed since the last cache-entry eviction.
    cached_io_since_evict: u64,
    other_since_evict: u64,
    /// Lifetime counters.
    total_cached_io: u64,
    total_other: u64,
    evictions_signalled: u64,
    backing_store_writes: u64,
    backing_store_bytes: u64,
    dirty_writebacks: u64,
    clean_evictions: u64,
}

impl PageoutDaemon {
    /// Creates an idle daemon.
    pub fn new() -> Self {
        PageoutDaemon::default()
    }

    /// Records that the VM system selected a page of `class` for
    /// replacement.
    pub fn page_replaced(&mut self, class: PageClass) {
        match class {
            PageClass::CachedIo => {
                self.cached_io_since_evict += 1;
                self.total_cached_io += 1;
            }
            PageClass::Other => {
                self.other_since_evict += 1;
                self.total_other += 1;
            }
        }
    }

    /// The §3.7 predicate: should the file cache evict one entry now?
    ///
    /// True when more than half of the pages replaced since the previous
    /// eviction held cached I/O data. Callers that evict must then call
    /// [`PageoutDaemon::eviction_performed`].
    pub fn should_evict_cache_entry(&self) -> bool {
        let total = self.cached_io_since_evict + self.other_since_evict;
        total > 0 && self.cached_io_since_evict * 2 > total
    }

    /// Resets the per-period counters after the cache evicted an entry.
    pub fn eviction_performed(&mut self) {
        self.evictions_signalled += 1;
        self.cached_io_since_evict = 0;
        self.other_since_evict = 0;
    }

    /// Arbitrates dirty write-back vs. clean eviction under pressure.
    ///
    /// When the §3.7 predicate is armed, the daemon relieves pressure by
    /// the cheapest *safe* action: a clean victim is evicted for free,
    /// but once the dirty pool passes the write-back scheduler's
    /// threshold — or when every remaining entry is dirty and there is
    /// nothing clean to evict — the answer is write-back, because
    /// cleaning is the only way to mint new victims. Records the
    /// decision; the caller performs it and then calls
    /// [`PageoutDaemon::eviction_performed`] to close the period.
    pub fn arbitrate(
        &mut self,
        dirty_bytes: u64,
        dirty_threshold: u64,
        has_clean_victim: bool,
    ) -> PageoutAction {
        if !self.should_evict_cache_entry() {
            return PageoutAction::Idle;
        }
        let dirty_armed = dirty_bytes > 0 && dirty_bytes >= dirty_threshold;
        if dirty_armed || (!has_clean_victim && dirty_bytes > 0) {
            self.dirty_writebacks += 1;
            PageoutAction::WriteBack
        } else if has_clean_victim {
            self.clean_evictions += 1;
            PageoutAction::EvictClean
        } else {
            PageoutAction::Idle
        }
    }

    /// Records a backing-store write performed while paging out an
    /// IO-Lite buffer page (possibly to several stores: paging space plus
    /// each file caching the page, §3.7).
    pub fn backing_store_write(&mut self, stores: u64, bytes: u64) {
        self.backing_store_writes += stores;
        self.backing_store_bytes += stores * bytes;
    }

    /// Lifetime count of cached-I/O page replacements.
    pub fn total_cached_io(&self) -> u64 {
        self.total_cached_io
    }

    /// Lifetime count of other page replacements.
    pub fn total_other(&self) -> u64 {
        self.total_other
    }

    /// Number of cache-entry evictions signalled.
    pub fn evictions(&self) -> u64 {
        self.evictions_signalled
    }

    /// Backing-store writes issued (one per store per page).
    pub fn backing_writes(&self) -> u64 {
        self.backing_store_writes
    }

    /// Bytes written to backing stores.
    pub fn backing_bytes(&self) -> u64 {
        self.backing_store_bytes
    }

    /// Pressure resolutions decided as dirty write-back.
    pub fn dirty_writebacks(&self) -> u64 {
        self.dirty_writebacks
    }

    /// Pressure resolutions decided as clean eviction.
    pub fn clean_evictions(&self) -> u64 {
        self.clean_evictions
    }

    /// Folds the daemon's counters into a stable digest.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        for v in [
            self.cached_io_since_evict,
            self.other_since_evict,
            self.total_cached_io,
            self.total_other,
            self.evictions_signalled,
            self.backing_store_writes,
            self.backing_store_bytes,
            self.dirty_writebacks,
            self.clean_evictions,
        ] {
            h.write_u64(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_replacements_no_eviction() {
        let d = PageoutDaemon::new();
        assert!(!d.should_evict_cache_entry());
    }

    #[test]
    fn majority_rule_exact() {
        let mut d = PageoutDaemon::new();
        d.page_replaced(PageClass::CachedIo);
        d.page_replaced(PageClass::Other);
        // Exactly half: not "more than half".
        assert!(!d.should_evict_cache_entry());
        d.page_replaced(PageClass::CachedIo);
        // 2 of 3: evict.
        assert!(d.should_evict_cache_entry());
    }

    #[test]
    fn eviction_resets_period() {
        let mut d = PageoutDaemon::new();
        for _ in 0..10 {
            d.page_replaced(PageClass::CachedIo);
        }
        assert!(d.should_evict_cache_entry());
        d.eviction_performed();
        assert!(!d.should_evict_cache_entry());
        assert_eq!(d.evictions(), 1);
        // Lifetime counters survive the reset.
        assert_eq!(d.total_cached_io(), 10);
    }

    #[test]
    fn equilibrium_sits_at_half_cached_io_traffic() {
        // The paper: the policy "tends to keep the file cache at a size
        // such that about half of all VM page replacements affect file
        // cache pages". Above that share, evictions fire repeatedly;
        // at or below it, they stop.
        let run = |cached_per_10: u32| {
            let mut d = PageoutDaemon::new();
            let mut evictions = 0;
            for i in 0..1000u32 {
                d.page_replaced(if i % 10 < cached_per_10 {
                    PageClass::CachedIo
                } else {
                    PageClass::Other
                });
                if d.should_evict_cache_entry() {
                    d.eviction_performed();
                    evictions += 1;
                }
            }
            evictions
        };
        // 80% cached-I/O traffic: cache is clearly too big; many signals.
        assert!(run(8) > 100, "heavy traffic must keep evicting");
        // 30% cached-I/O traffic: cache is small; only the initial
        // transient (the pattern's leading cached-I/O run) evicts.
        assert!(run(3) <= 3, "light traffic must not keep evicting");
    }

    #[test]
    fn arbiter_picks_safe_cheapest_action() {
        let mut d = PageoutDaemon::new();
        // Predicate not armed: always idle, no counters.
        assert_eq!(d.arbitrate(1000, 100, true), PageoutAction::Idle);
        for _ in 0..3 {
            d.page_replaced(PageClass::CachedIo);
        }
        // Armed, dirty below threshold, clean victim exists: evict free.
        assert_eq!(d.arbitrate(50, 100, true), PageoutAction::EvictClean);
        // Armed, dirty over threshold: write-back wins even with a clean
        // victim available.
        assert_eq!(d.arbitrate(100, 100, true), PageoutAction::WriteBack);
        // Armed, all entries dirty: write-back is the only safe relief.
        assert_eq!(d.arbitrate(10, 100, false), PageoutAction::WriteBack);
        // Armed, nothing dirty and nothing clean (empty cache): idle.
        assert_eq!(d.arbitrate(0, 100, false), PageoutAction::Idle);
        assert_eq!((d.dirty_writebacks(), d.clean_evictions()), (2, 1));
        // The decisions change the digest.
        let mut h1 = iolite_buf::Fnv64::new();
        d.digest(&mut h1);
        d.arbitrate(0, 100, true);
        let mut h2 = iolite_buf::Fnv64::new();
        d.digest(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn backing_store_multi_write() {
        let mut d = PageoutDaemon::new();
        // One page caching data for two files plus paging space: three
        // stores.
        d.backing_store_write(3, 4096);
        assert_eq!(d.backing_writes(), 3);
        assert_eq!(d.backing_bytes(), 3 * 4096);
    }
}

#![warn(missing_docs)]
//! Simulated virtual-memory substrate for IO-Lite (paper §3.3, §3.7,
//! §4.3, §4.5).
//!
//! The paper's prototype reuses the BSD VM system: the IO-Lite window is
//! a VM object mapped into every protection domain, access control works
//! at 64KB-chunk granularity, the pageout daemon triggers file-cache
//! eviction, and `mmap` provides contiguous in-place views with lazy
//! copying. This crate models those mechanisms as real data structures:
//!
//! * [`IoLiteWindow`] — per-domain chunk mapping tables with
//!   read/read-write permissions; reports how many *new* page mappings a
//!   transfer required (the §3.2 cost driver: recycled buffers need
//!   none).
//! * [`PhysMemory`] — a named-account physical memory budget for the
//!   128MB testbed; the file cache, socket buffers, and per-process
//!   overheads compete here, which is what the WAN experiment (§5.7)
//!   measures.
//! * [`PageoutDaemon`] — the §3.7 eviction trigger: evict a cache entry
//!   when more than half of recently replaced pages held cached I/O
//!   data.
//! * [`MmapView`] — the §3.8 "case 3" contiguous mapping with lazy
//!   per-page copies for unaligned data and copy-on-write against
//!   IO-Lite snapshots.

pub mod mmap;
pub mod pager;
pub mod physmem;
pub mod window;

pub use mmap::MmapView;
pub use pager::{PageClass, PageoutAction, PageoutDaemon};
pub use physmem::{MemAccount, PhysMemory};
pub use window::{AccessDenied, IoLiteWindow, MapStats, Perm};

/// Pages per 64KB chunk at the 4KB page size.
pub const PAGES_PER_CHUNK: u64 = (iolite_buf::DEFAULT_CHUNK_SIZE / iolite_buf::PAGE_SIZE) as u64;

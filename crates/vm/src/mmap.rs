//! Contiguous memory-mapped views of I/O objects (§3.8 "case 3").
//!
//! IO-Lite keeps the `mmap` interface for applications whose access
//! patterns demand contiguous, in-place-modifiable storage. Two copies
//! may then occur in the kernel, both lazy and per-page:
//!
//! 1. If the object is not contiguous/aligned (e.g. network-sourced file
//!    data), a page is copied when first touched.
//! 2. A store to a mapped page that is also referenced through an
//!    immutable IO-Lite buffer copies the page first (copy-on-write), to
//!    preserve `IOL_read` snapshot semantics.
//!
//! [`MmapView`] implements exactly that, counting both kinds of copies
//! so the cost model can charge them.

use iolite_buf::{Aggregate, Slice, PAGE_SIZE};

/// Copy-activity counters for one mapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmapStats {
    /// Pages copied because the source was fragmented or unaligned.
    pub alignment_copies: u64,
    /// Pages copied on first store (snapshot preservation).
    pub cow_faults: u64,
}

enum Backing {
    /// The source is one contiguous, page-aligned buffer: reads are
    /// zero-copy until the first store.
    Direct(Slice),
    /// Private per-page storage (after alignment copies or COW).
    Private,
}

/// A contiguous view of an aggregate with lazy copying and COW.
///
/// # Examples
///
/// ```
/// use iolite_buf::{Acl, Aggregate, BufferPool, PoolId};
/// use iolite_vm::MmapView;
///
/// let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
/// let agg = Aggregate::from_bytes(&pool, b"mapped data");
/// let mut view = MmapView::new(agg);
/// assert_eq!(view.read_all(), b"mapped data");
/// // Contiguous source: no alignment copies were needed.
/// assert_eq!(view.stats().alignment_copies, 0);
/// ```
pub struct MmapView {
    source: Aggregate,
    backing: Backing,
    /// Private contiguous storage; allocated eagerly, *filled* lazily.
    data: Vec<u8>,
    /// Which pages of `data` hold valid private copies.
    valid: Vec<bool>,
    stats: MmapStats,
}

impl MmapView {
    /// Maps an aggregate.
    pub fn new(source: Aggregate) -> Self {
        let len = source.len() as usize;
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let backing = match source.num_slices() {
            1 if source.slice_at(0).offset_in_buffer().is_multiple_of(PAGE_SIZE) => {
                Backing::Direct(source.slice_at(0).clone())
            }
            _ => Backing::Private,
        };
        MmapView {
            source,
            backing,
            data: vec![0; len],
            valid: vec![false; pages],
            stats: MmapStats::default(),
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy counters accumulated so far.
    pub fn stats(&self) -> MmapStats {
        self.stats
    }

    fn page_range(&self, off: usize, len: usize) -> std::ops::Range<usize> {
        if self.data.is_empty() || len == 0 {
            return 0..0;
        }
        let first = off / PAGE_SIZE;
        let last = (off + len - 1) / PAGE_SIZE;
        first..last + 1
    }

    /// Ensures the pages covering `[off, off+len)` have private copies,
    /// charging alignment copies (first touch of a fragmented source).
    fn populate(&mut self, off: usize, len: usize) {
        for p in self.page_range(off, len) {
            if !self.valid[p] {
                let start = p * PAGE_SIZE;
                let end = (start + PAGE_SIZE).min(self.data.len());
                self.source
                    .copy_to(start as u64, &mut self.data[start..end]);
                self.valid[p] = true;
                self.stats.alignment_copies += 1;
            }
        }
    }

    /// Reads `dst.len()` bytes starting at `off`.
    ///
    /// Direct (contiguous, aligned) mappings read straight from the
    /// immutable buffer; fragmented sources incur lazy per-page copies on
    /// first touch, exactly as §3.8 describes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the mapping.
    pub fn read(&mut self, off: usize, dst: &mut [u8]) {
        assert!(
            off + dst.len() <= self.data.len(),
            "read past end of mapping"
        );
        match &self.backing {
            Backing::Direct(s) => {
                // Serve whole page runs: private pages where COW already
                // happened, the immutable buffer elsewhere.
                let bytes = s.as_bytes();
                let mut i = 0;
                while i < dst.len() {
                    let idx = off + i;
                    let page = idx / PAGE_SIZE;
                    let run_end = ((page + 1) * PAGE_SIZE).min(off + dst.len());
                    let run = run_end - idx;
                    let src = if self.valid[page] { &self.data } else { bytes };
                    dst[i..i + run].copy_from_slice(&src[idx..idx + run]);
                    i += run;
                }
            }
            Backing::Private => {
                self.populate(off, dst.len());
                dst.copy_from_slice(&self.data[off..off + dst.len()]);
            }
        }
    }

    /// Reads the whole mapping into a fresh vector.
    pub fn read_all(&mut self) -> Vec<u8> {
        let mut out = vec![0; self.data.len()];
        self.read(0, &mut out);
        out
    }

    /// Stores `src` at `off`, copying affected pages first when they are
    /// still shared with an immutable IO-Lite buffer (COW).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the mapping.
    pub fn write(&mut self, off: usize, src: &[u8]) {
        assert!(
            off + src.len() <= self.data.len(),
            "write past end of mapping"
        );
        if src.is_empty() {
            return;
        }
        match &self.backing {
            Backing::Direct(s) => {
                // COW: pull each affected page out of the shared buffer
                // into private storage before modifying it.
                let bytes = s.as_bytes().to_vec();
                for p in self.page_range(off, src.len()) {
                    if !self.valid[p] {
                        let start = p * PAGE_SIZE;
                        let end = (start + PAGE_SIZE).min(self.data.len());
                        self.data[start..end].copy_from_slice(&bytes[start..end]);
                        self.valid[p] = true;
                        self.stats.cow_faults += 1;
                    }
                }
            }
            Backing::Private => {
                self.populate(off, src.len());
            }
        }
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// The mapping's current value as an aggregate-independent vector
    /// (used when writing a modified mapping back to a file).
    pub fn snapshot(&mut self) -> Vec<u8> {
        self.read_all()
    }

    /// The source aggregate this view maps.
    pub fn source(&self) -> &Aggregate {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_buf::{Acl, BufferPool, PoolId};

    fn big_pool() -> BufferPool {
        BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024)
    }

    fn tiny_pool() -> BufferPool {
        // Forces fragmentation: 100-byte chunks.
        BufferPool::new(PoolId(2), Acl::kernel_only(), 100)
    }

    #[test]
    fn contiguous_source_reads_without_copies() {
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        let agg = Aggregate::from_bytes_aligned(&big_pool(), &data, PAGE_SIZE);
        let mut v = MmapView::new(agg);
        assert_eq!(v.read_all(), data);
        assert_eq!(v.stats().alignment_copies, 0);
        assert_eq!(v.stats().cow_faults, 0);
    }

    #[test]
    fn fragmented_source_pays_lazy_page_copies() {
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        let agg = Aggregate::from_bytes(&tiny_pool(), &data);
        assert!(agg.num_slices() > 1);
        let mut v = MmapView::new(agg);
        // Touch one byte on page 0: only that page is copied.
        let mut b = [0u8; 1];
        v.read(10, &mut b);
        assert_eq!(b[0], data[10]);
        assert_eq!(v.stats().alignment_copies, 1);
        // Full read copies the remaining pages (9000 bytes = 3 pages).
        assert_eq!(v.read_all(), data);
        assert_eq!(v.stats().alignment_copies, 3);
    }

    #[test]
    fn store_to_shared_page_triggers_cow() {
        let data = vec![7u8; 2 * PAGE_SIZE];
        let agg = Aggregate::from_bytes_aligned(&big_pool(), &data, PAGE_SIZE);
        let source_slice = agg.slice_at(0).clone();
        let mut v = MmapView::new(agg);
        v.write(0, &[1, 2, 3]);
        assert_eq!(v.stats().cow_faults, 1);
        // The mapping sees the store...
        let mut out = [0u8; 4];
        v.read(0, &mut out);
        assert_eq!(out, [1, 2, 3, 7]);
        // ...but the immutable buffer does not (snapshot semantics).
        assert_eq!(source_slice.as_bytes()[0], 7);
        // Page 1 was never stored to: still shared, no extra fault.
        let mut far = [0u8; 1];
        v.read(PAGE_SIZE + 5, &mut far);
        assert_eq!(far[0], 7);
        assert_eq!(v.stats().cow_faults, 1);
    }

    #[test]
    fn writes_to_fragmented_source_compose_with_population() {
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let agg = Aggregate::from_bytes(&tiny_pool(), &data);
        let mut v = MmapView::new(agg);
        v.write(150, b"XYZ");
        let all = v.read_all();
        assert_eq!(&all[..150], &data[..150]);
        assert_eq!(&all[150..153], b"XYZ");
        assert_eq!(&all[153..], &data[153..]);
    }

    #[test]
    fn empty_mapping_is_harmless() {
        let v = MmapView::new(Aggregate::empty());
        assert!(v.is_empty());
        let mut v = v;
        assert_eq!(v.read_all(), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_range_read_panics() {
        let agg = Aggregate::from_bytes(&big_pool(), b"abc");
        let mut v = MmapView::new(agg);
        let mut b = [0u8; 4];
        v.read(0, &mut b);
    }
}

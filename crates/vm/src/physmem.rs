//! Physical-memory accounting for the simulated 128MB testbed.
//!
//! "Multiple buffering of data wastes memory, reducing the space
//! available for the file system cache. A reduced cache size causes
//! higher cache miss rates" (§1) — this module is where that effect
//! lives. Fixed accounts (kernel, server processes) and variable
//! accounts (socket send buffers, per-connection process overhead) are
//! reserved here; whatever remains is the file cache's budget, queried
//! each time the cache considers growing.

use std::collections::BTreeMap;
use std::fmt;

/// A named memory account (who is holding physical memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemAccount {
    /// Kernel text/data, mbuf headers, metadata buffer cache.
    Kernel,
    /// Server executable, heap, per-process fixed state.
    Server,
    /// TCP socket send buffers holding *copies* (conventional path).
    SocketCopies,
    /// Per-connection process overhead (Apache's process-per-connection).
    ProcessOverhead,
    /// The unified/file cache (informational; the cache sizes itself to
    /// the remainder).
    FileCache,
    /// Anything else an experiment wants to pin.
    Other,
}

/// Tracks reservations against a fixed physical-memory budget.
///
/// # Examples
///
/// ```
/// use iolite_vm::{MemAccount, PhysMemory};
///
/// let mut m = PhysMemory::new(128 << 20);
/// m.reserve(MemAccount::Kernel, 8 << 20);
/// assert_eq!(m.available(), 120 << 20);
/// ```
#[derive(Clone)]
pub struct PhysMemory {
    total: u64,
    accounts: BTreeMap<MemAccount, u64>,
}

impl PhysMemory {
    /// Creates an accountant for `total` bytes of physical memory.
    pub fn new(total: u64) -> Self {
        PhysMemory {
            total,
            accounts: BTreeMap::new(),
        }
    }

    /// The machine's total physical memory.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `bytes` to an account. Reservations may oversubscribe the
    /// machine; [`PhysMemory::available`] then reports zero and the cache
    /// shrinks to its floor (the paging behaviour of §3.7 under
    /// pressure).
    pub fn reserve(&mut self, account: MemAccount, bytes: u64) {
        *self.accounts.entry(account).or_insert(0) += bytes;
    }

    /// Removes up to `bytes` from an account.
    pub fn release(&mut self, account: MemAccount, bytes: u64) {
        if let Some(v) = self.accounts.get_mut(&account) {
            *v = v.saturating_sub(bytes);
        }
    }

    /// Sets an account to an absolute value.
    pub fn set(&mut self, account: MemAccount, bytes: u64) {
        self.accounts.insert(account, bytes);
    }

    /// Current holding of one account.
    pub fn held(&self, account: MemAccount) -> u64 {
        self.accounts.get(&account).copied().unwrap_or(0)
    }

    /// Total reserved across all accounts.
    pub fn used(&self) -> u64 {
        self.accounts.values().sum()
    }

    /// Bytes not reserved by any account.
    pub fn available(&self) -> u64 {
        self.total.saturating_sub(self.used())
    }

    /// Bytes available to the file cache: the machine total minus every
    /// *other* account's holding. When other accounts oversubscribe the
    /// machine (socket copies under WAN load, §5.7), this reaches zero
    /// and the cache must give everything back.
    pub fn cache_budget(&self) -> u64 {
        let others = self.used() - self.held(MemAccount::FileCache);
        self.total.saturating_sub(others)
    }

    /// Folds the accounting state into a stable digest.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u64(self.total);
        h.write_u64(self.accounts.len() as u64);
        for (account, bytes) in &self.accounts {
            h.write_u32(*account as u32);
            h.write_u64(*bytes);
        }
    }
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PhysMemory(total={}MB, used={}MB, free={}MB)",
            self.total >> 20,
            self.used() >> 20,
            self.available() >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut m = PhysMemory::new(1000);
        m.reserve(MemAccount::Kernel, 300);
        m.reserve(MemAccount::SocketCopies, 200);
        assert_eq!(m.used(), 500);
        assert_eq!(m.available(), 500);
        m.release(MemAccount::SocketCopies, 50);
        assert_eq!(m.held(MemAccount::SocketCopies), 150);
        assert_eq!(m.available(), 550);
    }

    #[test]
    fn release_saturates() {
        let mut m = PhysMemory::new(1000);
        m.reserve(MemAccount::Server, 100);
        m.release(MemAccount::Server, 500);
        assert_eq!(m.held(MemAccount::Server), 0);
        m.release(MemAccount::Other, 10);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn oversubscription_reports_zero_available() {
        let mut m = PhysMemory::new(100);
        m.reserve(MemAccount::SocketCopies, 300);
        assert_eq!(m.available(), 0);
        assert_eq!(m.used(), 300);
    }

    #[test]
    fn cache_budget_includes_own_holding() {
        let mut m = PhysMemory::new(1000);
        m.reserve(MemAccount::Kernel, 200);
        m.set(MemAccount::FileCache, 300);
        // 500 free + its own 300.
        assert_eq!(m.cache_budget(), 800);
        m.reserve(MemAccount::SocketCopies, 500);
        // Now free = 0, budget = its own holding.
        assert_eq!(m.cache_budget(), 300);
    }
}

//! Deterministic replay: a journaled 256-connection event-loop run is
//! reproduced bit-for-bit by folding the recorded commands through the
//! pure core (`iolite_core::replay`) from the same initial state.
//!
//! This is the PR 6 acceptance test for the functional-core split: the
//! imperative shell's only state mutations go through `Command`s, so
//! the journal plus the initial `KernelState` *is* the run.

use iolite_core::{replay, CostModel, Kernel, KernelState};
use iolite_fs::Policy;
use iolite_http::{EventLoopConfig, EventLoopServer};

/// A static corpus small enough to never evict (the replay contract
/// requires the journaled run and the replayed run to see identical
/// cache residency, which zero evictions makes trivially true).
const CORPUS: &[(&str, u64)] = &[
    ("/index.html", 4_096),
    ("/logo.gif", 1_337),
    ("/styles.css", 2_048),
    ("/app.js", 8_192),
    ("/docs/a.html", 3_000),
    ("/docs/b.html", 5_500),
    ("/docs/c.html", 700),
    ("/data/blob.bin", 16_384),
];

#[test]
fn event_loop_run_replays_to_identical_state_and_metrics() {
    let cost = CostModel::pentium_ii_333();
    let mut kernel = Kernel::with_policy(cost, Policy::Gds);
    // Journal from the very first command: the replay's initial state
    // is `KernelState::new` with the same cost model and policy.
    kernel.start_journal();
    let pid = kernel.spawn("server");
    for (name, bytes) in CORPUS {
        kernel.create_synthetic_file(name, *bytes, 7);
    }

    // 256 closed-loop clients, each walking the corpus from a different
    // phase so requests interleave across the whole file set.
    let scripts: Vec<Vec<String>> = (0..256)
        .map(|c| {
            (0..4)
                .map(|r| CORPUS[(c + r * 3) % CORPUS.len()].0.to_string())
                .collect()
        })
        .collect();
    let cfg = EventLoopConfig {
        drain_per_tick: 8 * 1024,
        ..EventLoopConfig::default()
    };
    let (report, mut kernel) = EventLoopServer::new(kernel, pid, scripts, None, cfg).run();
    assert_eq!(report.stats.completed, 256 * 4);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.blocked_io, 0, "readiness-driven, no spin");
    assert_eq!(
        kernel.cache.stats().evictions,
        0,
        "corpus must fit the cache for the zero-eviction replay premise"
    );

    let journal = kernel.take_journal().expect("journal was recording");
    assert!(
        journal.len() > 256 * 4,
        "a 1024-request run journals more than one command per request"
    );
    let live_hash = kernel.state_hash();
    let live_metrics = kernel.metrics.clone();
    assert!(live_metrics.syscalls > 0, "the run did real work");

    // Fold the journal through the pure core from the initial state.
    let (replayed, metrics) = replay(KernelState::new(cost, Policy::Gds), &journal);
    assert_eq!(
        replayed.state_hash(),
        live_hash,
        "replayed state digest must match the live run"
    );
    assert_eq!(metrics, live_metrics, "replayed metrics must match");
}

#[test]
fn journal_is_off_by_default_and_restartable() {
    let cost = CostModel::pentium_ii_333();
    let mut kernel = Kernel::new(cost);
    kernel.spawn("a");
    assert!(kernel.journal().is_none(), "no recording unless asked");
    assert!(kernel.take_journal().is_none());

    // A journal started mid-life replays against a snapshot taken at
    // the same point, not against the initial state.
    let baseline = kernel.snapshot();
    kernel.start_journal();
    let pid = kernel.spawn("b");
    let f = kernel.create_file("/x", b"hello");
    let fd = kernel.open_file(pid, f);
    let body = kernel.iol_read_fd(pid, fd, 5).expect("read").0;
    assert_eq!(body.to_vec(), b"hello");
    let journal = kernel.take_journal().expect("recording");
    let (replayed, _) = replay(baseline, &journal);
    assert_eq!(replayed.state_hash(), kernel.state_hash());
}

//! The three server models (§5).
//!
//! One request = one call to [`serve_static`] (or
//! [`crate::cgi::CgiProcess::serve`]): the function drives the *real*
//! kernel data structures (unified cache, window, checksum cache) and
//! returns the request's cost decomposition for the event driver to
//! schedule. Servers differ only in the mechanisms the paper names —
//! the cost model itself is shared.
//!
//! All I/O is descriptor-based: the document arrives as a file [`Fd`]
//! (the server's open-file set) and the client connection as a socket
//! [`Fd`] in the kernel's registry — `IOL_write` on the socket *is* the
//! transmission (§3.4), zero-copy or copying per the server's mode.

use iolite_buf::Aggregate;
use iolite_core::{Charge, CostCategory, Fd, Kernel, Pid};
use iolite_fs::CacheKey;
use iolite_net::BufferMode;
use iolite_sim::SimTime;

use crate::message::response_header;

/// Which server is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Event-driven, mmap + copying writev (the paper's aggressive
    /// baseline).
    Flash,
    /// Flash ported to the IO-Lite API (zero-copy, checksum cache, GDS).
    FlashLite,
    /// Process-per-connection Apache 1.3.1 model.
    Apache,
}

impl ServerKind {
    /// The TCP buffering mode this server's sends use.
    pub fn buffer_mode(self) -> BufferMode {
        match self {
            ServerKind::FlashLite => BufferMode::ZeroCopy,
            _ => BufferMode::Copy,
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Flash => "Flash",
            ServerKind::FlashLite => "Flash-Lite",
            ServerKind::Apache => "Apache",
        }
    }
}

/// The cost decomposition of one served request.
#[derive(Debug, Default)]
pub struct RequestCosts {
    /// CPU charges by category, in execution order.
    pub parts: Vec<(CostCategory, Charge)>,
    /// Device time for a cache miss (schedule on the disk resource).
    pub disk_time: SimTime,
    /// Whether the file cache hit.
    pub cache_hit: bool,
    /// Response bytes at the application layer (header + body).
    pub response_bytes: u64,
    /// Bytes on the wire (application bytes + per-segment TCP/IP
    /// headers).
    pub wire_bytes: u64,
    /// Owned socket-buffer memory pinned while the response drains
    /// (copies for conventional servers; mbuf headers for IO-Lite).
    pub owned_sock_bytes: u64,
    /// Cache entry to pin until transmission completes (Flash-Lite:
    /// the network references the entry, §3.7).
    pub pin_key: Option<CacheKey>,
}

impl RequestCosts {
    /// Total CPU time across parts.
    pub fn cpu_total(&self) -> SimTime {
        self.parts
            .iter()
            .fold(SimTime::ZERO, |acc, (_, c)| acc + c.time)
    }

    fn push(&mut self, cat: CostCategory, c: Charge) {
        if c.time > SimTime::ZERO {
            self.parts.push((cat, c));
        }
    }
}

/// Serves one static-file request on the socket descriptor `sock`,
/// returning its costs.
///
/// `server_pid` is the server process (the domain file data transfers
/// into, and the table both descriptors live in); `file_fd` is the
/// document's descriptor in the server's open-file set. The caller
/// charges TCP setup/teardown separately, because connection lifetime
/// is the driver's business (persistent vs not).
pub fn serve_static(
    kernel: &mut Kernel,
    kind: ServerKind,
    sock: Fd,
    server_pid: Pid,
    file_fd: Fd,
) -> RequestCosts {
    let mut rc = RequestCosts::default();
    // Request parse + event-loop bookkeeping (all servers).
    rc.push(
        CostCategory::Request,
        Charge::us(kernel.cost.http_parse_us + kernel.cost.server_fixed_us),
    );
    match kind {
        ServerKind::FlashLite => serve_iolite(kernel, sock, server_pid, file_fd, &mut rc),
        ServerKind::Flash => serve_conventional(kernel, sock, server_pid, file_fd, &mut rc, false),
        ServerKind::Apache => serve_conventional(kernel, sock, server_pid, file_fd, &mut rc, true),
    }
    rc
}

/// The Flash-Lite path: `IOL_read`, aggregate concatenation, `IOL_write`
/// on the socket descriptor (§3.10's walk-through).
fn serve_iolite(kernel: &mut Kernel, sock: Fd, server_pid: Pid, file_fd: Fd, rc: &mut RequestCosts) {
    // The IOL API's own per-request bookkeeping (aggregate and pool
    // management; see cost-model docs).
    rc.push(
        CostCategory::Request,
        Charge::us(kernel.cost.iol_request_extra_us),
    );
    let file = kernel
        .fd_file(server_pid, file_fd)
        .expect("document descriptor");
    let len = kernel
        .fd_len(server_pid, file_fd)
        .expect("document descriptor");
    // IOL_read: snapshot aggregate of the whole document (positional —
    // the serve path never moves the shared offset).
    let (body, outcome) = kernel
        .iol_pread(server_pid, file_fd, 0, len)
        .expect("document read");
    rc.cache_hit = outcome.cache_hit;
    rc.disk_time = outcome.disk_time;
    rc.push(CostCategory::Syscall, Charge::us(kernel.cost.syscall_us));
    if outcome.mapped_pages > 0 {
        rc.push(
            CostCategory::PageMap,
            kernel.cost.page_maps(outcome.mapped_pages),
        );
    }
    // Response header: allocated in IO-Lite space (the paper: "allocating
    // memory for response headers ... is handled with memory allocation
    // from IO-Lite space"), then concatenated with the body by
    // reference.
    let header = response_header(body.len(), true);
    let mut response = Aggregate::from_bytes(kernel.process(server_pid).pool(), &header);
    response.append(&body);
    rc.response_bytes = response.len();
    // IOL_write on the socket descriptor: zero-copy send with checksum
    // caching; the SendOutcome rides the IoOutcome.
    let (_, wout) = kernel
        .iol_write_fd(server_pid, sock, &response)
        .expect("socket write");
    let send = wout.net.expect("socket writes carry SendOutcome");
    rc.push(CostCategory::Syscall, Charge::us(kernel.cost.syscall_us));
    rc.push(
        CostCategory::Checksum,
        kernel.cost.wire_checksum(send.csum_bytes_computed),
    );
    rc.push(CostCategory::Packet, kernel.cost.packets(send.segments));
    rc.wire_bytes = rc.response_bytes + send.header_bytes;
    rc.owned_sock_bytes = send.owned_occupancy;
    // The network now references the cached entry: pin until drained.
    // The pin is keyed by CacheKey and registers even if the entry was
    // evicted between the IOL_read above and here (or is later replaced
    // by a write), so the driver's deferred unpin at transmission
    // completion is always balanced against exactly this reference.
    rc.pin_key = Some(CacheKey::whole(file));
    kernel.cache_pin(CacheKey::whole(file));
}

/// The Flash/Apache path: mmap'd file cache, copying send.
fn serve_conventional(
    kernel: &mut Kernel,
    sock: Fd,
    server_pid: Pid,
    file_fd: Fd,
    rc: &mut RequestCosts,
    apache: bool,
) {
    let file = kernel
        .fd_file(server_pid, file_fd)
        .expect("document descriptor");
    let len = kernel
        .fd_len(server_pid, file_fd)
        .expect("document descriptor");
    // mmap the document. Flash keeps a bounded mapped-file cache; a
    // miss (tail files) costs an mmap/munmap cycle. Apache maps and
    // unmaps per request (its cache capacity is zero here).
    let mapped = if apache {
        false
    } else {
        kernel.mapped_file_touch(file)
    };
    if !mapped {
        rc.push(CostCategory::PageMap, Charge::us(kernel.cost.mmap_cycle_us));
    }
    // mmap-backed read through the page cache: the file cache is
    // consulted for real; mapping cost amortizes via the mapped-file
    // cache (the window remembers per-domain chunk mappings).
    let (body, outcome) = kernel
        .iol_pread(server_pid, file_fd, 0, len)
        .expect("document read");
    rc.cache_hit = outcome.cache_hit;
    rc.disk_time = outcome.disk_time;
    if outcome.mapped_pages > 0 {
        rc.push(
            CostCategory::PageMap,
            kernel.cost.page_maps(outcome.mapped_pages),
        );
    }
    let header = response_header(len, true);
    let response_len = header.len() as u64 + body.len();
    rc.response_bytes = response_len;
    // writev(header, body) on the socket descriptor: one syscall, then
    // the kernel copies payload into socket mbufs and checksums
    // everything, every time.
    rc.push(CostCategory::Syscall, Charge::us(kernel.cost.syscall_us));
    let (send, _) = kernel
        .socket_send_accounted(server_pid, sock, response_len)
        .expect("socket write");
    rc.push(
        CostCategory::Copy,
        kernel.cost.socket_copy(send.bytes_copied),
    );
    rc.push(
        CostCategory::Checksum,
        kernel.cost.wire_checksum(send.csum_bytes_computed),
    );
    rc.push(CostCategory::Packet, kernel.cost.packets(send.segments));
    rc.wire_bytes = response_len + send.header_bytes;
    rc.owned_sock_bytes = send.owned_occupancy;
    if apache {
        // The process-per-connection model: scheduling, inter-process
        // select, per-request process work (§5.1: Apache trails Flash
        // even on identical data paths), plus slower internal buffer
        // management per byte.
        rc.push(
            CostCategory::ProcessModel,
            Charge::us(
                kernel.cost.apache_request_extra_us
                    + response_len as f64 * kernel.cost.apache_extra_ns_per_byte / 1000.0,
            ),
        );
    }
    drop(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;
    use iolite_fs::Policy;
    use iolite_net::{DEFAULT_MSS, DEFAULT_TSS};

    fn setup(kind: ServerKind) -> (Kernel, Pid, Fd, Fd) {
        let policy = if kind == ServerKind::FlashLite {
            Policy::Gds
        } else {
            Policy::Lru
        };
        let mut k = Kernel::with_policy(CostModel::pentium_ii_333(), policy);
        let pid = k.spawn("server");
        let f = k.create_synthetic_file("/doc", 100_000, 9);
        let file_fd = k.open_file(pid, f);
        let sock = k.socket_create(pid, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);
        (k, pid, file_fd, sock)
    }

    #[test]
    fn flash_lite_hot_request_touches_no_data() {
        let (mut k, pid, f, sock) = setup(ServerKind::FlashLite);
        // Warm the caches.
        let first = serve_static(&mut k, ServerKind::FlashLite, sock, pid, f);
        assert!(!first.cache_hit);
        k.cache.unpin(&first.pin_key.unwrap());
        let warm = serve_static(&mut k, ServerKind::FlashLite, sock, pid, f);
        assert!(warm.cache_hit);
        // Only the fresh response header is checksummed; the body rides
        // the checksum cache. No copies at all.
        let csum: SimTime = warm
            .parts
            .iter()
            .filter(|(c, _)| *c == CostCategory::Checksum)
            .map(|(_, c)| c.time)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert!(
            csum < k.cost.checksum(1000).time,
            "body checksum must be cached: {csum}"
        );
        assert!(warm.parts.iter().all(|(c, _)| *c != CostCategory::Copy));
    }

    #[test]
    fn flash_hot_request_copies_and_checksums_everything() {
        let (mut k, pid, f, sock) = setup(ServerKind::Flash);
        serve_static(&mut k, ServerKind::Flash, sock, pid, f);
        let warm = serve_static(&mut k, ServerKind::Flash, sock, pid, f);
        assert!(warm.cache_hit);
        let copy_time: SimTime = warm
            .parts
            .iter()
            .filter(|(c, _)| *c == CostCategory::Copy)
            .map(|(_, c)| c.time)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert!(copy_time >= k.cost.socket_copy(100_000).time);
    }

    #[test]
    fn apache_pays_process_model_extra() {
        let (mut k, pid, f, sock) = setup(ServerKind::Apache);
        serve_static(&mut k, ServerKind::Apache, sock, pid, f);
        let warm = serve_static(&mut k, ServerKind::Apache, sock, pid, f);
        let (mut k2, pid2, f2, sock2) = setup(ServerKind::Flash);
        serve_static(&mut k2, ServerKind::Flash, sock2, pid2, f2);
        let flash_warm = serve_static(&mut k2, ServerKind::Flash, sock2, pid2, f2);
        assert!(warm.cpu_total() > flash_warm.cpu_total());
    }

    #[test]
    fn ordering_flashlite_fastest_on_hot_files() {
        let mut totals = Vec::new();
        for kind in [ServerKind::FlashLite, ServerKind::Flash, ServerKind::Apache] {
            let (mut k, pid, f, sock) = setup(kind);
            let first = serve_static(&mut k, kind, sock, pid, f);
            if let Some(key) = first.pin_key {
                k.cache.unpin(&key);
            }
            let warm = serve_static(&mut k, kind, sock, pid, f);
            totals.push((kind.label(), warm.cpu_total()));
        }
        assert!(totals[0].1 < totals[1].1, "{totals:?}");
        assert!(totals[1].1 < totals[2].1, "{totals:?}");
    }

    /// Regression for the driver pin lifecycle: two overlapping
    /// transmissions of one document with a snapshot write between
    /// them. The first response's deferred unpin (the driver's
    /// `Release::Unpin`) must not strip the second response's pin.
    #[test]
    fn overlapping_transmissions_survive_write_replacement() {
        let (mut k, pid, f, sock) = setup(ServerKind::FlashLite);
        let file = k.fd_file(pid, f).unwrap();
        let key = CacheKey::whole(file);
        // Response A goes out and holds its pin while draining.
        let rc_a = serve_static(&mut k, ServerKind::FlashLite, sock, pid, f);
        assert_eq!(rc_a.pin_key, Some(key));
        // A writer replaces the document mid-transmission (§3.5).
        let patch = Aggregate::from_bytes(k.process(pid).pool(), &[0x42; 64]);
        k.iol_pwrite(pid, f, 0, &patch).unwrap();
        // Response B starts on the new snapshot.
        let rc_b = serve_static(&mut k, ServerKind::FlashLite, sock, pid, f);
        assert_eq!(rc_b.pin_key, Some(key));
        assert_eq!(k.cache.pins(&key), 2);
        // A's transmission drains first: the driver releases its pin.
        k.cache.unpin(&rc_a.pin_key.unwrap());
        // B is still in flight: its entry must not be the next victim.
        assert_eq!(k.cache.pins(&key), 1);
        let other = k.create_synthetic_file("/other", 1_000, 3);
        let other_fd = k.open_file(pid, other);
        serve_static(&mut k, ServerKind::FlashLite, sock, pid, other_fd);
        k.cache.unpin(&CacheKey::whole(other));
        let (victim, _) = k.cache.evict_one().unwrap();
        assert_eq!(victim, CacheKey::whole(other), "in-flight doc survives");
        assert!(k.cache.contains(&key));
        // B drains: now the document is evictable again.
        k.cache.unpin(&rc_b.pin_key.unwrap());
        assert_eq!(k.cache.pins(&key), 0);
    }

    #[test]
    fn miss_costs_disk_time() {
        let (mut k, pid, f, sock) = setup(ServerKind::Flash);
        let cold = serve_static(&mut k, ServerKind::Flash, sock, pid, f);
        assert!(!cold.cache_hit);
        assert!(cold.disk_time > SimTime::from_ms(8.0));
    }

    #[test]
    fn memory_occupancy_differs_by_mode() {
        let (mut k, pid, f, sock) = setup(ServerKind::Flash);
        let rc = serve_static(&mut k, ServerKind::Flash, sock, pid, f);
        assert_eq!(rc.owned_sock_bytes, 64 * 1024, "Tss-capped copies");
        let (mut k2, pid2, f2, sock2) = setup(ServerKind::FlashLite);
        let rc2 = serve_static(&mut k2, ServerKind::FlashLite, sock2, pid2, f2);
        assert!(rc2.owned_sock_bytes < 16 * 1024, "references, not copies");
        assert!(rc2.pin_key.is_some());
        assert!(k2.cache.pins(&rc2.pin_key.unwrap()) > 0);
    }
}

#![warn(missing_docs)]
//! The Web-server harness: HTTP engine, the three server models of §5
//! (Flash, Flash-Lite, Apache), FastCGI support, and the closed-loop
//! experiment driver behind every figure.
//!
//! The three servers share one HTTP engine and differ exactly where the
//! paper says they differ:
//!
//! | | data path | cache policy | concurrency |
//! |---|---|---|---|
//! | Flash | mmap + copying `writev` | LRU page cache | event-driven |
//! | Flash-Lite | `IOL_read`/`IOL_write`, checksum cache | GDS (custom) | event-driven |
//! | Apache | mmap + copying `write` | LRU page cache | process-per-connection |
//!
//! The driver ([`driver::Experiment`]) runs closed-loop clients against
//! a simulated testbed (CPU, disk, five links) and reports aggregate
//! bandwidth exactly the way the paper's figures do.
//!
//! The event-driven architecture itself lives in [`event_loop`]: a
//! readiness-driven state machine (parse → open → stream-in-chunks →
//! drain) multiplexing thousands of nonblocking descriptors through
//! `Kernel::iol_poll`, byte- and checksum-cache-identical to the
//! sequential [`server::serve_static`] path (property-checked in
//! `tests/readiness.rs`).

pub mod cgi;
pub mod driver;
pub mod event_loop;
pub mod message;
pub mod server;
pub mod sharded;
pub mod workloads;

pub use cgi::CgiProcess;
pub use driver::{Experiment, ExperimentConfig, ExperimentResult};
pub use event_loop::{
    parse_put_entry, synthetic_put_body, CompletedRequest, EventLoopConfig, EventLoopServer,
    LoopReport, LoopStats, ShardContext, CGI_PREFIX,
};
pub use sharded::{run_sharded, ShardOutcome, ShardedConfig, ShardedReport};
pub use message::{
    created, parse_request, parse_request_agg, parse_request_head, parse_request_head_agg,
    put_request_bytes, request_bytes, response_header, Method, Request,
};
pub use server::{RequestCosts, ServerKind};
pub use workloads::WorkloadKind;

//! The readiness-driven server: one process, N in-flight connections,
//! zero busy-waiting (§5/§6's event-driven architecture made real).
//!
//! [`crate::server::serve_static`] serves a request *whole* in one
//! synchronous call — fine for cost decomposition, but it cannot
//! interleave connections, which is exactly the regime where the
//! paper's servers live: Flash and Flash-Lite multiplex thousands of
//! nonblocking descriptors behind `select`. [`EventLoopServer`] is that
//! shape on the IO-Lite kernel:
//!
//! * every client connection is a **nonblocking** socket descriptor
//!   whose send buffer is bounded at Tss;
//! * each loop tick issues **one `iol_poll`** over the interest set and
//!   acts only on descriptors the kernel reported ready — an I/O call
//!   returning [`IolError::WouldBlock`] is counted as a bug
//!   ([`LoopStats::blocked_io`], asserted zero in the test suite);
//! * a request moves through a per-connection state machine —
//!   **parse → open → stream-in-chunks → drain** — with the response
//!   streamed window-by-window as the simulated wire acknowledges
//!   earlier bytes ([`iolite_core::Kernel::socket_drain`]);
//! * CGI responses flow through the ACL-carrying kernel pipe under the
//!   same readiness discipline (the CGI process writes only when its
//!   end is writable, the server reads only when its end is readable),
//!   and a peer hanging up mid-transfer fails that one request instead
//!   of panicking the server.
//!
//! Socket write windows are aligned to the response aggregate's slice
//! boundaries. A slice is never split mid-send, so the checksum cache
//! sees exactly the ⟨buffer, generation, range⟩ keys a whole-response
//! `IOL_write` would produce — the event loop is byte- *and*
//! checksum-cache-identical to sequential [`serve_static`], which the
//! `readiness` property suite pins down.
//!
//! [`serve_static`]: crate::server::serve_static

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{SyncSender, TryRecvError};
use std::time::Duration;

use iolite_buf::Aggregate;
use iolite_core::{
    short_ok, Charge, CostCategory, Fd, Interest, IolError, Kernel, Pid, PollFd, Readiness,
    ShardMailbox, ShardMsg,
};
use iolite_fs::{home_shard, CacheKey, CacheOwnership, FileId};
use iolite_net::BufferMode;
use iolite_sim::SimTime;

use crate::cgi::CgiProcess;
use crate::message::{
    created, not_found, parse_request_head_agg, response_header, Method, Request,
};

/// Tuning knobs for one event-loop run.
#[derive(Debug, Clone, Copy)]
pub struct EventLoopConfig {
    /// Send-buffer bytes the simulated wire acknowledges per connection
    /// per tick. Smaller values stretch responses over more ticks and
    /// deepen the multiplexing (more connections simultaneously
    /// mid-stream).
    pub drain_per_tick: u64,
    /// Record every completed response's exact bytes (equivalence
    /// tests; off for benchmarks).
    pub capture_responses: bool,
    /// Safety bound on ticks; exceeding it panics with diagnostics
    /// (a correctness bug would otherwise spin forever).
    pub max_ticks: u64,
    /// Most connections simultaneously mid-request (0 = unlimited).
    /// Idle connections with script left wait their turn, bounding
    /// in-flight response memory at very large connection counts
    /// (2^18+ in the sharded sweep).
    pub admission_limit: usize,
    /// Hand the wire to an external driver (the storm harness). When
    /// set, the loop neither synthesizes request bytes at injection
    /// (the driver delivers whatever the adversarial wire reassembles,
    /// via [`iolite_core::Kernel::socket_deliver`]) nor auto-acks
    /// `drain_per_tick` bytes per tick (the driver calls
    /// [`iolite_core::Kernel::socket_drain`] as simulated ACKs arrive).
    /// Injection still pops one script entry per request — the script
    /// length is the request count a connection serves — and drains
    /// still complete when the send buffer empties.
    pub external_wire: bool,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            drain_per_tick: 16 * 1024,
            capture_responses: false,
            max_ticks: 10_000_000,
            admission_limit: 0,
            external_wire: false,
        }
    }
}

/// Counters describing one run of the loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Event-loop iterations.
    pub ticks: u64,
    /// `iol_poll` calls issued.
    pub polls: u64,
    /// Total descriptors scanned across all polls.
    pub poll_entries: u64,
    /// Requests served to completion (response fully acknowledged).
    pub completed: u64,
    /// Requests failed by a peer hang-up (pipe EPIPE, socket reset).
    pub failed: u64,
    /// I/O calls that returned `WouldBlock`. A readiness-driven loop
    /// acts only on ready descriptors, so this must stay **zero** —
    /// any other value means the loop busy-spun.
    pub blocked_io: u64,
    /// Most connections simultaneously mid-request at any tick.
    pub max_inflight: usize,
    /// Application response bytes across completed requests.
    pub response_bytes: u64,
    /// Completed requests whose document came from the file cache.
    pub cache_hits: u64,
    /// Fetches sent over the cross-shard fabric (sharded runs only).
    /// Single-flight: concurrent requests for the same remote file
    /// share one fetch, so this counts fabric traffic, not requests.
    pub remote_reads: u64,
    /// Requests that waited on a remote fetch (their own or a
    /// coalesced one) instead of being served locally.
    pub remote_waits: u64,
    /// Remote fetches the home shard served from *its* cache.
    pub remote_hits: u64,
    /// Completed PUT uploads (also counted in `completed`).
    pub puts: u64,
    /// Body bytes ingested across completed PUTs.
    pub put_bytes: u64,
    /// Write-back flushes the loop issued between request events.
    pub writebacks: u64,
    /// PUT bodies routed to their file's home shard over the fabric
    /// (sharded runs only).
    pub remote_writes: u64,
    /// Simulated CPU consumed (polls, syscalls, checksums, packet
    /// work, page mappings — everything the outcomes billed).
    pub cpu: SimTime,
}

impl LoopStats {
    /// Completed requests per simulated CPU second — the throughput
    /// axis of the concurrency sweep in EXPERIMENTS.md.
    pub fn requests_per_cpu_sec(&self) -> f64 {
        self.completed as f64 / self.cpu.as_secs().max(1e-12)
    }
}

/// One completed request's record.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Connection index the request was served on.
    pub conn: usize,
    /// Requested path.
    pub path: String,
    /// Response bytes (header + body).
    pub bytes: u64,
    /// Whether the document came from the unified file cache.
    pub cache_hit: bool,
    /// The exact response bytes (only when
    /// [`EventLoopConfig::capture_responses`] is set).
    pub response: Option<Vec<u8>>,
}

/// The final report of a run.
#[derive(Debug)]
pub struct LoopReport {
    /// Counters for the run.
    pub stats: LoopStats,
    /// Completed requests in completion order.
    pub requests: Vec<CompletedRequest>,
}

/// Server-side poll results, tagged by connection index.
type ServerEvents = Vec<(usize, Readiness)>;

/// The active CGI transfer's poll results: (CGI write end readiness,
/// server read end readiness). `None` when no transfer is active.
type CgiEvents = Option<(Readiness, Readiness)>;

/// What a connection is doing right now.
enum ConnState {
    /// No request in flight; the script decides what happens next.
    Idle,
    /// Accumulating request bytes until the header terminator arrives.
    Parsing { buf: Aggregate },
    /// Accumulating a PUT body: `content_length` bytes must follow the
    /// header at `body_at`. The wire's slices accumulate by reference;
    /// completion splits the body out with pure slice arithmetic — the
    /// zero-copy ingest the write path is built around.
    BodyIngest {
        path: String,
        keep_alive: bool,
        body_at: u64,
        content_length: u64,
        buf: Aggregate,
    },
    /// Waiting for the file's home shard to acknowledge a
    /// `RemoteWrite` (sharded runs only).
    PutWait { path: String, keep_alive: bool },
    /// Waiting for the CGI pipe (one transfer at a time per process).
    CgiWait { path: String },
    /// This connection owns the CGI pipe: the CGI writes, we read.
    CgiStream {
        path: String,
        sent: u64,
        received: Aggregate,
    },
    /// Waiting for the file's home shard to answer a `RemoteRead`
    /// (sharded runs only; at most one outstanding read per conn).
    RemoteWait { path: String },
    /// Streaming the response to the socket, window by window.
    Sending(SendJob),
    /// All bytes written; waiting for the wire to acknowledge them.
    Draining(DrainJob),
    /// Script exhausted (or the connection died).
    Done,
}

/// A response mid-stream.
struct SendJob {
    path: String,
    response: Aggregate,
    /// Next response slice to send (windows are slice-aligned).
    next_slice: usize,
    pin: Option<CacheKey>,
    cache_hit: bool,
}

/// A response fully written, not yet fully acknowledged.
struct DrainJob {
    path: String,
    bytes: u64,
    pin: Option<CacheKey>,
    cache_hit: bool,
    captured: Option<Vec<u8>>,
}

/// One client connection.
struct Conn {
    sock: Fd,
    state: ConnState,
    /// Paths this client will request, in order (closed loop: the next
    /// one is issued as soon as the previous response completes).
    script: VecDeque<String>,
}

/// The readiness-driven server. See the module docs for the shape.
pub struct EventLoopServer {
    kernel: Kernel,
    pid: Pid,
    conns: Vec<Conn>,
    cgi: Option<CgiProcess>,
    /// Connection currently owning the CGI pipe, if any.
    cgi_owner: Option<usize>,
    /// Connections waiting their turn on the pipe.
    cgi_queue: VecDeque<usize>,
    cfg: EventLoopConfig,
    stats: LoopStats,
    requests: Vec<CompletedRequest>,
    /// Cross-shard serving context; `None` outside sharded runs (and
    /// for single-shard fleets, which never route remotely).
    shard: Option<ShardContext>,
    /// Single-flight remote fetches: connections waiting for each
    /// in-flight remote file, in arrival order. The first waiter's
    /// arrival sent the `RemoteRead`; the entry is consumed by the
    /// matching `RemoteData`.
    remote_pending: HashMap<FileId, Vec<usize>>,
}

/// One shard's view of the fleet, attached via
/// [`EventLoopServer::run_shard`].
pub struct ShardContext {
    /// This shard's fabric endpoint (inbox + senders to every shard).
    pub mailbox: ShardMailbox,
    /// Fleet size.
    pub shards: usize,
    /// What to do with bytes fetched from a home shard.
    pub ownership: CacheOwnership,
    /// Coordinator notification, sent once when this shard's own
    /// scripts are exhausted (it keeps answering remote reads after).
    pub done_tx: SyncSender<usize>,
}

/// Requests whose path starts with this prefix route to the CGI
/// process; everything else is a static file lookup.
pub const CGI_PREFIX: &str = "/cgi-bin/";

impl EventLoopServer {
    /// Builds a server multiplexing one nonblocking socket per script.
    /// `scripts[i]` is the request sequence client `i` issues
    /// closed-loop; files must already exist in the kernel (CGI paths
    /// — anything under [`CGI_PREFIX`] — need `cgi`).
    pub fn new(
        mut kernel: Kernel,
        pid: Pid,
        scripts: Vec<Vec<String>>,
        cgi: Option<CgiProcess>,
        cfg: EventLoopConfig,
    ) -> Self {
        let conns = scripts
            .into_iter()
            .map(|script| {
                let sock = kernel.socket_create(
                    pid,
                    BufferMode::ZeroCopy,
                    kernel.cost.mss,
                    kernel.cost.tss,
                );
                kernel
                    .set_nonblocking(pid, sock, true)
                    // lint:allow(panic) — constructor, before serving
                    // starts: the socket was created two lines up, so
                    // a failure here is harness miswiring, not input.
                    .expect("fresh socket");
                Conn {
                    sock,
                    state: ConnState::Idle,
                    script: script.into(),
                }
            })
            .collect();
        EventLoopServer {
            kernel,
            pid,
            conns,
            cgi,
            cgi_owner: None,
            cgi_queue: VecDeque::new(),
            cfg,
            stats: LoopStats::default(),
            // lint:allow(hot-path-alloc) — constructor, once per run.
            requests: Vec::new(),
            shard: None,
            remote_pending: HashMap::new(),
        }
    }

    /// The kernel (checksum-cache state, metrics) — primarily for the
    /// equivalence suite.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access (tests inject faults: peer closes,
    /// descriptor hang-ups).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// A connection's socket descriptor (tests drive peer behaviour).
    pub fn sock(&self, conn: usize) -> Fd {
        self.conns[conn].sock
    }

    /// The server's pid (an external wire driver needs it for
    /// `socket_deliver`/`socket_drain` calls on the server's kernel).
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Number of connections the server multiplexes.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Whether connection `i` has retired (script exhausted or failed).
    pub fn conn_done(&self, i: usize) -> bool {
        matches!(self.conns[i].state, ConnState::Done)
    }

    /// Counters so far (an external driver reads progress mid-run).
    pub fn stats(&self) -> &LoopStats {
        &self.stats
    }

    /// Requests completed so far, in completion order.
    pub fn completed_requests(&self) -> &[CompletedRequest] {
        &self.requests
    }

    /// Whether every connection has retired — the external driver's
    /// termination test (it owns the loop that [`run`](Self::run) would
    /// otherwise be).
    pub fn is_done(&self) -> bool {
        self.done()
    }

    /// Finishes an externally driven run: the report and the kernel,
    /// exactly what [`run`](Self::run) returns.
    pub fn into_report(self) -> (LoopReport, Kernel) {
        (
            LoopReport {
                stats: self.stats,
                requests: self.requests,
            },
            self.kernel,
        )
    }

    /// Installs a shard context without entering [`run_shard`]'s
    /// blocking service loop. A deterministic driver (the storm
    /// harness) holds every shard of the fleet on **one** thread and
    /// interleaves [`tick`](Self::tick) with
    /// [`pump_fabric`](Self::pump_fabric) in a fixed order — real
    /// threads would reintroduce scheduling nondeterminism, which a
    /// seed-replayable run cannot tolerate.
    ///
    /// [`run_shard`]: Self::run_shard
    pub fn attach_shard(&mut self, ctx: ShardContext) {
        self.shard = Some(ctx);
    }

    /// Handles every cross-shard message already queued on this shard's
    /// inbox, nonblocking; returns how many were handled. The
    /// deterministic sharded driver alternates this with
    /// [`tick`](Self::tick) until the fleet quiesces.
    pub fn pump_fabric(&mut self) -> usize {
        let mut handled = 0;
        if self.shard.is_none() {
            return handled;
        }
        loop {
            match self.shard_ctx().mailbox.inbox.try_recv() {
                Ok(msg) => {
                    handled += 1;
                    self.handle_shard_msg(msg);
                }
                // Disconnection outside run_shard means the driver
                // already dropped its senders (end of run): quiesce.
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return handled,
            }
        }
    }

    /// Runs the loop until every script is exhausted, returning the
    /// report and the kernel.
    ///
    /// # Panics
    ///
    /// Panics if [`EventLoopConfig::max_ticks`] elapses first — a
    /// stuck state machine, by construction a bug.
    pub fn run(mut self) -> (LoopReport, Kernel) {
        while !self.done() {
            self.tick();
            assert!(
                self.stats.ticks <= self.cfg.max_ticks,
                "event loop stuck after {} ticks ({} completed, {} failed)",
                self.stats.ticks,
                self.stats.completed,
                self.stats.failed,
            );
        }
        (
            LoopReport {
                stats: self.stats,
                requests: self.requests,
            },
            self.kernel,
        )
    }

    fn done(&self) -> bool {
        self.conns
            .iter()
            .all(|c| matches!(c.state, ConnState::Done))
    }

    /// One event-loop iteration: inject, drain, poll once, dispatch.
    pub fn tick(&mut self) {
        self.stats.ticks += 1;
        self.inject_requests();
        self.drain_wires();
        let (server_events, cgi_events) = self.poll();
        self.dispatch(&server_events, cgi_events);
        self.tick_writeback();
        let inflight = self
            .conns
            .iter()
            .filter(|c| !matches!(c.state, ConnState::Idle | ConnState::Done))
            .count();
        self.stats.max_inflight = self.stats.max_inflight.max(inflight);
    }

    /// Background persistence between request events: when accumulated
    /// dirty bytes arm the threshold, one journaled flush batch runs
    /// (CAWL: entries coalesce, one disk positioning per batch with a
    /// disk share); independently, the NVM staging tier drains one
    /// chunk toward disk so it can absorb the next burst. Both are
    /// pure-state-read gated, so an all-clean cache costs nothing.
    fn tick_writeback(&mut self) {
        if self.kernel.writeback_due() {
            let flushed = self.kernel.write_back(0);
            if flushed > 0 {
                self.stats.writebacks += 1;
            }
        }
        if self.kernel.nvm_demote_due() {
            self.kernel.nvm_demote(0);
        }
    }

    /// Closed-loop clients: an idle connection with script left issues
    /// its next request (the harness playing the remote peer), subject
    /// to [`EventLoopConfig::admission_limit`].
    fn inject_requests(&mut self) {
        // lint:allow(hot-path-alloc) — Arc handle clone (a refcount
        // bump), not a buffer copy; needed to end the kernel borrow.
        let pool = self.kernel.process(self.pid).pool().clone();
        let limit = self.cfg.admission_limit;
        let mut inflight = if limit == 0 {
            0
        } else {
            self.conns
                .iter()
                .filter(|c| !matches!(c.state, ConnState::Idle | ConnState::Done))
                .count()
        };
        for i in 0..self.conns.len() {
            if !matches!(self.conns[i].state, ConnState::Idle) {
                continue;
            }
            if self.conns[i].script.is_empty() {
                self.conns[i].state = ConnState::Done;
                continue;
            }
            if limit > 0 && inflight >= limit {
                continue;
            }
            inflight += 1;
            let Some(path) = self.conns[i].script.pop_front() else {
                unreachable!("script checked non-empty above");
            };
            if self.cfg.external_wire {
                // The storm harness plays the remote peer: request
                // bytes arrive through the adversarial wire (segments →
                // reassembly → `socket_deliver`), possibly much later.
                // The connection just starts listening; the popped
                // entry only counts the request against the script.
                self.conns[i].state = ConnState::Parsing {
                    buf: Aggregate::empty(),
                };
                continue;
            }
            let req = match parse_put_entry(&path) {
                Some((p, len)) => {
                    crate::message::put_request_bytes(p, &synthetic_put_body(p, len), true)
                }
                None => crate::message::request_bytes(&path, true),
            };
            let agg = Aggregate::from_bytes(&pool, &req);
            match self.kernel.socket_deliver(self.pid, self.conns[i].sock, agg) {
                Ok(_) => {
                    self.conns[i].state = ConnState::Parsing {
                        buf: Aggregate::empty(),
                    };
                }
                // The peer hung up between requests: this client's
                // remaining script is unreachable — fail it, don't
                // panic the server.
                Err(_) => self.fail_conn(i, None),
            }
        }
    }

    /// The simulated wire acknowledges up to `drain_per_tick` bytes per
    /// connection, freeing send-buffer space (and completing drains). A
    /// drain error means the peer is gone — nothing will ever ACK the
    /// in-flight bytes, so the response fails rather than "completing"
    /// against a dead peer.
    fn drain_wires(&mut self) {
        for i in 0..self.conns.len() {
            if !matches!(
                self.conns[i].state,
                ConnState::Sending(_) | ConnState::Draining(_)
            ) {
                continue;
            }
            let sock = self.conns[i].sock;
            if self.cfg.external_wire {
                // The harness drains on ACK arrival; here we only watch
                // for a peer that died while bytes were in flight (its
                // ACKs will never come, so the drain check below would
                // otherwise wait forever).
                if self
                    .kernel
                    .socket_peer_closed(self.pid, sock)
                    .unwrap_or(true)
                {
                    self.fail_in_flight(i);
                    continue;
                }
            } else if self
                .kernel
                .socket_drain(self.pid, sock, self.cfg.drain_per_tick)
                .is_err()
            {
                self.fail_in_flight(i);
                continue;
            }
            if matches!(self.conns[i].state, ConnState::Draining(_))
                && self.kernel.socket_unacked(self.pid, sock) == Ok(0)
            {
                let state = std::mem::replace(&mut self.conns[i].state, ConnState::Idle);
                let ConnState::Draining(job) = state else {
                    unreachable!("matched Draining above");
                };
                self.finish_request(i, job);
            }
        }
    }

    /// Fails a connection whose response was mid-stream or mid-drain,
    /// releasing the transmission pin it held.
    fn fail_in_flight(&mut self, i: usize) {
        let state = std::mem::replace(&mut self.conns[i].state, ConnState::Done);
        let pin = match state {
            ConnState::Sending(job) => job.pin,
            ConnState::Draining(job) => job.pin,
            _ => None,
        };
        self.fail_conn(i, pin);
    }

    /// One `iol_poll` over the server's interest set, plus (when a CGI
    /// transfer is active) the CGI process's own poll of its write end
    /// — each protection domain runs its own event loop.
    fn poll(&mut self) -> (ServerEvents, CgiEvents) {
        // lint:allow(hot-path-alloc) — per-tick interest-set scratch
        // (fd/index pairs, not request bytes).
        let mut entries = Vec::new();
        // lint:allow(hot-path-alloc) — same per-tick scratch as above.
        let mut owners = Vec::new();
        for (i, conn) in self.conns.iter().enumerate() {
            let interest = match &conn.state {
                ConnState::Parsing { .. } | ConnState::BodyIngest { .. } => {
                    Some(Interest::Readable)
                }
                ConnState::Sending(_) => Some(Interest::Writable),
                _ => None,
            };
            if let Some(interest) = interest {
                entries.push(PollFd {
                    fd: conn.sock,
                    interest,
                });
                owners.push(i);
            }
        }
        let mut rfd_ready = Readiness::PENDING;
        let cgi_active = self.cgi_owner.is_some();
        if let (true, Some(cgi)) = (cgi_active, &self.cgi) {
            entries.push(PollFd::readable(cgi.server_read_fd()));
        }
        let mut server_events = Vec::with_capacity(owners.len());
        if !entries.is_empty() {
            let (events, out) = self
                .kernel
                .iol_poll(self.pid, &entries)
                // lint:allow(panic) — iol_poll is total over its
                // interest set (readiness is a pure state read; no
                // request input reaches it), per the PR 5 contract.
                .expect("poll is total");
            self.stats.polls += 1;
            self.stats.poll_entries += entries.len() as u64;
            self.stats.cpu += out.charge.time;
            if cgi_active {
                if let Some(&last) = events.last() {
                    rfd_ready = last;
                }
            }
            server_events = owners.into_iter().zip(events).collect();
        }
        // The CGI process polls its own write end.
        let cgi_events = match (&self.cgi, cgi_active) {
            (Some(cgi), true) => {
                let (wfd, cgi_pid) = (cgi.write_fd(), cgi.pid);
                let (events, out) = self
                    .kernel
                    .iol_poll(cgi_pid, &[PollFd::writable(wfd)])
                    // lint:allow(panic) — same poll-totality contract
                    // as the server-side poll above.
                    .expect("poll is total");
                self.stats.polls += 1;
                self.stats.poll_entries += 1;
                self.stats.cpu += out.charge.time;
                Some((events[0], rfd_ready))
            }
            _ => None,
        };
        (server_events, cgi_events)
    }

    fn dispatch(&mut self, server_events: &ServerEvents, cgi_events: CgiEvents) {
        for &(i, ready) in server_events {
            match &self.conns[i].state {
                ConnState::Parsing { .. } => self.advance_parse(i, ready),
                ConnState::BodyIngest { .. } => self.advance_body(i, ready),
                ConnState::Sending(_) => self.advance_send(i, ready),
                // The state may have changed since the poll (e.g. a
                // fault injected by a test); skip stale events.
                _ => {}
            }
        }
        if let Some((wfd_ready, rfd_ready)) = cgi_events {
            self.advance_cgi(wfd_ready, rfd_ready);
        }
    }

    /// Parsing: read available request bytes, look for the header
    /// terminator, then route (static open vs CGI queue).
    fn advance_parse(&mut self, i: usize, ready: Readiness) {
        if ready.eof || ready.epipe {
            // Peer hung up before completing its request.
            self.fail_conn(i, None);
            return;
        }
        if !ready.readable {
            return;
        }
        let sock = self.conns[i].sock;
        let chunk = match self.kernel.iol_read_fd(self.pid, sock, u64::MAX) {
            Ok((chunk, out)) => {
                self.stats.cpu += out.charge.time;
                chunk
            }
            Err(IolError::WouldBlock { outcome }) => {
                self.stats.blocked_io += 1;
                self.stats.cpu += outcome.charge.time;
                return;
            }
            Err(_) => {
                self.fail_conn(i, None);
                return;
            }
        };
        let ConnState::Parsing { buf } = &mut self.conns[i].state else {
            unreachable!("advance_parse is only called while Parsing");
        };
        buf.append(&chunk);
        if !header_complete(buf) {
            return;
        }
        // Request parse + per-request bookkeeping + the IOL API's extra
        // (the serve_static cost structure).
        let cost = &self.kernel.cost;
        self.stats.cpu += Charge::us(
            cost.http_parse_us + cost.server_fixed_us + cost.iol_request_extra_us,
        )
        .time;
        let parsed = parse_request_head_agg(buf);
        match parsed {
            Some((req, _))
                if req.method == Method::Get
                    && req.path.starts_with(CGI_PREFIX)
                    && self.cgi.is_some() =>
            {
                // CGI dispatch: forward + wake the CGI process.
                let cost = &self.kernel.cost;
                self.stats.cpu +=
                    (Charge::us(cost.cgi_dispatch_us) + cost.context_switches(2)).time;
                self.kernel.context_switch(2);
                if self.cgi_owner.is_none() {
                    self.cgi_owner = Some(i);
                    self.conns[i].state = ConnState::CgiStream {
                        path: req.path,
                        sent: 0,
                        received: Aggregate::empty(),
                    };
                } else {
                    self.cgi_queue.push_back(i);
                    self.conns[i].state = ConnState::CgiWait { path: req.path };
                }
            }
            Some((req, _)) if req.method == Method::Get => self.open_static(i, req.path),
            Some((req, body_at)) if req.method == Method::Put => {
                let state = std::mem::replace(&mut self.conns[i].state, ConnState::Idle);
                let ConnState::Parsing { buf } = state else {
                    unreachable!("advance_parse is only called while Parsing");
                };
                self.start_body_ingest(i, req, body_at, buf);
            }
            // POST parses, but no handler is mounted: the 404 route
            // answers (the body, if any, is left on the wire).
            Some((req, _)) => self.send_not_found(i, req.path),
            // Malformed request: a 404/400-style short response.
            None => self.send_not_found(i, String::from("<bad-request>")),
        }
    }

    /// Begins (and, when the first read already delivered the whole
    /// body, immediately completes) a PUT's body ingest.
    fn start_body_ingest(&mut self, i: usize, req: Request, body_at: u64, buf: Aggregate) {
        self.conns[i].state = ConnState::BodyIngest {
            path: req.path,
            keep_alive: req.keep_alive,
            body_at,
            content_length: req.content_length,
            buf,
        };
        self.try_complete_put(i);
    }

    /// BodyIngest: read available bytes, append them by reference, and
    /// complete the PUT once the declared length is in.
    fn advance_body(&mut self, i: usize, ready: Readiness) {
        if ready.eof || ready.epipe {
            // Peer hung up mid-body: the upload can never complete.
            self.fail_conn(i, None);
            return;
        }
        if !ready.readable {
            return;
        }
        let sock = self.conns[i].sock;
        let chunk = match self.kernel.iol_read_fd(self.pid, sock, u64::MAX) {
            Ok((chunk, out)) => {
                self.stats.cpu += out.charge.time;
                chunk
            }
            Err(IolError::WouldBlock { outcome }) => {
                self.stats.blocked_io += 1;
                self.stats.cpu += outcome.charge.time;
                return;
            }
            Err(_) => {
                self.fail_conn(i, None);
                return;
            }
        };
        let ConnState::BodyIngest { buf, .. } = &mut self.conns[i].state else {
            unreachable!("advance_body is only called while BodyIngest");
        };
        buf.append(&chunk);
        self.try_complete_put(i);
    }

    /// Completes a PUT whose declared body has fully arrived: the body
    /// is split out of the receive aggregate at the header boundary —
    /// pure slice arithmetic, the bytes never move — and installed.
    fn try_complete_put(&mut self, i: usize) {
        let ConnState::BodyIngest {
            body_at,
            content_length,
            buf,
            ..
        } = &self.conns[i].state
        else {
            return;
        };
        if buf.len() < body_at + content_length {
            return;
        }
        let state = std::mem::replace(&mut self.conns[i].state, ConnState::Idle);
        let ConnState::BodyIngest {
            path,
            keep_alive,
            body_at,
            content_length,
            buf,
        } = state
        else {
            unreachable!("matched BodyIngest above");
        };
        let Ok(body) = buf.range(body_at, content_length) else {
            // In bounds by the length check above; a breach means the
            // aggregate lied about its length — fail, don't panic.
            self.fail_conn(i, None);
            return;
        };
        self.stats.put_bytes += body.len();
        if self.try_remote_write(i, &path, &body, keep_alive) {
            return;
        }
        let file = match self.kernel.store.lookup(&path) {
            Some(file) => file,
            // First PUT to this path: create the (empty) file so an id
            // exists to install under.
            None => self.kernel.create_file(&path, &[]),
        };
        let out = self.kernel.put_install(self.pid, file, &body);
        self.stats.cpu += out.charge.time;
        self.broadcast_invalidate(file);
        self.respond_created(i, path, keep_alive);
    }

    /// Tells every other shard that `file`'s replicas are stale (a
    /// write just committed on this, the home, shard). Only `Replicate`
    /// fleets carry replicas. The writing shard is *not* skipped even
    /// though it dropped its own copy before routing the write here: it
    /// may have re-fetched pre-write bytes in the window before the
    /// write landed, and the per-pair FIFO order (`RemoteData` then
    /// `Invalidate`) is what guarantees that refetched replica dies.
    fn broadcast_invalidate(&mut self, file: FileId) {
        let Some(ctx) = &self.shard else {
            return;
        };
        if ctx.shards <= 1 || ctx.ownership != CacheOwnership::Replicate {
            return;
        }
        let us = ctx.mailbox.id;
        for s in 0..ctx.shards {
            if s == us {
                continue;
            }
            ctx.mailbox.send(s, ShardMsg::Invalidate { file });
        }
    }

    /// Queues the short 201 response acknowledging a completed PUT.
    fn respond_created(&mut self, i: usize, path: String, keep_alive: bool) {
        self.stats.puts += 1;
        // lint:allow(hot-path-alloc) — Arc handle clone (a refcount
        // bump), not a buffer copy; needed to end the kernel borrow.
        let pool = self.kernel.process(self.pid).pool().clone();
        let response = Aggregate::from_bytes(&pool, &created(keep_alive));
        self.start_send(i, path, response, None, false);
    }

    /// `header ++ body` by reference — the response framing every
    /// route shares (and `serve_static`/`cgi` build identically, which
    /// the equivalence property depends on).
    fn build_response(&mut self, body: &Aggregate) -> Aggregate {
        let header = response_header(body.len(), true);
        let mut response =
            Aggregate::from_bytes(self.kernel.process(self.pid).pool(), &header);
        response.append(body);
        response
    }

    /// Queues the short 404-style response (missing file, bad request).
    fn send_not_found(&mut self, i: usize, path: String) {
        // lint:allow(hot-path-alloc) — Arc handle clone (a refcount
        // bump), not a buffer copy; needed to end the kernel borrow.
        let pool = self.kernel.process(self.pid).pool().clone();
        let response = Aggregate::from_bytes(&pool, &not_found());
        self.start_send(i, path, response, None, false);
    }

    /// Static route: open by path, snapshot-read the document, build
    /// `header ++ body` by reference, pin the cache entry for the
    /// transmission, and start streaming. In sharded runs a document
    /// homed elsewhere is fetched by message instead (see
    /// [`try_remote_route`](Self::try_remote_route)).
    fn open_static(&mut self, i: usize, path: String) {
        if self.try_remote_route(i, &path) {
            return;
        }
        match self.snapshot_document(&path) {
            Ok(Some((file, response, cache_hit))) => {
                // The network references the cached entry until the
                // response drains (§3.7) — same pin lifecycle as
                // serve_static.
                let key = CacheKey::whole(file);
                self.kernel.cache_pin(key);
                self.start_send(i, path, response, Some(key), cache_hit);
            }
            Ok(None) => self.send_not_found(i, path),
            // A descriptor operation failed mid-snapshot: the request
            // cannot be answered, but the server lives on.
            Err(_) => self.fail_conn(i, None),
        }
    }

    /// Opens, snapshot-reads, and frames one document: `Ok(None)` when
    /// the path does not resolve (the 404 route answers), `Err` when a
    /// descriptor operation fails mid-snapshot.
    fn snapshot_document(
        &mut self,
        path: &str,
    ) -> Result<Option<(FileId, Aggregate, bool)>, IolError> {
        let (file_fd, oout) = match self.kernel.open(self.pid, path) {
            Ok(v) => v,
            Err(_) => return Ok(None),
        };
        self.stats.cpu += oout.charge.time;
        let len = self.kernel.fd_len(self.pid, file_fd)?;
        let file = self.kernel.fd_file(self.pid, file_fd)?;
        let (body, rout) = self.kernel.iol_pread(self.pid, file_fd, 0, len)?;
        self.stats.cpu += rout.charge.time;
        let cache_hit = rout.cache_hit;
        self.kernel.close_fd(self.pid, file_fd)?;
        let response = self.build_response(&body);
        Ok(Some((file, response, cache_hit)))
    }

    fn start_send(
        &mut self,
        i: usize,
        path: String,
        response: Aggregate,
        pin: Option<CacheKey>,
        cache_hit: bool,
    ) {
        self.conns[i].state = ConnState::Sending(SendJob {
            path,
            response,
            next_slice: 0,
            pin,
            cache_hit,
        });
    }

    /// Sending: write as many *whole response slices* as fit in the
    /// send buffer. Never splitting a slice keeps the checksum-cache
    /// keys identical to a whole-response write; a slice is at most one
    /// chunk (≤ Tss), so a fully drained buffer always fits the next
    /// one — progress is guaranteed without ever seeing `WouldBlock`.
    fn advance_send(&mut self, i: usize, ready: Readiness) {
        if ready.epipe {
            // The peer closed mid-response: fail this request.
            let state = std::mem::replace(&mut self.conns[i].state, ConnState::Done);
            let ConnState::Sending(job) = state else {
                unreachable!("advance_send is only called while Sending");
            };
            self.fail_conn(i, job.pin);
            return;
        }
        if !ready.writable {
            return;
        }
        let sock = self.conns[i].sock;
        let space = match self.kernel.socket_space(self.pid, sock) {
            Ok(space) => space,
            // The socket vanished between poll and dispatch (a test
            // injected a close): the response can never finish.
            Err(_) => {
                self.fail_in_flight(i);
                return;
            }
        };
        let ConnState::Sending(job) = &mut self.conns[i].state else {
            unreachable!("advance_send is only called while Sending");
        };
        let mut window = Aggregate::empty();
        let mut take = 0usize;
        while job.next_slice + take < job.response.num_slices() {
            let s = job.response.slice_at(job.next_slice + take);
            if window.len() + s.len() as u64 > space {
                break;
            }
            // lint:allow(hot-path-alloc) — slice-handle clone (offsets
            // + a refcounted chunk pointer); the bytes stay put.
            window.append_slice(s.clone());
            take += 1;
        }
        if take == 0 {
            // Writable, but not by a whole slice yet: let the wire
            // drain further. No syscall was spent — no busy-spin.
            return;
        }
        match self.kernel.iol_write_fd(self.pid, sock, &window) {
            Ok((_, out)) => {
                // lint:allow(panic) — accounting invariant: every
                // socket write carries a SendOutcome; billing zero
                // wire cost on a breach would silently skew the
                // simulation, so surface the modeling bug instead.
                let send = out.net.expect("socket writes carry SendOutcome");
                let cost = &self.kernel.cost;
                self.stats.cpu += (out.charge
                    + cost.wire_checksum(send.csum_bytes_computed)
                    + cost.packets(send.segments))
                .time;
            }
            Err(IolError::WouldBlock { outcome } | IolError::ShortIo { outcome, .. }) => {
                // Cannot happen: the window was sized to the space the
                // kernel reported. Counted so the suite can prove it.
                self.stats.blocked_io += 1;
                self.stats.cpu += outcome.charge.time;
                return;
            }
            Err(_) => {
                let state = std::mem::replace(&mut self.conns[i].state, ConnState::Done);
                let ConnState::Sending(job) = state else {
                    unreachable!("still Sending");
                };
                self.fail_conn(i, job.pin);
                return;
            }
        }
        let ConnState::Sending(job) = &mut self.conns[i].state else {
            unreachable!("still Sending");
        };
        job.next_slice += take;
        if job.next_slice == job.response.num_slices() {
            let state = std::mem::replace(&mut self.conns[i].state, ConnState::Done);
            let ConnState::Sending(job) = state else {
                unreachable!("still Sending");
            };
            let captured = self
                .cfg
                .capture_responses
                // lint:allow(hot-path-alloc) — test-observability
                // knob, off in every measured configuration.
                .then(|| job.response.to_vec());
            self.conns[i].state = ConnState::Draining(DrainJob {
                path: job.path,
                bytes: job.response.len(),
                pin: job.pin,
                cache_hit: job.cache_hit,
                captured,
            });
        }
    }

    /// The active CGI transfer: the CGI process writes its document to
    /// the pipe when writable; the server drains the pipe when
    /// readable; a dead peer fails the request and hands the pipe to
    /// the next waiter.
    fn advance_cgi(&mut self, wfd_ready: Readiness, rfd_ready: Readiness) {
        let Some(owner) = self.cgi_owner else {
            return;
        };
        let Some(cgi) = self.cgi.as_ref() else {
            // An owner without a CGI process cannot exist (ownership
            // is only assigned when `self.cgi` is set) — but if it
            // did, there is nothing to advance.
            return;
        };
        let (cgi_pid, wfd, rfd) = (cgi.pid, cgi.write_fd(), cgi.server_read_fd());
        let doc_len = cgi.document().len();
        if rfd_ready.invalid || rfd_ready.eof {
            // The server-side read end vanished (or the pipe closed
            // under us): the transfer can never complete.
            self.fail_cgi_owner();
            return;
        }
        // Writer side (the CGI process's own loop).
        let ConnState::CgiStream { sent, .. } = &self.conns[owner].state else {
            unreachable!("cgi_owner always points at a CgiStream connection");
        };
        let sent_now = *sent;
        if wfd_ready.epipe && sent_now < doc_len {
            // The server's read end is gone: EPIPE, request failed.
            self.fail_cgi_owner();
            return;
        }
        if wfd_ready.writable && sent_now < doc_len {
            let Some(cgi) = self.cgi.as_ref() else {
                return;
            };
            let Ok(remaining) = cgi.document().range(sent_now, doc_len - sent_now)
            else {
                // `sent` ran past the document — unreachable by
                // construction, but failing the transfer beats a
                // panic.
                self.fail_cgi_owner();
                return;
            };
            match short_ok(self.kernel.iol_write_fd(cgi_pid, wfd, &remaining)) {
                Ok((accepted, out)) => {
                    self.stats.cpu += out.charge.time;
                    let ConnState::CgiStream { sent, .. } = &mut self.conns[owner].state
                    else {
                        unreachable!("still CgiStream");
                    };
                    *sent += accepted;
                }
                Err(IolError::WouldBlock { outcome }) => {
                    self.stats.blocked_io += 1;
                    self.stats.cpu += outcome.charge.time;
                }
                Err(_) => {
                    self.fail_cgi_owner();
                    return;
                }
            }
        }
        // Reader side (the server's loop).
        if rfd_ready.readable {
            match self.kernel.iol_read_fd(self.pid, rfd, u64::MAX) {
                Ok((chunk, out)) => {
                    self.stats.cpu += out.charge.time;
                    let ConnState::CgiStream { received, .. } = &mut self.conns[owner].state
                    else {
                        unreachable!("still CgiStream");
                    };
                    received.append(&chunk);
                }
                Err(IolError::WouldBlock { outcome }) => {
                    self.stats.blocked_io += 1;
                    self.stats.cpu += outcome.charge.time;
                }
                Err(_) => {
                    self.fail_cgi_owner();
                    return;
                }
            }
        }
        // Transfer complete: build the response and release the pipe.
        let ConnState::CgiStream { received, .. } = &self.conns[owner].state else {
            unreachable!("still CgiStream");
        };
        if received.len() == doc_len {
            let state = std::mem::replace(&mut self.conns[owner].state, ConnState::Done);
            let ConnState::CgiStream { path, received, .. } = state else {
                unreachable!("still CgiStream");
            };
            let response = self.build_response(&received);
            self.start_send(owner, path, response, None, false);
            self.release_cgi();
        }
    }

    /// The CGI transfer's peer died: fail the owning request, hand the
    /// pipe to the next waiter.
    fn fail_cgi_owner(&mut self) {
        let Some(owner) = self.cgi_owner else {
            return;
        };
        self.fail_conn(owner, None);
        self.release_cgi();
    }

    /// Hands CGI-pipe ownership to the next queued connection.
    fn release_cgi(&mut self) {
        self.cgi_owner = None;
        if let Some(next) = self.cgi_queue.pop_front() {
            let state = std::mem::replace(&mut self.conns[next].state, ConnState::Done);
            let ConnState::CgiWait { path } = state else {
                unreachable!("cgi_queue only holds CgiWait connections");
            };
            self.cgi_owner = Some(next);
            self.conns[next].state = ConnState::CgiStream {
                path,
                sent: 0,
                received: Aggregate::empty(),
            };
        }
    }

    /// Records a completed request and returns the connection to the
    /// closed loop.
    fn finish_request(&mut self, i: usize, job: DrainJob) {
        if let Some(key) = job.pin {
            self.kernel.cache_unpin(key);
        }
        self.stats.completed += 1;
        self.stats.response_bytes += job.bytes;
        self.stats.cache_hits += u64::from(job.cache_hit);
        self.requests.push(CompletedRequest {
            conn: i,
            path: job.path,
            bytes: job.bytes,
            cache_hit: job.cache_hit,
            response: job.captured,
        });
        self.conns[i].state = ConnState::Idle;
    }

    /// Fails the in-flight request on `i` and retires the connection
    /// (the peer is gone; the rest of its script is unreachable).
    fn fail_conn(&mut self, i: usize, pin: Option<CacheKey>) {
        if let Some(key) = pin {
            self.kernel.cache_unpin(key);
        }
        self.stats.failed += 1;
        self.conns[i].state = ConnState::Done;
    }

    // ---- Sharded serving -------------------------------------------------
    //
    // The shared-nothing protocol: this shard's kernel is touched only
    // by this thread; a document homed on another shard is fetched by a
    // `RemoteRead` message and the bytes come back copied. No lock on
    // any kernel or cache is ever taken on this path.

    /// The shard context. Only called from the sharded paths, all of
    /// which are reachable solely from [`run_shard`](Self::run_shard),
    /// which installs the context on entry.
    fn shard_ctx(&self) -> &ShardContext {
        // lint:allow(panic) — run_shard installs the context before
        // any sharded path runs; absence is harness miswiring,
        // unreachable from request input.
        self.shard.as_ref().expect("run_shard installs the context")
    }

    /// Routes a static request for a remotely-homed document over the
    /// fabric, parking the connection in `RemoteWait`. Returns `false`
    /// when the request should be served locally: not a sharded run,
    /// single-shard fleet, home shard is us, the path does not resolve
    /// (the local 404 path answers), or a `Replicate` replica is
    /// already resident.
    fn try_remote_route(&mut self, i: usize, path: &str) -> bool {
        let Some(ctx) = &self.shard else {
            return false;
        };
        if ctx.shards <= 1 {
            return false;
        }
        let Some(file) = self.kernel.store.lookup(path) else {
            return false;
        };
        let home = home_shard(file, ctx.shards);
        if home == ctx.mailbox.id {
            return false;
        }
        if ctx.ownership == CacheOwnership::Replicate
            && self.kernel.cache.contains(&CacheKey::whole(file))
        {
            return false;
        }
        // Single-flight: only the first waiter for a file sends the
        // fetch; later arrivals park behind it (a thundering herd of
        // per-connection fetches for the Zipf head would otherwise
        // flood the fabric with duplicate copies).
        self.stats.remote_waits += 1;
        let waiters = self.remote_pending.entry(file).or_default();
        waiters.push(i);
        if waiters.len() == 1 {
            self.stats.remote_reads += 1;
            ctx.mailbox.send(
                home,
                ShardMsg::RemoteRead {
                    from: ctx.mailbox.id,
                    token: i as u64,
                    file,
                },
            );
        }
        self.conns[i].state = ConnState::RemoteWait {
            path: path.to_string(),
        };
        true
    }

    /// Routes a PUT body for a remotely-homed file over the fabric,
    /// parking the connection in `PutWait` until the home shard's ack.
    /// Only the home shard ever writes a file, so writes serialize
    /// there without any cross-shard lock. Returns `false` when the
    /// write should be installed locally: not a sharded run,
    /// single-shard fleet, home shard is us, or a path this shard's
    /// namespace cannot resolve (first PUT: created locally).
    fn try_remote_write(
        &mut self,
        i: usize,
        path: &str,
        body: &Aggregate,
        keep_alive: bool,
    ) -> bool {
        let Some(ctx) = &self.shard else {
            return false;
        };
        if ctx.shards <= 1 {
            return false;
        }
        let Some(file) = self.kernel.store.lookup(path) else {
            return false;
        };
        let home = home_shard(file, ctx.shards);
        if home == ctx.mailbox.id {
            return false;
        }
        self.stats.remote_writes += 1;
        // lint:allow(hot-path-alloc) — the host-level channel copy
        // (see serve_remote_read): an artifact of thread-confined
        // pools, not a modeled cost (the home shard bills the copy
        // where the bytes land).
        let bytes = body.to_vec();
        let ctx = self.shard_ctx();
        ctx.mailbox.send(
            home,
            ShardMsg::RemoteWrite {
                from: ctx.mailbox.id,
                token: i as u64,
                file,
                bytes,
            },
        );
        // The writing shard's own replica is stale the moment the
        // write lands at home: drop it now (journaled), so no later
        // local read can serve the replaced bytes.
        if self.shard_ctx().ownership == CacheOwnership::Replicate {
            self.kernel.cache_invalidate(CacheKey::whole(file));
        }
        self.conns[i].state = ConnState::PutWait {
            path: path.to_string(),
            keep_alive,
        };
        true
    }

    /// Home-shard side of a remote write: the body bytes land in this
    /// shard's pool (the remote write's one real memcpy, billed here)
    /// and install through its own journaled put path, then the ack
    /// releases the writer's connection.
    fn serve_remote_write(&mut self, from: usize, token: u64, file: FileId, bytes: Vec<u8>) {
        let c = self.kernel.cost.copy(bytes.len() as u64);
        self.kernel.charge(CostCategory::Copy, c);
        self.stats.cpu += c.time;
        // lint:allow(hot-path-alloc) — Arc handle clone (a refcount
        // bump), not a buffer copy; needed to end the kernel borrow.
        let pool = self.kernel.process(self.pid).pool().clone();
        let body = Aggregate::from_bytes(&pool, &bytes);
        let out = self.kernel.put_install(self.pid, file, &body);
        self.stats.cpu += out.charge.time;
        self.broadcast_invalidate(file);
        self.shard_ctx()
            .mailbox
            .send(from, ShardMsg::RemoteWriteAck { token, file });
    }

    /// Writer side: the home shard acknowledged the PUT; answer the
    /// parked connection's client.
    fn finish_remote_write(&mut self, token: u64) {
        let i = token as usize;
        if !matches!(
            self.conns.get(i).map(|c| &c.state),
            Some(ConnState::PutWait { .. })
        ) {
            // The writer failed while the ack was in flight.
            return;
        }
        let state = std::mem::replace(&mut self.conns[i].state, ConnState::Idle);
        let ConnState::PutWait { path, keep_alive } = state else {
            unreachable!("matched PutWait above");
        };
        self.respond_created(i, path, keep_alive);
    }

    /// Handles one inbound cross-shard message; returns `true` on
    /// `Shutdown`.
    fn handle_shard_msg(&mut self, msg: ShardMsg) -> bool {
        match msg {
            ShardMsg::Shutdown => true,
            ShardMsg::RemoteRead { from, token, file } => {
                self.serve_remote_read(from, token, file);
                false
            }
            ShardMsg::RemoteData {
                file,
                bytes,
                home_hit,
                ..
            } => {
                self.finish_remote(file, bytes, home_hit);
                false
            }
            ShardMsg::RemoteWrite {
                from,
                token,
                file,
                bytes,
            } => {
                self.serve_remote_write(from, token, file, bytes);
                false
            }
            ShardMsg::RemoteWriteAck { token, .. } => {
                self.finish_remote_write(token);
                false
            }
            ShardMsg::Invalidate { file } => {
                self.kernel.cache_invalidate(CacheKey::whole(file));
                false
            }
        }
    }

    /// Home-shard side of a remote read: snapshot the document through
    /// this kernel's own (journaled) open/pread path — the only disk
    /// read the fleet ever does for this file — then copy the bytes
    /// out to the requester.
    fn serve_remote_read(&mut self, from: usize, token: u64, file: FileId) {
        let fd = self.kernel.open_file(self.pid, file);
        // The RemoteRead protocol has no failure reply: a snapshot
        // error on the home shard would leave the requester's waiters
        // parked forever, a worse failure than surfacing the bug — and
        // the fd was just opened by FileId, so no error is reachable
        // from request input. Hence the annotated expects below.
        //
        // lint:allow(panic) — see above: no failure reply exists.
        let len = self.kernel.fd_len(self.pid, fd).expect("open file");
        // IOL_read, not pread: IO-Lite aggregates are immutable, so
        // the home shard hands the requester a *reference* (syscall +
        // disk on a cold home + page maps — no byte copy, exactly
        // like a local zero-copy serve). The one real memcpy of a
        // remote fetch is billed on the requester side, where the
        // bytes land (`cache_install` / `serve_copied`). The `Vec`
        // crossing the host-level channel is an artifact of
        // thread-confined buffer pools, not a modeled cost.
        let (body, out) = self
            .kernel
            .iol_read_fd(self.pid, fd, len)
            // lint:allow(panic) — no failure reply exists (see above).
            .expect("document read");
        self.stats.cpu += out.charge.time;
        let home_hit = out.cache_hit;
        self.kernel
            .close_fd(self.pid, fd)
            // lint:allow(panic) — no failure reply exists (see above).
            .expect("close after snapshot");
        // lint:allow(hot-path-alloc) — the host-level channel copy
        // documented above: an artifact of thread-confined pools, not
        // a modeled cost (the modeled copy is billed requester-side).
        let bytes = body.to_vec();
        self.shard_ctx().mailbox.send(
            from,
            ShardMsg::RemoteData {
                token,
                file,
                bytes,
                home_hit,
            },
        );
    }

    /// Requester side: the home shard's bytes arrived; serve every
    /// connection waiting on this file. Under `Replicate` the bytes
    /// are installed as a local cache replica and the waiters go
    /// through the normal local path (a guaranteed hit, unless the
    /// budget rejects the entry outright); under `HomeOnly` the copy
    /// is served directly and discarded.
    fn finish_remote(&mut self, file: FileId, bytes: Vec<u8>, home_hit: bool) {
        let waiters = self.remote_pending.remove(&file).unwrap_or_default();
        self.stats.remote_hits += u64::from(home_hit);
        let ownership = self.shard_ctx().ownership;
        let mut replica_resident = false;
        if ownership == CacheOwnership::Replicate {
            let out = self.kernel.cache_install(file, &bytes);
            self.stats.cpu += out.charge.time;
            // When the budget evicts the replica on admission (entry
            // larger than this shard's share), fall back to serving
            // the copy directly instead of re-requesting forever.
            replica_resident = self.kernel.cache.contains(&CacheKey::whole(file));
        }
        for i in waiters {
            if !matches!(
                self.conns.get(i).map(|c| &c.state),
                Some(ConnState::RemoteWait { .. })
            ) {
                // This waiter failed while the read was in flight.
                continue;
            }
            let state = std::mem::replace(&mut self.conns[i].state, ConnState::Idle);
            let ConnState::RemoteWait { path } = state else {
                unreachable!("matched RemoteWait above");
            };
            if replica_resident {
                // The normal local path serves the replica as a cache
                // hit (and re-routing cannot recurse).
                self.open_static(i, path);
            } else {
                self.serve_copied(i, path, &bytes);
            }
        }
    }

    /// Serves a response straight from copied bytes (no cache entry, no
    /// pin): the `HomeOnly` path and the replica-rejected fallback.
    /// This path pays the remote fetch's one real memcpy — the bytes
    /// land in the requester's pool — billed (and journaled) here
    /// since the app-side `from_bytes` is invisible to the kernel.
    fn serve_copied(&mut self, i: usize, path: String, bytes: &[u8]) {
        let c = self.kernel.cost.copy(bytes.len() as u64);
        self.kernel.charge(CostCategory::Copy, c);
        self.stats.cpu += c.time;
        // lint:allow(hot-path-alloc) — Arc handle clone (a refcount
        // bump); the copy this path pays is billed two lines up.
        let pool = self.kernel.process(self.pid).pool().clone();
        let body = Aggregate::from_bytes(&pool, bytes);
        let response = self.build_response(&body);
        self.start_send(i, path, response, None, false);
    }

    /// Whether a tick can make progress without any inbound message:
    /// some connection is mid-request, retirable, or injectable under
    /// the admission limit. When this is false (and the shard is not
    /// done), every live connection is in `RemoteWait` — the service
    /// loop then *blocks* on the inbox instead of spinning.
    fn can_progress_locally(&self) -> bool {
        let limit = self.cfg.admission_limit;
        let mut inflight = 0usize;
        let mut injectable = false;
        let mut retirable = false;
        let mut active = false;
        for c in &self.conns {
            match &c.state {
                ConnState::Done => {}
                ConnState::Idle => {
                    if c.script.is_empty() {
                        retirable = true;
                    } else {
                        injectable = true;
                    }
                }
                ConnState::RemoteWait { .. } | ConnState::PutWait { .. } => inflight += 1,
                _ => {
                    inflight += 1;
                    active = true;
                }
            }
        }
        active || retirable || (injectable && (limit == 0 || inflight < limit))
    }

    /// Runs this shard's service loop: event-loop ticks interleaved
    /// with fabric message handling. When only remote work can make
    /// progress the loop blocks on the inbox (`recv_timeout`) rather
    /// than burning ticks — idle shards consume no simulated or real
    /// CPU. After its own scripts finish, the shard reports `done_tx`
    /// and keeps answering other shards' reads until `Shutdown`.
    ///
    /// # Panics
    ///
    /// Panics if [`EventLoopConfig::max_ticks`] elapses, or if the
    /// fabric disconnects before `Shutdown` (both protocol bugs).
    pub fn run_shard(mut self, ctx: ShardContext) -> (LoopReport, Kernel) {
        self.shard = Some(ctx);
        let mut reported = false;
        'serve: loop {
            // Drain everything already queued, nonblocking.
            loop {
                let polled = self.shard_ctx().mailbox.inbox.try_recv();
                match polled {
                    Ok(msg) => {
                        if self.handle_shard_msg(msg) {
                            break 'serve;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // lint:allow(panic) — the documented
                        // protocol-bug panic (see `# Panics`): a
                        // fabric that disconnects before `Shutdown`
                        // is a coordinator bug, and limping on would
                        // hang the fleet on join.
                        panic!("shard fabric disconnected before Shutdown")
                    }
                }
            }
            if !self.done() {
                if self.can_progress_locally() {
                    self.tick();
                    assert!(
                        self.stats.ticks <= self.cfg.max_ticks,
                        "shard event loop stuck after {} ticks ({} completed, {} failed)",
                        self.stats.ticks,
                        self.stats.completed,
                        self.stats.failed,
                    );
                    continue;
                }
            } else if !reported {
                reported = true;
                let ctx = self.shard_ctx();
                // A dead coordinator can never send Shutdown: treat
                // it as one rather than panicking mid-serve.
                if ctx.done_tx.send(ctx.mailbox.id).is_err() {
                    break 'serve;
                }
            }
            // Nothing to do until a message arrives (our data, a peer's
            // read, or Shutdown). Block — the timeout is only a
            // liveness fallback, not a poll interval.
            let waited = self
                .shard_ctx()
                .mailbox
                .inbox
                .recv_timeout(Duration::from_millis(5));
            if let Ok(msg) = waited {
                if self.handle_shard_msg(msg) {
                    break 'serve;
                }
            }
        }
        (
            LoopReport {
                stats: self.stats,
                requests: self.requests,
            },
            self.kernel,
        )
    }
}

/// Parses a script entry: `"PUT <path> <len>"` means upload `len`
/// deterministic bytes (see [`synthetic_put_body`]) to `path`;
/// anything else is a GET of the entry itself.
pub fn parse_put_entry(entry: &str) -> Option<(&str, u64)> {
    let rest = entry.strip_prefix("PUT ")?;
    let (path, len) = rest.rsplit_once(' ')?;
    Some((path, len.parse().ok()?))
}

/// The deterministic body a scripted `"PUT <path> <len>"` uploads —
/// reproducible from the entry alone, so tests and external drivers
/// can verify stored bytes without carrying payloads around.
pub fn synthetic_put_body(path: &str, len: u64) -> Vec<u8> {
    let seed = path
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
    (0..len)
        .map(|i| (seed.wrapping_mul(i | 1) >> 24) as u8)
        .collect()
}

/// Whether the aggregate contains the `\r\n\r\n` header terminator
/// (scanned run-by-run; state carries across chunk boundaries).
fn header_complete(buf: &Aggregate) -> bool {
    let mut progress = 0u8;
    for chunk in buf.chunks() {
        for &b in chunk {
            progress = match (progress, b) {
                (0 | 2, b'\r') => progress + 1,
                (1, b'\n') => 2,
                (3, b'\n') => return true,
                (_, b'\r') => 1,
                _ => 0,
            };
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;
    use iolite_fs::Policy;
    use iolite_ipc::PipeMode;

    fn rig(files: &[(&str, u64)]) -> (Kernel, Pid) {
        let mut k = Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds);
        let pid = k.spawn("server");
        for (name, bytes) in files {
            k.create_synthetic_file(name, *bytes, 7);
        }
        (k, pid)
    }

    #[test]
    fn terminator_detection_spans_chunk_boundaries() {
        use iolite_buf::{Acl, BufferPool, PoolId};
        for chunk in [1usize, 2, 3, 7, 4096] {
            let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk);
            let full = Aggregate::from_bytes(&pool, b"GET / HTTP/1.1\r\nH: v\r\n\r\n");
            assert!(header_complete(&full), "chunk {chunk}");
            let partial = Aggregate::from_bytes(&pool, b"GET / HTTP/1.1\r\nH: v\r\n");
            assert!(!header_complete(&partial), "chunk {chunk}");
        }
    }

    #[test]
    fn serves_a_static_script_to_completion() {
        let (k, pid) = rig(&[("/a", 100_000), ("/b", 3_000)]);
        let scripts = vec![
            vec!["/a".to_string(), "/b".to_string()],
            vec!["/b".to_string(), "/a".to_string(), "/missing".to_string()],
        ];
        let cfg = EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        };
        let server = EventLoopServer::new(k, pid, scripts, None, cfg);
        let (report, kernel) = server.run();
        assert_eq!(report.stats.completed, 5);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.blocked_io, 0, "readiness-driven, no spin");
        // Every response carries the right document bytes.
        for req in &report.requests {
            let body = req.response.as_ref().expect("captured");
            if req.path == "/missing" {
                assert!(body.starts_with(b"HTTP/1.1 404"));
                continue;
            }
            let file = kernel.store.lookup(&req.path).expect("exists");
            let flen = kernel.store.len(file).unwrap();
            let expected = kernel.store.read(file, 0, flen).unwrap();
            assert!(body.ends_with(&expected), "{} body intact", req.path);
            assert_eq!(
                body.len() as u64,
                response_header(expected.len() as u64, true).len() as u64
                    + expected.len() as u64
            );
        }
        // Pins released once drained: the corpus is evictable again.
        for path in ["/a", "/b"] {
            let file = kernel.store.lookup(path).unwrap();
            assert_eq!(kernel.cache.pins(&CacheKey::whole(file)), 0);
        }
    }

    #[test]
    fn multiplexes_while_responses_drain() {
        // 100KB responses, 8KB acked per tick: every connection spends
        // many ticks mid-stream, so all must be in flight at once.
        let (k, pid) = rig(&[("/doc", 100_000)]);
        let scripts = vec![vec!["/doc".to_string()]; 32];
        let cfg = EventLoopConfig {
            drain_per_tick: 8 * 1024,
            ..EventLoopConfig::default()
        };
        let (report, _) = EventLoopServer::new(k, pid, scripts, None, cfg).run();
        assert_eq!(report.stats.completed, 32);
        assert_eq!(report.stats.blocked_io, 0);
        assert_eq!(report.stats.max_inflight, 32, "true multiplexing");
        // 31 of 32 requests ride the cache (and the checksum cache).
        assert_eq!(report.stats.cache_hits, 31);
    }

    #[test]
    fn cgi_requests_flow_through_the_pipe_without_spinning() {
        let (mut k, pid) = rig(&[("/static", 20_000)]);
        // 150KB document > the 64KB pipe: several fill/drain rounds.
        let cgi = CgiProcess::new(&mut k, pid, 150_000, PipeMode::ZeroCopy);
        let expected = cgi.document().to_vec();
        let scripts = vec![
            vec![format!("{CGI_PREFIX}doc")],
            vec!["/static".to_string(), format!("{CGI_PREFIX}doc")],
            vec![format!("{CGI_PREFIX}doc")],
        ];
        let cfg = EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        };
        let (report, _) = EventLoopServer::new(k, pid, scripts, Some(cgi), cfg).run();
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.blocked_io, 0, "CGI included: no busy-spin");
        for req in report.requests.iter().filter(|r| r.path.starts_with(CGI_PREFIX)) {
            let body = req.response.as_ref().expect("captured");
            assert!(body.ends_with(&expected), "CGI bytes intact");
        }
    }

    #[test]
    fn put_then_get_serves_new_bytes_and_writes_back() {
        let (k, pid) = rig(&[("/doc", 50_000)]);
        // One connection, closed loop: the GET runs strictly after the
        // PUT completed, so it must observe the new bytes.
        let scripts = vec![vec!["PUT /doc 70000".to_string(), "/doc".to_string()]];
        let cfg = EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        };
        let (report, kernel) = EventLoopServer::new(k, pid, scripts, None, cfg).run();
        assert_eq!(report.stats.completed, 2);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.blocked_io, 0, "readiness-driven, no spin");
        assert_eq!(report.stats.puts, 1);
        assert_eq!(report.stats.put_bytes, 70_000);
        let expected = synthetic_put_body("/doc", 70_000);
        // The store image holds the replacement (length change included).
        let file = kernel.store.lookup("/doc").unwrap();
        assert_eq!(kernel.store.len(file), Some(70_000));
        assert_eq!(kernel.store.read(file, 0, 70_000).unwrap(), expected);
        // The PUT was answered 201; the GET served the new bytes.
        let put = &report.requests[0];
        assert!(put.response.as_ref().unwrap().starts_with(b"HTTP/1.1 201"));
        let get = &report.requests[1];
        assert!(get.response.as_ref().unwrap().ends_with(&expected));
        assert!(get.cache_hit, "the dirty install is a cache entry");
        // 70 000 dirty bytes armed the 64 KB threshold: the loop
        // flushed between events, leaving nothing dirty at exit.
        assert!(report.stats.writebacks >= 1);
        assert_eq!(kernel.cache.dirty_bytes(), 0);
        // The transmission pin was released.
        assert_eq!(kernel.cache.pins(&CacheKey::whole(file)), 0);
    }

    #[test]
    fn put_body_fragmented_across_ticks_ingests_incrementally() {
        let (k, pid) = rig(&[]);
        let scripts = vec![vec!["PUT /new 4096".to_string()]];
        let cfg = EventLoopConfig {
            external_wire: true,
            ..EventLoopConfig::default()
        };
        let mut server = EventLoopServer::new(k, pid, scripts, None, cfg);
        let body = synthetic_put_body("/new", 4096);
        let req = crate::message::put_request_bytes("/new", &body, true);
        let sock = server.sock(0);
        server.tick(); // Enters Parsing; the external wire owns delivery.
        let pool = server.kernel().process(pid).pool().clone();
        // Header and body dribble in: several reads, several ticks —
        // the BodyIngest state must carry partial bodies across them.
        for frag in req.chunks(700) {
            let agg = Aggregate::from_bytes(&pool, frag);
            server
                .kernel_mut()
                .socket_deliver(pid, sock, agg)
                .expect("open socket");
            server.tick();
        }
        let mut guard = 0;
        while !server.is_done() {
            let _ = server.kernel_mut().socket_drain(pid, sock, 16 * 1024);
            server.tick();
            guard += 1;
            assert!(guard < 100, "PUT never completed");
        }
        let (report, kernel) = server.into_report();
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.puts, 1);
        assert_eq!(report.stats.blocked_io, 0);
        // The path did not exist: the PUT created it.
        let file = kernel.store.lookup("/new").expect("created by PUT");
        assert_eq!(kernel.store.read(file, 0, 4096).unwrap(), body);
    }

    #[test]
    fn peer_close_while_draining_fails_the_request() {
        let (k, pid) = rig(&[("/doc", 5_000)]);
        let scripts = vec![vec!["/doc".to_string()]];
        let cfg = EventLoopConfig {
            drain_per_tick: 1024,
            ..EventLoopConfig::default()
        };
        let mut server = EventLoopServer::new(k, pid, scripts, None, cfg);
        // Tick 1 parses and opens; tick 2 writes the whole (small)
        // response, leaving the connection Draining.
        for _ in 0..2 {
            server.tick();
        }
        let sock = server.sock(0);
        server
            .kernel_mut()
            .socket_peer_close(pid, sock)
            .expect("open socket");
        let (report, kernel) = server.run();
        // A dead peer never ACKs: the drain can't complete, so the
        // request fails — it must not be reported as served.
        assert_eq!(report.stats.completed, 0);
        assert_eq!(report.stats.failed, 1);
        let file = kernel.store.lookup("/doc").unwrap();
        assert_eq!(kernel.cache.pins(&CacheKey::whole(file)), 0);
    }

    #[test]
    fn peer_close_while_idle_fails_cleanly_at_injection() {
        let (k, pid) = rig(&[("/doc", 5_000)]);
        let scripts = vec![vec!["/doc".to_string()], vec!["/doc".to_string()]];
        let mut server =
            EventLoopServer::new(k, pid, scripts, None, EventLoopConfig::default());
        // Client 0 disconnects before issuing its request: injection
        // must fail that connection, not panic the server.
        let sock0 = server.sock(0);
        server
            .kernel_mut()
            .socket_peer_close(pid, sock0)
            .expect("open socket");
        let (report, _) = server.run();
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.completed, 1, "the other client is served");
    }

    #[test]
    fn peer_close_mid_response_fails_only_that_connection() {
        let (k, pid) = rig(&[("/doc", 200_000)]);
        let scripts = vec![vec!["/doc".to_string()]; 2];
        let cfg = EventLoopConfig {
            drain_per_tick: 16 * 1024,
            ..EventLoopConfig::default()
        };
        let mut server = EventLoopServer::new(k, pid, scripts, None, cfg);
        // A few ticks in, client 0 disconnects mid-stream.
        for _ in 0..3 {
            server.tick();
        }
        let sock0 = server.sock(0);
        server
            .kernel_mut()
            .socket_peer_close(pid, sock0)
            .expect("open socket");
        let (report, kernel) = server.run();
        assert_eq!(report.stats.failed, 1, "the dead peer's request fails");
        assert_eq!(report.stats.completed, 1, "the other connection finishes");
        assert_eq!(report.stats.blocked_io, 0);
        // The failed transmission's pin was released.
        let file = kernel.store.lookup("/doc").unwrap();
        assert_eq!(kernel.cache.pins(&CacheKey::whole(file)), 0);
    }
}

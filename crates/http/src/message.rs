//! HTTP/1.0 and HTTP/1.1 request/response formatting and parsing.
//!
//! Real bytes: the end-to-end tests drive requests through parsing, and
//! response headers are the "internally generated data" whose checksum
//! Flash-Lite still computes per response (§3.10).
//!
//! Requests reassembled from the network arrive as buffer aggregates;
//! [`parse_request_agg`] scans them run-by-run (a carry buffer is
//! touched only when a header line straddles a buffer boundary), so the
//! steady-state parse never materializes the request or walks it per
//! byte through `byte_at`.

use iolite_buf::Aggregate;

/// HTTP method of a parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a document (the classic serving path).
    Get,
    /// Upload a document body (the write path's zero-copy ingest).
    Put,
    /// Body-carrying submit; parsed like `PUT` (the server decides
    /// what, if anything, to do with it).
    Post,
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request path ("/f00042").
    pub path: String,
    /// Whether the connection should persist (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
    /// Declared body length (`Content-Length`); 0 when absent.
    pub content_length: u64,
}

/// Formats a GET request.
pub fn request_bytes(path: &str, keep_alive: bool) -> Vec<u8> {
    let version = if keep_alive { "1.1" } else { "1.0" };
    let conn = if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        ""
    };
    format!(
        "GET {path} HTTP/{version}\r\nHost: server.rice.edu\r\nUser-Agent: iolite-client/1.0\r\n{conn}\r\n"
    )
    .into_bytes()
}

/// Formats a PUT request carrying `body` — the upload the write path
/// ingests zero-copy on the server side.
pub fn put_request_bytes(path: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let version = if keep_alive { "1.1" } else { "1.0" };
    let conn = if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        ""
    };
    let mut req = format!(
        "PUT {path} HTTP/{version}\r\nHost: server.rice.edu\r\nUser-Agent: iolite-client/1.0\r\nContent-Length: {len}\r\n{conn}\r\n",
        len = body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

/// Incremental request parser fed one header line at a time.
#[derive(Default)]
struct LineParser {
    request: Option<Request>,
    seen_first: bool,
    failed: bool,
}

impl LineParser {
    /// Feeds one header line; returns `true` when the empty terminator
    /// line was consumed (header complete — stop feeding; any bytes
    /// after it are the body, never header lines).
    fn feed_line(&mut self, line: &[u8]) -> bool {
        if self.seen_first && line.is_empty() {
            return true;
        }
        if self.failed {
            return false;
        }
        let Ok(text) = std::str::from_utf8(line) else {
            self.failed = true;
            return false;
        };
        if !self.seen_first {
            self.seen_first = true;
            let mut parts = text.split(' ');
            let (Some(verb), Some(path), Some(version)) =
                (parts.next(), parts.next(), parts.next())
            else {
                self.failed = true;
                return false;
            };
            let method = match verb {
                "GET" => Method::Get,
                "PUT" => Method::Put,
                "POST" => Method::Post,
                _ => {
                    self.failed = true;
                    return false;
                }
            };
            self.request = Some(Request {
                method,
                path: path.to_string(),
                keep_alive: version == "HTTP/1.1", // Default in 1.1.
                content_length: 0,
            });
            return false;
        }
        if line.len() >= 11 && line[..11].eq_ignore_ascii_case(b"connection:") {
            if let Some(req) = &mut self.request {
                req.keep_alive = contains_ignore_case(line, b"keep-alive");
            }
        }
        if line.len() >= 15 && line[..15].eq_ignore_ascii_case(b"content-length:") {
            match text[15..].trim().parse::<u64>() {
                Ok(n) => {
                    if let Some(req) = &mut self.request {
                        req.content_length = n;
                    }
                }
                // A declared length the server cannot trust poisons
                // everything downstream (how many body bytes to
                // ingest?) — reject the request outright.
                Err(_) => self.failed = true,
            }
        }
        false
    }

    fn finish(self) -> Option<Request> {
        if self.failed {
            None
        } else {
            self.request
        }
    }
}

/// ASCII-case-insensitive substring search (header values are ASCII).
fn contains_ignore_case(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

/// Drives a [`LineParser`] over CRLF-separated lines delivered as
/// arbitrary byte runs, stopping at the header terminator. Only lines
/// that straddle a run boundary are copied into the carry buffer;
/// lines within one run are borrowed.
///
/// Returns the parse result plus the byte offset just past the
/// terminator — where the body starts — when the terminator was seen.
fn parse_lines<'a>(
    chunks: impl Iterator<Item = &'a [u8]>,
) -> (Option<Request>, Option<u64>) {
    let mut parser = LineParser::default();
    // lint:allow(hot-path-alloc) — the documented carry buffer: only
    // lines straddling a run boundary are copied (see fn docs).
    let mut carry: Vec<u8> = Vec::new();
    // Bytes scanned so far (lines and their terminators, carried
    // fragments included at carry time).
    let mut offset: u64 = 0;
    for chunk in chunks {
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (line, after) = rest.split_at(nl);
            rest = &after[1..];
            offset += nl as u64 + 1;
            let done = if carry.is_empty() {
                parser.feed_line(strip_cr(line))
            } else {
                carry.extend_from_slice(line);
                let whole = std::mem::take(&mut carry);
                parser.feed_line(strip_cr(&whole))
            };
            if done {
                return (parser.finish(), Some(offset));
            }
        }
        if !rest.is_empty() {
            offset += rest.len() as u64;
            carry.extend_from_slice(rest);
        }
    }
    if !carry.is_empty() {
        parser.feed_line(strip_cr(&carry));
    }
    (parser.finish(), None)
}

fn strip_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Full-message truncation check shared by [`parse_request`] and
/// [`parse_request_agg`]: a declared body must be entirely present.
/// Header-only requests keep the historical leniency (a missing final
/// blank line still parses).
fn complete(req: Request, body_at: Option<u64>, total: u64) -> Option<Request> {
    if req.content_length == 0 {
        return Some(req);
    }
    let start = body_at?;
    (total - start >= req.content_length).then_some(req)
}

/// Parses a complete request; returns `None` on malformed input,
/// including a declared `Content-Length` the buffer does not cover
/// (truncated body).
///
/// Lines are terminated by CRLF; per RFC 9112 §2.2's allowance for
/// lenient recipients, a bare LF is also accepted as a terminator.
pub fn parse_request(bytes: &[u8]) -> Option<Request> {
    let (req, body_at) = parse_lines(std::iter::once(bytes));
    complete(req?, body_at, bytes.len() as u64)
}

/// Parses a complete request straight out of a (possibly fragmented)
/// aggregate — same contract as [`parse_request`]. No materialization,
/// no per-byte indexing: the scanner walks the aggregate's byte runs.
pub fn parse_request_agg(agg: &Aggregate) -> Option<Request> {
    let (req, body_at) = parse_lines(agg.chunks());
    complete(req?, body_at, agg.len())
}

/// Parses just the request *head*, returning the request and the byte
/// offset where the body starts. `None` until the header terminator
/// has arrived (or on malformed headers) — the streaming server's
/// entry point: it splits the body out of its receive aggregate at the
/// returned offset, zero-copy, once `content_length` more bytes are in.
pub fn parse_request_head(bytes: &[u8]) -> Option<(Request, u64)> {
    let (req, body_at) = parse_lines(std::iter::once(bytes));
    Some((req?, body_at?))
}

/// Aggregate-run variant of [`parse_request_head`].
pub fn parse_request_head_agg(agg: &Aggregate) -> Option<(Request, u64)> {
    let (req, body_at) = parse_lines(agg.chunks());
    Some((req?, body_at?))
}

/// Formats a 200 response header for a body of `content_len` bytes.
///
/// Sized realistically (~170 bytes): headers ride in their own buffer
/// and are checksummed per response even under checksum caching.
pub fn response_header(content_len: u64, keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 200 OK\r\nServer: Flash/IO-Lite\r\nDate: Thu, 01 Jan 1998 00:00:00 GMT\r\nContent-Type: text/html\r\nContent-Length: {content_len}\r\nConnection: {conn}\r\n\r\n"
    )
    .into_bytes()
}

/// Formats a 404 response.
pub fn not_found() -> Vec<u8> {
    // lint:allow(hot-path-alloc) — 45-byte constant on the error
    // path; not a document copy.
    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec()
}

/// Formats the 201 response acknowledging a completed PUT.
pub fn created(keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!("HTTP/1.1 201 Created\r\nContent-Length: 0\r\nConnection: {conn}\r\n\r\n")
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_http10() {
        let bytes = request_bytes("/index.html", false);
        let req = parse_request(&bytes).unwrap();
        assert_eq!(req.path, "/index.html");
        assert!(!req.keep_alive);
    }

    #[test]
    fn request_roundtrip_http11() {
        let bytes = request_bytes("/a", true);
        let req = parse_request(&bytes).unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request(b"BREW / HTCPCP/1.0\r\n\r\n").is_none());
        assert!(parse_request(&[0xFF, 0xFE]).is_none());
        assert!(parse_request(b"").is_none());
    }

    #[test]
    fn body_carrying_methods_parse() {
        // POST is a real method now, not garbage.
        let req = parse_request(b"POST / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.content_length, 0);
        assert!(!req.keep_alive);
        // A PUT round-trips through the formatter with its body.
        let body = b"hello, write path";
        let bytes = put_request_bytes("/upload", body, true);
        let req = parse_request(&bytes).unwrap();
        assert_eq!(req.method, Method::Put);
        assert_eq!(req.path, "/upload");
        assert_eq!(req.content_length, body.len() as u64);
        assert!(req.keep_alive);
        // The head parse hands back exactly the body's offset.
        let (head, body_at) = parse_request_head(&bytes).unwrap();
        assert_eq!(head, req);
        assert_eq!(&bytes[body_at as usize..], body);
    }

    #[test]
    fn malformed_content_length_rejected() {
        for bad in ["abc", "-1", "1 2", "", "18446744073709551616"] {
            let raw = format!("PUT /f HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nxx");
            assert!(parse_request(raw.as_bytes()).is_none(), "CL {bad:?}");
        }
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = put_request_bytes("/f", b"0123456789", true);
        // The head alone parses...
        assert!(parse_request_head(&bytes[..bytes.len() - 10]).is_some());
        // ...but the full-message parse wants every declared byte.
        assert!(parse_request(&bytes[..bytes.len() - 1]).is_none());
        assert!(parse_request(&bytes[..bytes.len() - 10]).is_none());
        assert!(parse_request(&bytes).is_some());
        // Declared body, header terminator never arrived: truncated.
        assert!(parse_request(b"PUT /f HTTP/1.1\r\nContent-Length: 3\r\n").is_none());
    }

    #[test]
    fn aggregate_parse_matches_contiguous_parse() {
        use iolite_buf::{Acl, BufferPool, PoolId};
        let cases: Vec<Vec<u8>> = vec![
            request_bytes("/f00042", true),
            request_bytes("/index.html", false),
            b"POST / HTTP/1.0\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.0\r\nCONNECTION: Keep-Alive\r\n\r\n".to_vec(),
            // Bodies never reach the header scanner: binary bytes and
            // CRLF pairs inside the body must not fail the parse.
            put_request_bytes("/up", &[0xFF, 0x00, b'\r', b'\n', b'\r', b'\n', 0x7F], true),
            put_request_bytes("/up2", b"plain text body", false),
            // Truncated body: whole-message parse rejects, head parses.
            b"PUT /t HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc".to_vec(),
            vec![0xFF, 0xFE],
            Vec::new(),
        ];
        // Fragment every request aggressively: lines straddle buffers.
        for chunk_size in [3usize, 7, 64, 4096] {
            let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk_size);
            for case in &cases {
                let agg = Aggregate::from_bytes(&pool, case);
                assert_eq!(
                    parse_request_agg(&agg),
                    parse_request(case),
                    "chunk {chunk_size}, case {:?}",
                    String::from_utf8_lossy(case)
                );
                assert_eq!(
                    parse_request_head_agg(&agg),
                    parse_request_head(case),
                    "head: chunk {chunk_size}, case {:?}",
                    String::from_utf8_lossy(case)
                );
            }
        }
    }

    #[test]
    fn response_header_contains_length() {
        let h = response_header(12345, true);
        let text = String::from_utf8(h).unwrap();
        assert!(text.contains("Content-Length: 12345"));
        assert!(text.contains("keep-alive"));
        assert!(text.ends_with("\r\n\r\n"));
        let h2 = String::from_utf8(response_header(1, false)).unwrap();
        assert!(h2.contains("close"));
    }

    #[test]
    fn header_size_is_realistic() {
        let h = response_header(200_000, false);
        assert!(h.len() > 120 && h.len() < 300, "len {}", h.len());
    }

    #[test]
    fn not_found_parses_as_http() {
        let n = not_found();
        assert!(n.starts_with(b"HTTP/1.1 404"));
    }

    #[test]
    fn created_parses_as_http() {
        let c = created(true);
        assert!(c.starts_with(b"HTTP/1.1 201"));
        assert!(String::from_utf8(c).unwrap().ends_with("\r\n\r\n"));
        assert!(String::from_utf8(created(false)).unwrap().contains("close"));
    }
}

//! HTTP/1.0 and HTTP/1.1 request/response formatting and parsing.
//!
//! Real bytes: the end-to-end tests drive requests through parsing, and
//! response headers are the "internally generated data" whose checksum
//! Flash-Lite still computes per response (§3.10).

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request path ("/f00042").
    pub path: String,
    /// Whether the connection should persist (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
}

/// Formats a GET request.
pub fn request_bytes(path: &str, keep_alive: bool) -> Vec<u8> {
    let version = if keep_alive { "1.1" } else { "1.0" };
    let conn = if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        ""
    };
    format!(
        "GET {path} HTTP/{version}\r\nHost: server.rice.edu\r\nUser-Agent: iolite-client/1.0\r\n{conn}\r\n"
    )
    .into_bytes()
}

/// Parses a request; returns `None` on malformed input.
pub fn parse_request(bytes: &[u8]) -> Option<Request> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?;
    if method != "GET" {
        return None;
    }
    let path = parts.next()?.to_string();
    let version = parts.next()?;
    let http11 = version == "HTTP/1.1";
    let mut keep_alive = http11; // Default in 1.1.
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("connection:") {
            keep_alive = lower.contains("keep-alive");
        }
    }
    Some(Request { path, keep_alive })
}

/// Formats a 200 response header for a body of `content_len` bytes.
///
/// Sized realistically (~170 bytes): headers ride in their own buffer
/// and are checksummed per response even under checksum caching.
pub fn response_header(content_len: u64, keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 200 OK\r\nServer: Flash/IO-Lite\r\nDate: Thu, 01 Jan 1998 00:00:00 GMT\r\nContent-Type: text/html\r\nContent-Length: {content_len}\r\nConnection: {conn}\r\n\r\n"
    )
    .into_bytes()
}

/// Formats a 404 response.
pub fn not_found() -> Vec<u8> {
    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_http10() {
        let bytes = request_bytes("/index.html", false);
        let req = parse_request(&bytes).unwrap();
        assert_eq!(req.path, "/index.html");
        assert!(!req.keep_alive);
    }

    #[test]
    fn request_roundtrip_http11() {
        let bytes = request_bytes("/a", true);
        let req = parse_request(&bytes).unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request(b"POST / HTTP/1.0\r\n\r\n").is_none());
        assert!(parse_request(&[0xFF, 0xFE]).is_none());
        assert!(parse_request(b"").is_none());
    }

    #[test]
    fn response_header_contains_length() {
        let h = response_header(12345, true);
        let text = String::from_utf8(h).unwrap();
        assert!(text.contains("Content-Length: 12345"));
        assert!(text.contains("keep-alive"));
        assert!(text.ends_with("\r\n\r\n"));
        let h2 = String::from_utf8(response_header(1, false)).unwrap();
        assert!(h2.contains("close"));
    }

    #[test]
    fn header_size_is_realistic() {
        let h = response_header(200_000, false);
        assert!(h.len() > 120 && h.len() < 300, "len {}", h.len());
    }

    #[test]
    fn not_found_parses_as_http() {
        let n = not_found();
        assert!(n.starts_with(b"HTTP/1.1 404"));
    }
}

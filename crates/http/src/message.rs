//! HTTP/1.0 and HTTP/1.1 request/response formatting and parsing.
//!
//! Real bytes: the end-to-end tests drive requests through parsing, and
//! response headers are the "internally generated data" whose checksum
//! Flash-Lite still computes per response (§3.10).
//!
//! Requests reassembled from the network arrive as buffer aggregates;
//! [`parse_request_agg`] scans them run-by-run (a carry buffer is
//! touched only when a header line straddles a buffer boundary), so the
//! steady-state parse never materializes the request or walks it per
//! byte through `byte_at`.

use iolite_buf::Aggregate;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request path ("/f00042").
    pub path: String,
    /// Whether the connection should persist (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
}

/// Formats a GET request.
pub fn request_bytes(path: &str, keep_alive: bool) -> Vec<u8> {
    let version = if keep_alive { "1.1" } else { "1.0" };
    let conn = if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        ""
    };
    format!(
        "GET {path} HTTP/{version}\r\nHost: server.rice.edu\r\nUser-Agent: iolite-client/1.0\r\n{conn}\r\n"
    )
    .into_bytes()
}

/// Incremental request parser fed one header line at a time.
#[derive(Default)]
struct LineParser {
    request: Option<Request>,
    seen_first: bool,
    failed: bool,
}

impl LineParser {
    fn feed_line(&mut self, line: &[u8]) {
        if self.failed {
            return;
        }
        let Ok(text) = std::str::from_utf8(line) else {
            self.failed = true;
            return;
        };
        if !self.seen_first {
            self.seen_first = true;
            let mut parts = text.split(' ');
            let (Some("GET"), Some(path), Some(version)) =
                (parts.next(), parts.next(), parts.next())
            else {
                self.failed = true;
                return;
            };
            self.request = Some(Request {
                path: path.to_string(),
                keep_alive: version == "HTTP/1.1", // Default in 1.1.
            });
            return;
        }
        if line.len() >= 11 && line[..11].eq_ignore_ascii_case(b"connection:") {
            if let Some(req) = &mut self.request {
                req.keep_alive = contains_ignore_case(line, b"keep-alive");
            }
        }
    }

    fn finish(self) -> Option<Request> {
        if self.failed {
            None
        } else {
            self.request
        }
    }
}

/// ASCII-case-insensitive substring search (header values are ASCII).
fn contains_ignore_case(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

/// Drives a [`LineParser`] over CRLF-separated lines delivered as
/// arbitrary byte runs. Only lines that straddle a run boundary are
/// copied into the carry buffer; lines within one run are borrowed.
fn parse_lines<'a>(chunks: impl Iterator<Item = &'a [u8]>) -> Option<Request> {
    let mut parser = LineParser::default();
    // lint:allow(hot-path-alloc) — the documented carry buffer: only
    // lines straddling a run boundary are copied (see fn docs).
    let mut carry: Vec<u8> = Vec::new();
    for chunk in chunks {
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (line, after) = rest.split_at(nl);
            rest = &after[1..];
            if carry.is_empty() {
                parser.feed_line(strip_cr(line));
            } else {
                carry.extend_from_slice(line);
                let whole = std::mem::take(&mut carry);
                parser.feed_line(strip_cr(&whole));
            }
        }
        if !rest.is_empty() {
            carry.extend_from_slice(rest);
        }
    }
    if !carry.is_empty() {
        parser.feed_line(strip_cr(&carry));
    }
    parser.finish()
}

fn strip_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Parses a request; returns `None` on malformed input.
///
/// Lines are terminated by CRLF; per RFC 9112 §2.2's allowance for
/// lenient recipients, a bare LF is also accepted as a terminator.
pub fn parse_request(bytes: &[u8]) -> Option<Request> {
    parse_lines(std::iter::once(bytes))
}

/// Parses a request straight out of a (possibly fragmented) aggregate —
/// the zero-copy receive path's header scan. No materialization, no
/// per-byte indexing: the scanner walks the aggregate's byte runs.
pub fn parse_request_agg(agg: &Aggregate) -> Option<Request> {
    parse_lines(agg.chunks())
}

/// Formats a 200 response header for a body of `content_len` bytes.
///
/// Sized realistically (~170 bytes): headers ride in their own buffer
/// and are checksummed per response even under checksum caching.
pub fn response_header(content_len: u64, keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 200 OK\r\nServer: Flash/IO-Lite\r\nDate: Thu, 01 Jan 1998 00:00:00 GMT\r\nContent-Type: text/html\r\nContent-Length: {content_len}\r\nConnection: {conn}\r\n\r\n"
    )
    .into_bytes()
}

/// Formats a 404 response.
pub fn not_found() -> Vec<u8> {
    // lint:allow(hot-path-alloc) — 45-byte constant on the error
    // path; not a document copy.
    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_http10() {
        let bytes = request_bytes("/index.html", false);
        let req = parse_request(&bytes).unwrap();
        assert_eq!(req.path, "/index.html");
        assert!(!req.keep_alive);
    }

    #[test]
    fn request_roundtrip_http11() {
        let bytes = request_bytes("/a", true);
        let req = parse_request(&bytes).unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request(b"POST / HTTP/1.0\r\n\r\n").is_none());
        assert!(parse_request(&[0xFF, 0xFE]).is_none());
        assert!(parse_request(b"").is_none());
    }

    #[test]
    fn aggregate_parse_matches_contiguous_parse() {
        use iolite_buf::{Acl, BufferPool, PoolId};
        let cases: Vec<Vec<u8>> = vec![
            request_bytes("/f00042", true),
            request_bytes("/index.html", false),
            b"POST / HTTP/1.0\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.0\r\nCONNECTION: Keep-Alive\r\n\r\n".to_vec(),
            vec![0xFF, 0xFE],
            Vec::new(),
        ];
        // Fragment every request aggressively: lines straddle buffers.
        for chunk_size in [3usize, 7, 64, 4096] {
            let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), chunk_size);
            for case in &cases {
                let agg = Aggregate::from_bytes(&pool, case);
                assert_eq!(
                    parse_request_agg(&agg),
                    parse_request(case),
                    "chunk {chunk_size}, case {:?}",
                    String::from_utf8_lossy(case)
                );
            }
        }
    }

    #[test]
    fn response_header_contains_length() {
        let h = response_header(12345, true);
        let text = String::from_utf8(h).unwrap();
        assert!(text.contains("Content-Length: 12345"));
        assert!(text.contains("keep-alive"));
        assert!(text.ends_with("\r\n\r\n"));
        let h2 = String::from_utf8(response_header(1, false)).unwrap();
        assert!(h2.contains("close"));
    }

    #[test]
    fn header_size_is_realistic() {
        let h = response_header(200_000, false);
        assert!(h.len() > 120 && h.len() < 300, "len {}", h.len());
    }

    #[test]
    fn not_found_parses_as_http() {
        let n = not_found();
        assert!(n.starts_with(b"HTTP/1.1 404"));
    }
}

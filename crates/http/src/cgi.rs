//! FastCGI: persistent third-party CGI processes (§3.10, §5.3).
//!
//! "A test CGI program, when receiving a request, sends a 'dynamic'
//! document of a given size from its memory to the Web server process
//! via a UNIX pipe; the server transmits the data on the client's
//! connection."
//!
//! The CGI process is a separate protection domain: conventional
//! servers pay two pipe copies per byte plus context switches per
//! fill/drain round; Flash-Lite passes the CGI's buffer aggregates by
//! reference (and, because the CGI serves the same in-memory document
//! repeatedly, the checksum cache keeps working end-to-end — the paper's
//! fault-isolation-without-copies result).
//!
//! The pipe is a *kernel* pipe addressed by descriptors — the CGI holds
//! its write end, the server its read end — and it carries the CGI
//! pool's ACL, so the kernel itself enforces §3.10's isolation on every
//! zero-copy transfer (a sibling CGI's domain would get
//! `PermissionDenied`, not a mapping).

use iolite_buf::{Acl, Aggregate, BufferPool};
use iolite_core::{short_ok, Charge, CostCategory, Fd, IolError, Kernel, Pid};
use iolite_ipc::PipeMode;

use crate::message::response_header;
use crate::server::{RequestCosts, ServerKind};

/// One persistent (FastCGI-style) CGI process.
pub struct CgiProcess {
    /// The CGI's own protection domain.
    pub pid: Pid,
    /// The CGI's buffer pool, whose ACL admits the server process
    /// ("the server process and every CGI application instance have
    /// separate buffer pools with different ACLs", §3.10).
    pub pool: BufferPool,
    /// The in-memory dynamic document it serves.
    doc: Aggregate,
    /// The CGI-side write end of the request pipe.
    wfd: Fd,
    /// The server-side read end of the request pipe.
    server_rfd: Fd,
}

impl CgiProcess {
    /// Spawns a CGI process serving `size` bytes of in-memory content,
    /// wired to `server_pid` by an ACL-carrying kernel pipe.
    pub fn new(kernel: &mut Kernel, server_pid: Pid, size: u64, mode: PipeMode) -> Self {
        let pid = kernel.spawn("cgi");
        let acl = Acl::with_domains(&[pid.domain(), server_pid.domain()]);
        let pool = kernel.create_pool(acl.clone());
        // Deterministic "dynamic" content, generated once and kept in
        // the CGI's memory across requests (FastCGI persistence).
        let mut content = vec![0u8; size as usize];
        for (i, b) in content.iter_mut().enumerate() {
            *b = (i as u64).wrapping_mul(2654435761).to_le_bytes()[0];
        }
        let doc = Aggregate::from_bytes(&pool, &content);
        let (wfd, server_rfd) = kernel.pipe_between_with_acl(pid, server_pid, mode, acl);
        CgiProcess {
            pid,
            pool,
            doc,
            wfd,
            server_rfd,
        }
    }

    /// The document the CGI serves.
    pub fn document(&self) -> &Aggregate {
        &self.doc
    }

    /// The CGI-side write descriptor (tests drive the pipe directly).
    pub fn write_fd(&self) -> Fd {
        self.wfd
    }

    /// The server-side read descriptor.
    pub fn server_read_fd(&self) -> Fd {
        self.server_rfd
    }

    /// Handles one request end-to-end: pipe transfer into the server,
    /// then transmission on the client's socket descriptor. Returns the
    /// request's cost decomposition.
    ///
    /// # Errors
    ///
    /// A pipe or socket peer disappearing mid-transfer surfaces as the
    /// underlying [`IolError`] — [`IolError::Closed`] (EPIPE) when the
    /// server hung up the read end or the client connection died,
    /// [`IolError::PermissionDenied`] if the pipe's ACL refuses the
    /// reader. The driver turns this into a *failed request*; a dead
    /// peer must never take the whole server down.
    pub fn serve(
        &mut self,
        kernel: &mut Kernel,
        kind: ServerKind,
        sock: Fd,
        server_pid: Pid,
    ) -> Result<RequestCosts, IolError> {
        let mut rc = RequestCosts::default();
        // Server: parse + bookkeeping + CGI dispatch (forward the
        // request, wake the CGI process: two context switches).
        rc.parts.push((
            CostCategory::Request,
            Charge::us(kernel.cost.http_parse_us + kernel.cost.server_fixed_us),
        ));
        rc.parts.push((
            CostCategory::Request,
            Charge::us(kernel.cost.cgi_dispatch_us),
        ));
        if kind == ServerKind::FlashLite {
            rc.parts.push((
                CostCategory::Request,
                Charge::us(kernel.cost.iol_request_extra_us),
            ));
        }
        rc.parts
            .push((CostCategory::ContextSwitch, kernel.cost.context_switches(2)));
        kernel.context_switch(2);

        // Transfer the document through the pipe in fill/drain rounds:
        // the CGI writes its descriptor, the server reads its own, and
        // every charge (syscalls, copies, ACL-gated first-time
        // mappings) arrives in the IoOutcomes.
        let mut received = Aggregate::empty();
        let mut offset = 0u64;
        let total = self.doc.len();
        let mut pipe_cpu = Charge::ZERO;
        while offset < total {
            let remaining = self.doc.range(offset, total - offset).expect("in range");
            // A short write is flow control; a closed pipe (the server
            // hung up its read end) is a failed request, not a panic.
            let (accepted, wout) = short_ok(kernel.iol_write_fd(self.pid, self.wfd, &remaining))?;
            pipe_cpu += wout.charge;
            offset += accepted;
            // Reader drains what the writer queued.
            match kernel.iol_read_fd(server_pid, self.server_rfd, u64::MAX) {
                Ok((chunk, rout)) => {
                    pipe_cpu += rout.charge;
                    received.append(&chunk);
                }
                Err(IolError::WouldBlock { outcome }) => pipe_cpu += outcome.charge,
                Err(e) => return Err(e),
            }
            if offset < total {
                // The producer blocked on a full pipe: switch back and
                // forth.
                pipe_cpu += kernel.cost.context_switches(2);
                kernel.context_switch(2);
            }
        }
        rc.parts.push((CostCategory::Copy, pipe_cpu));

        // Server sends the received data on the client's socket.
        let header = response_header(received.len(), true);
        match kind {
            ServerKind::FlashLite => {
                let mut response =
                    Aggregate::from_bytes(kernel.process(server_pid).pool(), &header);
                response.append(&received);
                rc.response_bytes = response.len();
                let (_, wout) = kernel.iol_write_fd(server_pid, sock, &response)?;
                let send = wout.net.expect("socket writes carry SendOutcome");
                rc.parts
                    .push((CostCategory::Syscall, Charge::us(kernel.cost.syscall_us)));
                rc.parts.push((
                    CostCategory::Checksum,
                    kernel.cost.wire_checksum(send.csum_bytes_computed),
                ));
                rc.parts
                    .push((CostCategory::Packet, kernel.cost.packets(send.segments)));
                rc.wire_bytes = rc.response_bytes + send.header_bytes;
                rc.owned_sock_bytes = send.owned_occupancy;
            }
            ServerKind::Flash | ServerKind::Apache => {
                let response_len = header.len() as u64 + received.len();
                rc.response_bytes = response_len;
                rc.parts
                    .push((CostCategory::Syscall, Charge::us(kernel.cost.syscall_us)));
                let (send, _) = kernel.socket_send_accounted(server_pid, sock, response_len)?;
                rc.parts.push((
                    CostCategory::Copy,
                    kernel.cost.socket_copy(send.bytes_copied),
                ));
                rc.parts.push((
                    CostCategory::Checksum,
                    kernel.cost.wire_checksum(send.csum_bytes_computed),
                ));
                rc.parts
                    .push((CostCategory::Packet, kernel.cost.packets(send.segments)));
                rc.wire_bytes = response_len + send.header_bytes;
                rc.owned_sock_bytes = send.owned_occupancy;
                if kind == ServerKind::Apache {
                    rc.parts.push((
                        CostCategory::ProcessModel,
                        Charge::us(
                            kernel.cost.apache_request_extra_us
                                + response_len as f64 * kernel.cost.apache_extra_ns_per_byte
                                    / 1000.0,
                        ),
                    ));
                }
            }
        }
        Ok(rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;
    use iolite_net::{BufferMode, DEFAULT_MSS, DEFAULT_TSS};

    fn run(kind: ServerKind, size: u64) -> (Kernel, RequestCosts, RequestCosts) {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        let mode = if kind == ServerKind::FlashLite {
            PipeMode::ZeroCopy
        } else {
            PipeMode::Copy
        };
        let mut cgi = CgiProcess::new(&mut k, server, size, mode);
        let sock = k.socket_create(server, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);
        let first = cgi.serve(&mut k, kind, sock, server).expect("healthy pipe");
        let warm = cgi.serve(&mut k, kind, sock, server).expect("healthy pipe");
        (k, first, warm)
    }

    #[test]
    fn conventional_cgi_copies_four_times_per_byte() {
        // Pipe in, pipe out, socket copy — and the checksum on top.
        let (k, _, warm) = run(ServerKind::Flash, 100_000);
        // At least 3 copies of the 100KB document.
        assert!(k.metrics.bytes_copied >= 2 * 3 * 100_000);
        assert!(warm.cpu_total() > k.cost.copy(300_000).time);
    }

    #[test]
    fn iolite_cgi_is_copy_free_and_checksum_cached() {
        let (k, _, warm) = run(ServerKind::FlashLite, 100_000);
        assert_eq!(k.metrics.bytes_copied, 0, "no copies anywhere");
        // Second request: body checksum cached; only headers computed.
        let csum: iolite_sim::SimTime = warm
            .parts
            .iter()
            .filter(|(c, _)| *c == CostCategory::Checksum)
            .map(|(_, c)| c.time)
            .fold(iolite_sim::SimTime::ZERO, |a, b| a + b);
        assert!(csum < k.cost.checksum(1000).time, "{csum}");
        assert!(k.metrics.bytes_checksum_cached >= 100_000);
    }

    #[test]
    fn cgi_data_arrives_intact() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        let mut cgi = CgiProcess::new(&mut k, server, 10_000, PipeMode::ZeroCopy);
        let expected = cgi.document().to_vec();
        let sock = k.socket_create(server, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let rc = cgi.serve(&mut k, ServerKind::FlashLite, sock, server).expect("healthy pipe");
        assert_eq!(
            rc.response_bytes as usize,
            expected.len() + response_header(10_000, true).len()
        );
    }

    #[test]
    fn iolite_cgi_cheaper_than_conventional() {
        let (_, _, warm_fl) = run(ServerKind::FlashLite, 200_000);
        let (_, _, warm_f) = run(ServerKind::Flash, 200_000);
        assert!(warm_fl.cpu_total().as_us() * 1.5 < warm_f.cpu_total().as_us());
    }

    #[test]
    fn warm_iolite_cgi_needs_no_new_mappings() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        let mut cgi = CgiProcess::new(&mut k, server, 100_000, PipeMode::ZeroCopy);
        let sock = k.socket_create(server, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        cgi.serve(&mut k, ServerKind::FlashLite, sock, server).expect("healthy pipe");
        let mapped_after_first = k.window.stats().pages_mapped;
        cgi.serve(&mut k, ServerKind::FlashLite, sock, server).expect("healthy pipe");
        assert_eq!(
            k.window.stats().pages_mapped,
            mapped_after_first,
            "steady state rides persistent mappings"
        );
    }

    /// Regression: the server hanging up its read end mid-stream used
    /// to panic the CGI loop (`expect("cgi pipe stays open")`); it must
    /// surface as `Closed` (EPIPE) so the driver can fail the one
    /// request and keep serving.
    #[test]
    fn last_reader_close_fails_the_request_instead_of_panicking() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        // 150KB > the 64KB pipe: the transfer needs several fill/drain
        // rounds, so the hang-up lands mid-stream.
        let mut cgi = CgiProcess::new(&mut k, server, 150_000, PipeMode::ZeroCopy);
        let sock = k.socket_create(server, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        // The server's only read-end descriptor disappears.
        k.close_fd(server, cgi.server_read_fd()).unwrap();
        let err = cgi.serve(&mut k, ServerKind::FlashLite, sock, server);
        assert_eq!(err.unwrap_err(), IolError::Closed, "EPIPE, not a panic");
        // The CGI process itself survives to serve a healthy pipe later.
        let mut healthy = CgiProcess::new(&mut k, server, 10_000, PipeMode::ZeroCopy);
        assert!(healthy.serve(&mut k, ServerKind::FlashLite, sock, server).is_ok());
    }

    /// The kernel pipe carries the CGI pool's ACL: the server's domain
    /// is admitted, so the transfer maps; the isolation itself is
    /// pinned down in `tests/receive_path.rs` against a sibling CGI.
    #[test]
    fn pipe_transfers_are_acl_gated() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        let mut cgi = CgiProcess::new(&mut k, server, 5_000, PipeMode::ZeroCopy);
        let sock = k.socket_create(server, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let denials_before = k.window.stats().denials;
        cgi.serve(&mut k, ServerKind::FlashLite, sock, server).expect("healthy pipe");
        assert_eq!(k.window.stats().denials, denials_before, "server admitted");
        assert!(cgi.pool.acl().allows(server.domain()));
    }
}

//! Shared-nothing thread-per-core serving: N shards, each owning its
//! own [`Kernel`] (state, unified cache, fd table, sockets) and running
//! its own [`EventLoopServer`] on its own OS thread.
//!
//! Connections are routed to shards by mixing the **full 64-bit**
//! connection id through [`shard_of_conn`]; documents have a single
//! home shard ([`iolite_fs::home_shard`]) that owns their disk reads
//! and authoritative cache entry. A shard that needs a remote document
//! sends a typed [`ShardMsg`] over the bounded fabric and parks the
//! connection — no shard ever takes a lock on another's state.
//!
//! # Termination protocol
//!
//! A shard that exhausts its own scripts reports to the coordinator and
//! keeps answering other shards' remote reads (blocking on its inbox,
//! never spinning). Once *every* shard has reported, the coordinator
//! broadcasts [`ShardMsg::Shutdown`]. No `RemoteRead` can arrive after
//! `Shutdown` because shutdown implies all connections everywhere are
//! done.
//!
//! # The scaling metric
//!
//! The machine under this simulation has however many cores it has; the
//! serving model's parallelism is expressed in *simulated* CPU. A
//! sharded run's cost is the parallel makespan — the largest per-shard
//! simulated CPU time — so [`ShardedReport::requests_per_cpu_sec`] is
//! total completed requests over that maximum. A perfectly balanced
//! 4-shard fleet does 4× the work per makespan second; skew (one shard
//! homing the Zipf head) shows up directly as
//! [`ShardedReport::imbalance`].

use std::sync::mpsc::sync_channel;
use std::thread;

use iolite_core::{
    shard_of_conn, ConnId, CostModel, Kernel, Metrics, Pid, ShardFabric, ShardMsg,
};
use iolite_fs::{CacheOwnership, Policy};
use iolite_sim::SimTime;

use crate::event_loop::{EventLoopConfig, EventLoopServer, LoopReport, ShardContext};

/// Configuration for one sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards (threads, kernels). Must be ≥ 1.
    pub shards: usize,
    /// What shards do with remotely fetched bytes.
    pub ownership: CacheOwnership,
    /// Cost model for every shard's kernel.
    pub cost: CostModel,
    /// Cache policy for every shard's kernel.
    pub policy: Policy,
    /// Record each shard's journal (for per-shard replay checks).
    pub journal: bool,
    /// Per-shard event-loop configuration.
    pub loop_cfg: EventLoopConfig,
}

/// One shard's complete outcome: its loop report plus its kernel (for
/// cache stats, metrics, journal, and state-hash inspection).
pub struct ShardOutcome {
    /// The shard's index in the fleet.
    pub shard: usize,
    /// Its event loop's counters and completed requests.
    pub report: LoopReport,
    /// Its kernel, post-run.
    pub kernel: Kernel,
}

/// The aggregated outcome of a sharded run.
pub struct ShardedReport {
    /// Per-shard outcomes, indexed by shard id.
    pub shards: Vec<ShardOutcome>,
}

impl ShardedReport {
    /// Total completed requests across the fleet.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.report.stats.completed).sum()
    }

    /// Total failed requests across the fleet.
    pub fn failed(&self) -> u64 {
        self.shards.iter().map(|s| s.report.stats.failed).sum()
    }

    /// Total remote reads (requests served via the fabric).
    pub fn remote_reads(&self) -> u64 {
        self.shards.iter().map(|s| s.report.stats.remote_reads).sum()
    }

    /// The parallel makespan: the largest per-shard simulated CPU time.
    pub fn max_shard_cpu(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.report.stats.cpu)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Fleet throughput per simulated CPU second, on the makespan (see
    /// module docs): completed requests / max per-shard CPU.
    pub fn requests_per_cpu_sec(&self) -> f64 {
        let cpu = self.max_shard_cpu().as_secs();
        if cpu == 0.0 {
            return 0.0;
        }
        self.completed() as f64 / cpu
    }

    /// Hot-spot imbalance: max per-shard CPU over mean per-shard CPU
    /// (1.0 = perfectly balanced; the lost fraction of ideal speedup).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self
            .shards
            .iter()
            .map(|s| s.report.stats.cpu.as_secs())
            .sum();
        let mean = total / self.shards.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        self.max_shard_cpu().as_secs() / mean
    }

    /// Kernel metrics merged across shards (every field sums).
    pub fn merged_metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for s in &self.shards {
            m.merge(&s.kernel.metrics);
        }
        m
    }
}

/// Extra headroom in each inbox beyond the fleet-wide in-flight bound
/// (covers `Shutdown` and ordering slop; see `iolite_core::shard`).
const FABRIC_SLACK: usize = 8;

/// Runs `conns` — `(conn_id, request script)` pairs — across
/// `cfg.shards` shared-nothing shards and aggregates the outcome.
///
/// `setup` builds each shard's kernel contents and returns the server
/// pid; it runs once per shard and **must be deterministic** (every
/// shard needs the identical file store, in identical creation order,
/// so `FileId`s agree fleet-wide). When `cfg.journal` is set the
/// journal starts before `setup`, so replaying a shard's journal from a
/// blank state reproduces its kernel bit-for-bit.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero or a shard thread panics.
pub fn run_sharded<F>(cfg: &ShardedConfig, setup: F, conns: Vec<(u64, Vec<String>)>) -> ShardedReport
where
    F: Fn(&mut Kernel) -> Pid + Sync,
{
    assert!(cfg.shards > 0, "at least one shard");
    let n = cfg.shards;
    // Partition scripts by mixed full-width conn id.
    let mut per_shard: Vec<Vec<Vec<String>>> = vec![Vec::new(); n];
    for (id, script) in conns {
        per_shard[shard_of_conn(ConnId(id), n)].push(script);
    }
    // Capacity contract: each in-flight connection has at most one
    // outstanding remote read, so the fleet-wide in-flight cap bounds
    // every inbox's occupancy (see `iolite_core::shard` module docs).
    let limit = cfg.loop_cfg.admission_limit;
    let capacity: usize = per_shard
        .iter()
        .map(|s| if limit == 0 { s.len() } else { s.len().min(limit) })
        .sum::<usize>()
        + FABRIC_SLACK;
    let fabric = ShardFabric::new(n, capacity);
    let senders = fabric.senders;
    let (done_tx, done_rx) = sync_channel(n);
    let setup = &setup;
    let mut outcomes = thread::scope(|scope| {
        let handles: Vec<_> = fabric
            .mailboxes
            .into_iter()
            .zip(per_shard)
            .map(|(mailbox, scripts)| {
                let done_tx = done_tx.clone();
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut kernel = Kernel::with_policy(cfg.cost, cfg.policy);
                    if cfg.journal {
                        kernel.start_journal();
                    }
                    let pid = setup(&mut kernel);
                    let shard = mailbox.id;
                    let server = EventLoopServer::new(kernel, pid, scripts, None, cfg.loop_cfg);
                    let ctx = ShardContext {
                        mailbox,
                        shards: n,
                        ownership: cfg.ownership,
                        done_tx,
                    };
                    let (report, kernel) = server.run_shard(ctx);
                    ShardOutcome {
                        shard,
                        report,
                        kernel,
                    }
                })
            })
            .collect();
        // The spawn loop cloned one sender per shard; dropping the
        // original lets `done_rx.recv()` actually report disconnection
        // when a shard dies instead of blocking forever.
        drop(done_tx);
        // Coordinator: once every shard reports its own scripts done,
        // no further RemoteRead can be generated — broadcast Shutdown.
        // A recv error means a shard died without reporting; fall
        // through to the join, which re-raises that shard's panic.
        let mut all_reported = true;
        for _ in 0..n {
            if done_rx.recv().is_err() {
                all_reported = false;
                break;
            }
        }
        for tx in &senders {
            // Best-effort when a shard died (its inbox may be gone or
            // full of undrained traffic); the join below surfaces the
            // real failure.
            let sent = tx.try_send(ShardMsg::Shutdown);
            if all_reported {
                // lint:allow(panic) — capacity contract: FABRIC_SLACK
                // reserves inbox room for Shutdown (see the capacity
                // comment above); overflow here is a sizing bug that
                // must not pass silently.
                sent.expect("slack reserves room for Shutdown");
            }
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // Re-raise the shard's own panic (with its message)
                // instead of a generic join failure.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    outcomes.sort_by_key(|o| o.shard);
    ShardedReport { shards: outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_fs::home_shard;

    fn corpus(k: &mut Kernel) -> Pid {
        let pid = k.spawn("server");
        for f in 0..16 {
            k.create_synthetic_file(&format!("/f{f}"), 4_000 + f * 512, f);
        }
        pid
    }

    fn zipfish_conns(n: u64) -> Vec<(u64, Vec<String>)> {
        (0..n)
            .map(|i| {
                // Structured ids (stride 4096) — routing must still
                // spread them.
                let id = i * 4096;
                let script = vec![
                    format!("/f{}", i % 4),      // hot head
                    format!("/f{}", 4 + i % 12), // long tail
                    format!("/f{}", i % 4),      // head again, later
                ];
                (id, script)
            })
            .collect()
    }

    fn base_cfg(shards: usize, ownership: CacheOwnership) -> ShardedConfig {
        ShardedConfig {
            shards,
            ownership,
            cost: CostModel::pentium_ii_333(),
            policy: Policy::Gds,
            journal: false,
            loop_cfg: EventLoopConfig::default(),
        }
    }

    #[test]
    fn sharded_fleet_completes_every_request() {
        for shards in [1usize, 2, 4] {
            for ownership in [CacheOwnership::HomeOnly, CacheOwnership::Replicate] {
                let cfg = base_cfg(shards, ownership);
                let report = run_sharded(&cfg, corpus, zipfish_conns(64));
                assert_eq!(report.completed(), 192, "{shards} shards {ownership:?}");
                assert_eq!(report.failed(), 0);
                for s in &report.shards {
                    assert_eq!(
                        s.report.stats.blocked_io, 0,
                        "shard {} must stay readiness-driven",
                        s.shard
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_run_never_touches_the_fabric() {
        let cfg = base_cfg(1, CacheOwnership::HomeOnly);
        let report = run_sharded(&cfg, corpus, zipfish_conns(32));
        assert_eq!(report.remote_reads(), 0);
        assert_eq!(report.shards[0].report.stats.remote_hits, 0);
    }

    #[test]
    fn home_only_pays_remote_reads_where_replicate_converges() {
        let home_only = run_sharded(
            &base_cfg(4, CacheOwnership::HomeOnly),
            corpus,
            zipfish_conns(64),
        );
        let replicate = run_sharded(
            &base_cfg(4, CacheOwnership::Replicate),
            corpus,
            zipfish_conns(64),
        );
        assert_eq!(home_only.completed(), replicate.completed());
        // HomeOnly re-fetches a remote file every time it comes up
        // again; Replicate fetches each (shard, file) pair once and
        // hits the local replica thereafter.
        assert!(
            home_only.remote_reads() > replicate.remote_reads(),
            "HomeOnly {} fetches vs Replicate {}",
            home_only.remote_reads(),
            replicate.remote_reads()
        );
        assert!(replicate.remote_reads() > 0, "first touches still route");
    }

    #[test]
    fn admission_limit_bounds_inflight() {
        let mut cfg = base_cfg(2, CacheOwnership::Replicate);
        cfg.loop_cfg.admission_limit = 4;
        let report = run_sharded(&cfg, corpus, zipfish_conns(64));
        assert_eq!(report.completed(), 192);
        for s in &report.shards {
            assert!(
                s.report.stats.max_inflight <= 4,
                "shard {} saw {} in flight",
                s.shard,
                s.report.stats.max_inflight
            );
        }
    }

    /// The makespan metric is what the scaling table reports; sanity:
    /// it is positive, at most the CPU sum, and imbalance ≥ 1.
    #[test]
    fn makespan_metric_is_sane() {
        let report = run_sharded(
            &base_cfg(4, CacheOwnership::Replicate),
            corpus,
            zipfish_conns(64),
        );
        let max = report.max_shard_cpu();
        let sum: f64 = report
            .shards
            .iter()
            .map(|s| s.report.stats.cpu.as_secs())
            .sum();
        assert!(max > SimTime::ZERO);
        assert!(max.as_secs() <= sum);
        assert!(report.imbalance() >= 1.0);
        assert!(report.requests_per_cpu_sec() > 0.0);
    }

    /// Every file's home shard serves it from disk exactly once
    /// fleet-wide under HomeOnly: disk_ops equals the per-shard count
    /// of homed-and-requested files (plus nothing else).
    #[test]
    fn only_home_shards_read_disk() {
        let shards = 4;
        let report = run_sharded(
            &base_cfg(shards, CacheOwnership::HomeOnly),
            corpus,
            zipfish_conns(64),
        );
        for s in &report.shards {
            let homed: Vec<u64> = (0..16)
                .filter(|&f| {
                    let file = s.kernel.store.lookup(&format!("/f{f}")).expect("exists");
                    home_shard(file, shards) == s.shard
                })
                .collect();
            assert!(
                s.kernel.metrics.disk_ops <= homed.len() as u64,
                "shard {} did {} disk ops for {} homed files",
                s.shard,
                s.kernel.metrics.disk_ops,
                homed.len()
            );
        }
    }
}

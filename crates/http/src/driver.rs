//! The closed-loop experiment engine behind every figure.
//!
//! Clients issue requests as soon as the previous response arrives
//! ("a client issues a new request as soon as a response is received",
//! §5.1). The server machine is one CPU (FIFO), one disk (FIFO), and
//! five network links; request lifecycles thread through those resources
//! with the costs produced by the server models, and aggregate output
//! bandwidth is measured exactly as the figures report it.
//!
//! Memory is accounted live: conventional socket buffers reserve `Tss`
//! per draining connection, Apache adds per-connection process memory,
//! and the file cache's budget is rebalanced as those reservations move
//! — the §5.7 WAN effect emerges rather than being assumed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use iolite_core::{CostModel, Fd, Kernel, Pid};
use iolite_fs::{CacheKey, Policy};
use iolite_ipc::PipeMode;
use iolite_sim::{FifoResource, LinkSet, RateMeter, SimRng, SimTime, Summary};
use iolite_trace::{RandomSampler, RequestStream, SharedLogReplay};
use iolite_vm::MemAccount;

use crate::cgi::CgiProcess;
use crate::server::{serve_static, ServerKind};
use crate::workloads::WorkloadKind;

/// Configuration of one experiment run (one figure data point).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which server runs.
    pub server: ServerKind,
    /// What the clients request.
    pub workload: WorkloadKind,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests measured (after warm-up).
    pub requests: u64,
    /// Warm-up requests excluded from measurement.
    pub warmup: u64,
    /// HTTP/1.1 persistent connections (§5.2)?
    pub persistent: bool,
    /// Round-trip time to clients, milliseconds (0 = LAN; §5.7 sweeps).
    pub rtt_ms: f64,
    /// Checksum cache enabled (Fig. 11 ablation)?
    pub checksum_cache: bool,
    /// Access logging enabled? "Access logging was disabled to ensure
    /// fairness" in the paper's runs (§5); enabling it reproduces the
    /// quoted 13–16% Apache / 3–5% Flash cost.
    pub access_logging: bool,
    /// File-cache policy override (Fig. 11 runs Flash-Lite with LRU).
    pub policy: Option<Policy>,
    /// Random seed.
    pub seed: u64,
    /// The machine model (defaults to the paper's testbed; ablations
    /// and scaled-down tests override it).
    pub cost: CostModel,
}

impl ExperimentConfig {
    /// A sensible default: fill in server + workload, tweak the rest.
    pub fn new(server: ServerKind, workload: WorkloadKind) -> Self {
        ExperimentConfig {
            server,
            workload,
            clients: 40,
            requests: 4000,
            warmup: 400,
            persistent: false,
            rtt_ms: 0.0,
            checksum_cache: true,
            access_logging: false,
            policy: None,
            seed: 42,
            cost: CostModel::pentium_ii_333(),
        }
    }
}

/// The measured outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Aggregate output bandwidth (application bytes), Mb/s — the
    /// y-axis of Figs. 3–6, 8, 10–12.
    pub mbit_s: f64,
    /// Requests measured.
    pub requests: u64,
    /// Application bytes delivered in the measurement window.
    pub bytes: u64,
    /// Simulated duration of the measurement window, seconds.
    pub sim_seconds: f64,
    /// File-cache hit rate over measured requests.
    pub hit_rate: f64,
    /// Server CPU utilization.
    pub cpu_utilization: f64,
    /// Disk utilization.
    pub disk_utilization: f64,
    /// Mean response time, milliseconds.
    pub mean_response_ms: f64,
    /// Bytes copied per measured request (mechanism indicator).
    pub copied_per_request: f64,
    /// Checksum bytes served from cache per measured request.
    pub csum_cached_per_request: f64,
    /// File-cache evictions during measurement.
    pub evictions: u64,
    /// Requests that failed because a peer (pipe or socket) hung up
    /// mid-transfer; healthy runs report 0.
    pub failed_requests: u64,
}

/// Pending resource release at a future instant.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum Release {
    SocketMem(u64),
    /// An Apache worker finished: drop its socket buffer and process
    /// memory, freeing a `MaxClients` slot.
    ApacheConn(u64),
    Unpin(CacheKey),
}

/// The experiment engine.
pub struct Experiment {
    cfg: ExperimentConfig,
    kernel: Kernel,
    server_pid: Pid,
    /// One kernel socket descriptor per client, in the server's table.
    socks: Vec<Fd>,
    cpu: FifoResource,
    disk: FifoResource,
    links: LinkSet,
    /// The server's open-file set: one descriptor per document.
    files: Vec<Fd>,
    cgi: Option<CgiProcess>,
    stream: Box<dyn RequestStream>,
    rng: SimRng,
}

impl Experiment {
    /// Builds the testbed for a configuration.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let cost = cfg.cost;
        let policy = cfg.policy.unwrap_or(match cfg.server {
            ServerKind::FlashLite => Policy::Gds,
            _ => Policy::Lru,
        });
        let mut kernel = Kernel::with_policy(cost, policy);
        kernel.set_checksum_cache(cfg.checksum_cache);
        kernel.mem_reserve(MemAccount::Server, cost.server_reserve_bytes);
        let server_pid = kernel.spawn("server");
        let mut rng = SimRng::new(cfg.seed);

        // Materialize the file set.
        let mut files = Vec::new();
        let mut cgi = None;
        let stream: Box<dyn RequestStream> = match &cfg.workload {
            WorkloadKind::SingleFile { bytes } => {
                let f = kernel.create_synthetic_file("/doc", *bytes, cfg.seed);
                files.push(kernel.open_file(server_pid, f));
                Box::new(ConstantStream)
            }
            WorkloadKind::TraceReplay { workload, log_len } => {
                for f in workload.files() {
                    let id = kernel.create_synthetic_file(&f.name, f.bytes, cfg.seed ^ f.bytes);
                    files.push(kernel.open_file(server_pid, id));
                }
                Box::new(SharedLogReplay::new(workload, *log_len, cfg.seed))
            }
            WorkloadKind::TraceSampled { workload } => {
                for f in workload.files() {
                    let id = kernel.create_synthetic_file(&f.name, f.bytes, cfg.seed ^ f.bytes);
                    files.push(kernel.open_file(server_pid, id));
                }
                Box::new(RandomSampler::new(workload.clone()))
            }
            WorkloadKind::Cgi { bytes } => {
                let mode = match cfg.server {
                    ServerKind::FlashLite => PipeMode::ZeroCopy,
                    _ => PipeMode::Copy,
                };
                cgi = Some(CgiProcess::new(&mut kernel, server_pid, *bytes, mode));
                Box::new(ConstantStream)
            }
        };

        // Connections: one kernel socket per client, in the server's
        // buffering mode, addressed by descriptor.
        let socks = (0..cfg.clients)
            .map(|_| kernel.socket_create(server_pid, cfg.server.buffer_mode(), cost.mss, cost.tss))
            .collect();

        // Apache with persistent connections keeps one process per
        // client alive for the whole run.
        if cfg.server == ServerKind::Apache && cfg.persistent {
            let workers = cfg.clients.min(cost.apache_max_clients) as u64;
            kernel.mem_reserve(
                MemAccount::ProcessOverhead,
                workers * cost.apache_per_conn_bytes,
            );
        }

        let links = LinkSet::new(cost.net_links, cost.link_mbit_s);
        let _ = &mut rng;
        Experiment {
            cfg,
            kernel,
            server_pid,
            socks,
            cpu: FifoResource::new("cpu"),
            disk: FifoResource::new("disk"),
            links,
            files,
            cgi,
            stream,
            rng,
        }
    }

    /// Runs the experiment to completion.
    pub fn run(mut self) -> ExperimentResult {
        let rtt = SimTime::from_ms(self.cfg.rtt_ms);
        let one_way = SimTime::from_ms(self.cfg.rtt_ms / 2.0);
        let total_requests = self.cfg.warmup + self.cfg.requests;

        // Client ready-to-issue events.
        let mut issue: BinaryHeap<Reverse<(SimTime, usize)>> = (0..self.cfg.clients)
            .map(|c| Reverse((SimTime::ZERO, c)))
            .collect();
        // Deferred releases of memory/pins at transmission completion.
        let mut releases: BinaryHeap<Reverse<(SimTime, u64, Release)>> = BinaryHeap::new();
        let mut release_seq = 0u64;
        let mut apache_active = 0u64;

        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut measured_bytes = 0u64;
        let mut hits = 0u64;
        let mut meter: Option<RateMeter> = None;
        // Measurement starts when the warmup-th request retires —
        // success *or* failure — so both completion paths share this.
        let start_measurement = |kernel: &Kernel, at: SimTime| {
            let mut m = RateMeter::new(at);
            m.close(at);
            (
                m,
                kernel.metrics.bytes_copied,
                kernel.metrics.bytes_checksum_cached,
                kernel.cache.stats().evictions,
            )
        };
        let mut response_times = Summary::new();
        let mut copied_at_meas_start = 0u64;
        let mut cached_at_meas_start = 0u64;
        let mut evictions_at_meas_start = 0u64;

        while completed < total_requests {
            let Some(Reverse((now, client))) = issue.pop() else {
                break;
            };
            // Apply releases that completed before this instant.
            while let Some(Reverse((t, _, _))) = releases.peek() {
                if *t > now {
                    break;
                }
                let Some(Reverse((_, _, rel))) = releases.pop() else {
                    break;
                };
                match rel {
                    Release::SocketMem(bytes) => {
                        self.kernel.mem_release(MemAccount::SocketCopies, bytes)
                    }
                    Release::ApacheConn(sock) => {
                        let per_conn = self.kernel.cost.apache_per_conn_bytes;
                        self.kernel.mem_release(MemAccount::SocketCopies, sock);
                        self.kernel
                            .mem_release(MemAccount::ProcessOverhead, per_conn);
                        apache_active = apache_active.saturating_sub(1);
                    }
                    Release::Unpin(key) => self.kernel.cache_unpin(key),
                }
            }

            let Some(file_idx) = self.stream.next_request(&mut self.rng) else {
                break;
            };

            // --- connection setup (non-persistent: handshake RTT plus
            // server-side accept/close CPU) ---
            let mut pre = iolite_core::Charge::ZERO;
            if self.cfg.access_logging {
                pre += iolite_core::Charge::us(match self.cfg.server {
                    ServerKind::Apache => self.kernel.cost.apache_log_us,
                    _ => self.kernel.cost.event_log_us,
                });
            }
            let mut arrive = now + one_way; // Request propagation.
            if !self.cfg.persistent {
                arrive += rtt; // SYN/SYN-ACK round trip first.
                pre += iolite_core::Charge::us(
                    self.kernel.cost.tcp_accept_us + self.kernel.cost.tcp_close_us,
                );
            }

            // --- serve ---
            let rc = match &self.cfg.workload {
                WorkloadKind::Cgi { .. } => {
                    let cgi = self.cgi.as_mut().expect("cgi configured");
                    match cgi.serve(
                        &mut self.kernel,
                        self.cfg.server,
                        self.socks[client],
                        self.server_pid,
                    ) {
                        Ok(rc) => rc,
                        Err(_) => {
                            // A dead pipe/socket peer fails this one
                            // request; the client moves on and the
                            // server keeps running. The failure still
                            // counts toward the request budget, so a
                            // failure landing exactly on the warmup
                            // boundary must initialize the meter like
                            // a success would.
                            failed += 1;
                            completed += 1;
                            if completed == self.cfg.warmup {
                                let (m, c, x, e) = start_measurement(&self.kernel, arrive);
                                (meter, copied_at_meas_start) = (Some(m), c);
                                (cached_at_meas_start, evictions_at_meas_start) = (x, e);
                            }
                            issue.push(Reverse((arrive, client)));
                            continue;
                        }
                    }
                }
                _ => {
                    let file = self.files[file_idx];
                    serve_static(
                        &mut self.kernel,
                        self.cfg.server,
                        self.socks[client],
                        self.server_pid,
                        file,
                    )
                }
            };

            // --- thread through resources: CPU (pre+parse) → disk
            // (miss) → CPU (rest) → link ---
            let cpu_total = rc.cpu_total();
            let parse_charge = pre
                + iolite_core::Charge::us(
                    self.kernel.cost.http_parse_us + self.kernel.cost.server_fixed_us,
                );
            let after_parse = self.cpu.submit(arrive, parse_charge.time);
            let send_cpu = cpu_total.saturating_sub(
                iolite_core::Charge::us(
                    self.kernel.cost.http_parse_us + self.kernel.cost.server_fixed_us,
                )
                .time,
            );
            let ready = if rc.disk_time > SimTime::ZERO {
                self.disk.submit(after_parse, rc.disk_time)
            } else {
                after_parse
            };
            let after_cpu = self.cpu.submit(ready, send_cpu);
            let window_rate = self
                .kernel
                .socket(self.server_pid, self.socks[client])
                .expect("client socket")
                .window_rate(rtt.as_secs());
            let done = self.links.link_for_client(client).transmit(
                after_cpu,
                rc.wire_bytes,
                window_rate,
                one_way,
            );

            // --- memory + pins held until the response drains ---
            if self.cfg.server == ServerKind::Apache && !self.cfg.persistent {
                // One worker per connection, bounded by MaxClients:
                // beyond the cap, connections sit in the listen backlog
                // and hold no memory.
                if apache_active < self.kernel.cost.apache_max_clients as u64 {
                    apache_active += 1;
                    let per_conn = self.kernel.cost.apache_per_conn_bytes;
                    self.kernel
                        .mem_reserve(MemAccount::SocketCopies, rc.owned_sock_bytes);
                    self.kernel
                        .mem_reserve(MemAccount::ProcessOverhead, per_conn);
                    release_seq += 1;
                    releases.push(Reverse((
                        done,
                        release_seq,
                        Release::ApacheConn(rc.owned_sock_bytes),
                    )));
                }
            } else if rc.owned_sock_bytes > 0 {
                self.kernel
                    .mem_reserve(MemAccount::SocketCopies, rc.owned_sock_bytes);
                release_seq += 1;
                releases.push(Reverse((
                    done,
                    release_seq,
                    Release::SocketMem(rc.owned_sock_bytes),
                )));
            }
            if let Some(key) = rc.pin_key {
                release_seq += 1;
                releases.push(Reverse((done, release_seq, Release::Unpin(key))));
            }
            self.kernel.rebalance_cache();

            // --- bookkeeping ---
            completed += 1;
            if completed == self.cfg.warmup {
                let (m, c, x, e) = start_measurement(&self.kernel, done);
                (meter, copied_at_meas_start) = (Some(m), c);
                (cached_at_meas_start, evictions_at_meas_start) = (x, e);
            }
            if completed > self.cfg.warmup {
                if let Some(m) = &mut meter {
                    m.record(done, rc.response_bytes as f64);
                }
                measured_bytes += rc.response_bytes;
                hits += u64::from(rc.cache_hit);
                response_times.record((done.saturating_sub(now)).as_ms());
            }
            issue.push(Reverse((done, client)));
        }

        let meter = meter.unwrap_or_else(|| RateMeter::new(SimTime::ZERO));
        let horizon = self.cpu.next_free().max(self.disk.next_free());
        let measured = completed.saturating_sub(self.cfg.warmup);
        ExperimentResult {
            mbit_s: meter.mbit_per_sec(),
            requests: measured,
            bytes: measured_bytes,
            sim_seconds: meter.total() / meter.per_second().max(1e-12) / 1.0,
            hit_rate: if measured > 0 {
                hits as f64 / measured as f64
            } else {
                0.0
            },
            cpu_utilization: self.cpu.utilization(horizon),
            disk_utilization: self.disk.utilization(horizon),
            mean_response_ms: response_times.mean(),
            copied_per_request: (self.kernel.metrics.bytes_copied - copied_at_meas_start) as f64
                / measured.max(1) as f64,
            csum_cached_per_request: (self.kernel.metrics.bytes_checksum_cached
                - cached_at_meas_start) as f64
                / measured.max(1) as f64,
            evictions: self.kernel.cache.stats().evictions - evictions_at_meas_start,
            failed_requests: failed,
        }
    }

    /// Convenience: build and run.
    pub fn run_config(cfg: ExperimentConfig) -> ExperimentResult {
        Experiment::new(cfg).run()
    }
}

/// Stream for single-file/CGI workloads: always file 0.
struct ConstantStream;

impl RequestStream for ConstantStream {
    fn next_request(&mut self, _rng: &mut SimRng) -> Option<usize> {
        Some(0)
    }

    fn remaining(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(server: ServerKind, bytes: u64, persistent: bool) -> ExperimentResult {
        let mut cfg = ExperimentConfig::new(server, WorkloadKind::SingleFile { bytes });
        cfg.requests = 1500;
        cfg.warmup = 200;
        cfg.persistent = persistent;
        Experiment::run_config(cfg)
    }

    #[test]
    fn single_file_ordering_matches_paper() {
        // Fig. 3 at 100KB: Flash-Lite > Flash > Apache.
        let fl = quick(ServerKind::FlashLite, 100 << 10, false);
        let f = quick(ServerKind::Flash, 100 << 10, false);
        let a = quick(ServerKind::Apache, 100 << 10, false);
        assert!(fl.mbit_s > f.mbit_s, "FL {} vs F {}", fl.mbit_s, f.mbit_s);
        assert!(f.mbit_s > a.mbit_s, "F {} vs A {}", f.mbit_s, a.mbit_s);
        // All hot after warmup.
        assert!(fl.hit_rate > 0.99);
    }

    #[test]
    fn small_files_converge() {
        // Fig. 3 ≤5KB: Flash ≈ Flash-Lite (within ~15%).
        let fl = quick(ServerKind::FlashLite, 2 << 10, false);
        let f = quick(ServerKind::Flash, 2 << 10, false);
        let ratio = fl.mbit_s / f.mbit_s;
        assert!(ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn persistent_connections_help_small_files() {
        // Fig. 4: request rate for small files rises significantly.
        let np = quick(ServerKind::FlashLite, 10 << 10, false);
        let p = quick(ServerKind::FlashLite, 10 << 10, true);
        assert!(
            p.mbit_s > np.mbit_s * 1.5,
            "persistent {} vs {}",
            p.mbit_s,
            np.mbit_s
        );
    }

    #[test]
    fn flashlite_saturates_network_on_large_files() {
        let fl = quick(ServerKind::FlashLite, 200 << 10, false);
        // Network cap is 420 Mb/s; Flash-Lite should be close to it.
        assert!(fl.mbit_s > 350.0, "got {}", fl.mbit_s);
        let f = quick(ServerKind::Flash, 200 << 10, false);
        assert!(f.mbit_s < 330.0, "Flash must stay CPU-bound: {}", f.mbit_s);
    }

    #[test]
    fn cgi_halves_conventional_but_not_iolite() {
        let mk = |server, bytes| {
            let mut cfg = ExperimentConfig::new(server, WorkloadKind::Cgi { bytes });
            cfg.requests = 800;
            cfg.warmup = 100;
            cfg
        };
        let f_static = quick(ServerKind::Flash, 100 << 10, false);
        let f_cgi = Experiment::run_config(mk(ServerKind::Flash, 100 << 10));
        let ratio = f_cgi.mbit_s / f_static.mbit_s;
        assert!(ratio < 0.7, "Flash CGI ratio {ratio}");
        let fl_static = quick(ServerKind::FlashLite, 100 << 10, false);
        let fl_cgi = Experiment::run_config(mk(ServerKind::FlashLite, 100 << 10));
        let ratio_fl = fl_cgi.mbit_s / fl_static.mbit_s;
        assert!(ratio_fl > 0.75, "Flash-Lite CGI ratio {ratio_fl}");
    }

    #[test]
    fn access_logging_costs_match_section_5() {
        // §5: logging drops Apache 13-16%, Flash/Flash-Lite 3-5%.
        let run = |server, logging| {
            let mut cfg =
                ExperimentConfig::new(server, WorkloadKind::SingleFile { bytes: 20 << 10 });
            cfg.requests = 1200;
            cfg.warmup = 200;
            cfg.access_logging = logging;
            Experiment::run_config(cfg).mbit_s
        };
        let apache_drop = 1.0 - run(ServerKind::Apache, true) / run(ServerKind::Apache, false);
        let flash_drop = 1.0 - run(ServerKind::Flash, true) / run(ServerKind::Flash, false);
        let fl_drop = 1.0 - run(ServerKind::FlashLite, true) / run(ServerKind::FlashLite, false);
        assert!(
            (0.08..=0.20).contains(&apache_drop),
            "apache drop {apache_drop}"
        );
        assert!(
            (0.01..=0.08).contains(&flash_drop),
            "flash drop {flash_drop}"
        );
        assert!((0.01..=0.10).contains(&fl_drop), "fl drop {fl_drop}");
        assert!(apache_drop > 2.0 * flash_drop);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = quick(ServerKind::Flash, 20 << 10, false);
        let b = quick(ServerKind::Flash, 20 << 10, false);
        assert_eq!(a.mbit_s, b.mbit_s);
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn wan_delay_hurts_conventional_servers() {
        // Miniature §5.7 on a proportionally scaled machine: the data
        // set marginally fits in memory (paper: 120MB on 128MB), and
        // scaling clients with delay makes conventional socket buffers
        // squeeze the file cache. Scaled down 4× for test speed.
        use iolite_trace::{TraceSpec, Workload};
        let w = Workload::synthesize(&TraceSpec::subtrace_150mb(), 3).log_prefix(28 << 20, 3);
        let mut cost = CostModel::pentium_ii_333();
        cost.ram_bytes = 32 << 20;
        cost.kernel_reserve_bytes = 2 << 20;
        cost.server_reserve_bytes = 1 << 20;
        let mk = |server, rtt_ms: f64, clients| {
            let mut cfg = ExperimentConfig::new(
                server,
                WorkloadKind::TraceSampled {
                    workload: w.clone(),
                },
            );
            cfg.clients = clients;
            cfg.requests = 4000;
            cfg.warmup = 2000;
            cfg.rtt_ms = rtt_ms;
            cfg.cost = cost;
            Experiment::run_config(cfg)
        };
        let f_lan = mk(ServerKind::Flash, 0.0, 16);
        let f_wan = mk(ServerKind::Flash, 100.0, 225);
        let fl_lan = mk(ServerKind::FlashLite, 0.0, 16);
        let fl_wan = mk(ServerKind::FlashLite, 100.0, 225);
        let f_drop = f_wan.mbit_s / f_lan.mbit_s;
        let fl_drop = fl_wan.mbit_s / fl_lan.mbit_s;
        assert!(
            f_drop < 0.92,
            "Flash must lose throughput under WAN load: {f_drop}"
        );
        assert!(
            fl_drop > f_drop + 0.02,
            "Flash-Lite must be less affected: {fl_drop} vs {f_drop}"
        );
        // Flash's loss is memory-driven: its cache got squeezed.
        assert!(f_wan.evictions > f_lan.evictions);
    }
}

//! Workload definitions for the experiment driver.

use iolite_trace::Workload;

/// What the clients request.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// §5.1/§5.2: every client repeatedly requests one document of the
    /// given size.
    SingleFile {
        /// Document size in bytes.
        bytes: u64,
    },
    /// §5.4: shared-log replay of a trace — clients hand entries out of
    /// one log in order.
    TraceReplay {
        /// The synthesized workload.
        workload: Workload,
        /// Log length to replay (a statistically equivalent prefix of
        /// the full multi-million-request log).
        log_len: u64,
    },
    /// §5.5/§5.7: SpecWeb96-style random sampling from a trace.
    TraceSampled {
        /// The synthesized workload.
        workload: Workload,
    },
    /// §5.3: FastCGI dynamic content of the given size.
    Cgi {
        /// Dynamic document size in bytes.
        bytes: u64,
    },
}

impl WorkloadKind {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::SingleFile { bytes } => format!("single-{}KB", bytes >> 10),
            WorkloadKind::TraceReplay { workload, .. } => format!("replay-{}", workload.name()),
            WorkloadKind::TraceSampled { workload } => format!("sampled-{}", workload.name()),
            WorkloadKind::Cgi { bytes } => format!("cgi-{}KB", bytes >> 10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_trace::TraceSpec;

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            WorkloadKind::SingleFile { bytes: 20 << 10 }.label(),
            "single-20KB"
        );
        assert_eq!(WorkloadKind::Cgi { bytes: 1 << 10 }.label(), "cgi-1KB");
        let w = Workload::synthesize(&TraceSpec::subtrace_150mb(), 1);
        assert!(WorkloadKind::TraceSampled { workload: w }
            .label()
            .contains("MERGED"));
    }
}

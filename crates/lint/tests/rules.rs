//! Rule semantics, driven end-to-end through the engine over the
//! fixture tree: known-bad snippets flag, known-good (annotated or
//! prose-only) snippets pass, ratchets turn one way.

use std::path::{Path, PathBuf};

use iolite_lint::baseline::Baseline;
use iolite_lint::config::Config;
use iolite_lint::engine::{self, Report};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs `config` over the fixture tree against `baseline`.
fn run(config: &str, baseline: &Baseline, enforce: bool) -> Report {
    let cfg = Config::parse(config).expect("test config parses");
    engine::run(&fixtures(), &cfg, baseline, enforce)
}

fn lines(report: &Report, rule: &str) -> Vec<(String, u32)> {
    report
        .diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.path.clone(), d.line))
        .collect()
}

#[test]
fn purity_flags_code_but_never_comments_or_strings() {
    let report = run(
        r#"
[rules.purity]
kind = "scan"
include-tests = true
paths = ["purity_bad.rs", "purity_ok.rs"]
ban-paths = ["std::io", "std::time", "std::fs"]
"#,
        &Baseline::default(),
        true,
    );
    // One violation: the renamed `use std::time::Instant as Clock`.
    // The comments, string, and raw string spelling banned paths —
    // and the whole of purity_ok.rs — stay silent.
    assert_eq!(
        lines(&report, "purity"),
        vec![("purity_bad.rs".to_string(), 15)],
        "{:?}",
        report.diags
    );
}

#[test]
fn no_lock_flags_unannotated_and_exempts_annotated() {
    let report = run(
        r#"
[rules.no-lock]
kind = "scan"
paths = ["lock_bad.rs", "lock_allowed.rs"]
ban-idents = ["Mutex", "RwLock"]
budget = true
"#,
        &Baseline::default(),
        false,
    );
    assert_eq!(
        lines(&report, "no-lock"),
        vec![
            ("lock_bad.rs".to_string(), 3),
            ("lock_bad.rs".to_string(), 6)
        ],
        "{:?}",
        report.diags
    );
    // Both annotated sites in lock_allowed.rs count toward the budget.
    assert_eq!(report.observed.get("no-lock", "allowed"), Some(2));
}

#[test]
fn broken_annotations_are_diagnostics() {
    let report = run(
        r#"
[rules.no-lock]
kind = "scan"
paths = ["hygiene_bad.rs"]
ban-idents = ["Mutex"]
"#,
        &Baseline::default(),
        true,
    );
    let msgs: Vec<&str> = report.diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("has no reason")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("names no configured rule")),
        "{msgs:?}"
    );
    // The reasonless annotation does not exempt: both Mutex mentions
    // still flag.
    assert_eq!(lines(&report, "no-lock").len(), 2, "{:?}", report.diags);
}

#[test]
fn hot_path_alloc_flags_each_shape_and_skips_test_scope() {
    let report = run(
        r#"
[rules.hot-path-alloc]
kind = "scan"
paths = ["alloc_bad.rs", "alloc_test_scoped.rs"]
ban-paths = ["Vec::new"]
ban-methods = ["to_vec"]
ban-macros = ["vec"]
"#,
        &Baseline::default(),
        true,
    );
    assert_eq!(
        lines(&report, "hot-path-alloc"),
        vec![
            ("alloc_bad.rs".to_string(), 4),
            ("alloc_bad.rs".to_string(), 6),
            ("alloc_bad.rs".to_string(), 8),
        ],
        "test-scoped allocations must not flag: {:?}",
        report.diags
    );
}

#[test]
fn panic_rule_flags_serving_code_not_tests() {
    let report = run(
        r#"
[rules.panic]
kind = "scan"
paths = ["panic_bad.rs"]
ban-methods = ["unwrap", "expect"]
ban-macros = ["panic"]
"#,
        &Baseline::default(),
        true,
    );
    assert_eq!(
        lines(&report, "panic"),
        vec![
            ("panic_bad.rs".to_string(), 4),
            ("panic_bad.rs".to_string(), 6),
        ],
        "the #[test] fn's unwrap must not flag: {:?}",
        report.diags
    );
}

#[test]
fn exhaustive_passes_when_both_sides_cover() {
    let report = run(
        r#"
[rules.command-coverage]
kind = "exhaustive"
enum-file = "command.rs"
enum-name = "Cmd"
match-files = ["apply_ok.rs"]
shell-files = ["shell_ok.rs"]
"#,
        &Baseline::default(),
        true,
    );
    assert!(report.diags.is_empty(), "{:?}", report.diags);
}

#[test]
fn exhaustive_flags_missing_apply_arm() {
    let report = run(
        r#"
[rules.command-coverage]
kind = "exhaustive"
enum-file = "command.rs"
enum-name = "Cmd"
match-files = ["apply_missing.rs"]
shell-files = ["shell_ok.rs"]
"#,
        &Baseline::default(),
        true,
    );
    // Exactly Gamma is missing — and its mention in apply_missing.rs's
    // comment must not satisfy the rule. The diagnostic anchors at the
    // variant's declaration (command.rs line 8).
    let diags = lines(&report, "command-coverage");
    assert_eq!(diags, vec![("command.rs".to_string(), 8)], "{:?}", report.diags);
    assert!(report.diags[0].message.contains("Cmd::Gamma"));
    assert!(report.diags[0].message.contains("apply_missing.rs"));
}

#[test]
fn exhaustive_flags_missing_shell_sites() {
    let report = run(
        r#"
[rules.command-coverage]
kind = "exhaustive"
enum-file = "command.rs"
enum-name = "Cmd"
match-files = ["apply_ok.rs"]
shell-files = ["shell_missing.rs"]
"#,
        &Baseline::default(),
        true,
    );
    // Beta and Gamma are never journaled.
    let msgs: Vec<&str> = report.diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("Cmd::Beta")));
    assert!(msgs.iter().any(|m| m.contains("Cmd::Gamma")));
    assert!(msgs.iter().all(|m| m.contains("journaling shell site")));
}

#[test]
fn exhaustive_flags_wildcard_arm_in_dispatcher() {
    let report = run(
        r#"
[rules.command-coverage]
kind = "exhaustive"
enum-file = "command.rs"
enum-name = "Cmd"
match-files = ["apply_wildcard.rs"]
"#,
        &Baseline::default(),
        true,
    );
    assert_eq!(
        lines(&report, "command-coverage"),
        vec![("apply_wildcard.rs".to_string(), 9)],
        "{:?}",
        report.diags
    );
    assert!(report.diags[0].message.contains("wildcard"));
}

#[test]
fn exhaustive_reports_config_rot() {
    let report = run(
        r#"
[rules.command-coverage]
kind = "exhaustive"
enum-file = "command.rs"
enum-name = "Cmd"
match-files = ["moved_elsewhere.rs"]
"#,
        &Baseline::default(),
        true,
    );
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.path == "moved_elsewhere.rs" && d.message.contains("not found")),
        "{:?}",
        report.diags
    );
}

const DEPRECATED: &str = r#"
[rules.deprecated-api]
kind = "baseline-count"
paths = ["deprecated_caller.rs", "deprecated_def.rs"]
exclude = ["deprecated_def.rs"]
methods = ["iol_read"]
"#;

#[test]
fn deprecated_count_excludes_definition_sites() {
    let report = run(DEPRECATED, &Baseline::default(), false);
    // Two callers in deprecated_caller.rs; the def file's self-call is
    // excluded.
    assert_eq!(report.observed.get("deprecated-api", "iol_read"), Some(2));
}

#[test]
fn deprecated_ratchet_fails_on_growth_and_notes_shrinkage() {
    let mut at_two = Baseline::default();
    at_two.set("deprecated-api", "iol_read", 2);
    let report = run(DEPRECATED, &at_two, true);
    assert!(report.diags.is_empty(), "{:?}", report.diags);

    let mut at_one = Baseline::default();
    at_one.set("deprecated-api", "iol_read", 1);
    let report = run(DEPRECATED, &at_one, true);
    assert_eq!(report.diags.len(), 1, "{:?}", report.diags);
    assert!(report.diags[0].message.contains("grew"));

    let mut at_three = Baseline::default();
    at_three.set("deprecated-api", "iol_read", 3);
    let report = run(DEPRECATED, &at_three, true);
    assert!(report.diags.is_empty());
    assert!(report.notes.iter().any(|n| n.contains("shrank")));
}

#[test]
fn budget_ratchet_counts_annotated_sites() {
    let config = r#"
[rules.no-lock]
kind = "scan"
paths = ["lock_allowed.rs"]
ban-idents = ["Mutex"]
budget = true
"#;
    // No baseline entry: enforce mode demands a --fix-baseline run.
    let report = run(config, &Baseline::default(), true);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.message.contains("no baseline entry")),
        "{:?}",
        report.diags
    );
    // At the committed count: clean.
    let mut at_two = Baseline::default();
    at_two.set("no-lock", "allowed", 2);
    let report = run(config, &at_two, true);
    assert!(report.diags.is_empty(), "{:?}", report.diags);
    // Below an inflated baseline: a note, not a violation.
    let mut at_three = Baseline::default();
    at_three.set("no-lock", "allowed", 3);
    let report = run(config, &at_three, true);
    assert!(report.diags.is_empty());
    assert!(!report.notes.is_empty());
}

#[test]
fn scan_scope_reports_config_rot() {
    let report = run(
        r#"
[rules.purity]
kind = "scan"
paths = ["no/such/dir"]
ban-idents = ["rand"]
"#,
        &Baseline::default(),
        true,
    );
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.message.contains("match no .rs files")),
        "{:?}",
        report.diags
    );
}

#[test]
fn baseline_render_parse_roundtrip() {
    let mut b = Baseline::default();
    b.set("panic", "allowed", 10);
    b.set("deprecated-api", "iol_read", 0);
    b.set("deprecated-api", "mmap", 3);
    let reparsed = Baseline::parse(&b.render()).expect("roundtrip parses");
    assert_eq!(reparsed, b);
}

#[test]
fn config_rejects_typos_loudly() {
    for (cfg, needle) in [
        ("[rules.x]\nkind = \"scna\"\npaths = [\"a\"]", "unknown kind"),
        ("[rules.x]\npaths = [\"a\"]", "missing `kind`"),
        (
            "[rules.x]\nkind = \"scan\"\npaths = [\"a\"]",
            "bans nothing",
        ),
        (
            "[rules.x]\nkind = \"scan\"\nban-idents = [\"Mutex\"]",
            "non-empty `paths`",
        ),
        ("", "no [rules.*]"),
    ] {
        let err = Config::parse(cfg).expect_err(cfg);
        assert!(err.contains(needle), "{cfg:?} → {err}");
    }
}

//! Fixture: a clean pure-core file — comments may talk about
//! std::fs, std::io, and std::time::SystemTime all they like.

/// Deterministic helper; see the discussion of std::time above.
pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

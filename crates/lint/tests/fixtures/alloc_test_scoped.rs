//! Fixture: allocations inside test scope are exempt (the rules
//! police shipping code).

pub fn shipping(input: &[u8]) -> usize {
    input.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn copies_freely() {
        let v = vec![1u8, 2].to_vec();
        let w: Vec<u8> = Vec::new();
        assert!(w.len() <= v.len());
    }
}

//! Fixture: the purity rule flags real code but never prose. Linted
//! by tests, never compiled.

// A comment spelling std::fs must NOT flag (the old grep's bug).
/* nor a block comment with std::io or std::time::Instant */

pub fn prose_only() -> &'static str {
    "std::io::Read in a string literal must not flag"
}

pub fn raw_prose() -> &'static str {
    r#"std::fs::read in a raw string must not flag"#
}

use std::time::Instant as Clock; // line 15: MUST flag (rename-proof)

pub fn timestamp() -> Clock {
    Clock::now()
}

//! Fixture: a wildcard arm — every variant is "mentioned" via the
//! explicit arms except Gamma, and the `_ =>` must flag besides.

pub fn apply(cmd: &super::Cmd) -> u64 {
    match cmd {
        Cmd::Alpha => 0,
        Cmd::Beta(a, b) => u64::from(a + b),
        Cmd::Gamma { .. } => 1,
        _ => 2, // line 9: MUST flag
    }
}

//! Fixture: a dispatcher covering every `Cmd` variant, no wildcard.

pub fn apply(cmd: &super::Cmd) -> u64 {
    match cmd {
        Cmd::Alpha => 0,
        Cmd::Beta(a, b) => u64::from(a + b),
        Cmd::Gamma { size } => *size,
    }
}

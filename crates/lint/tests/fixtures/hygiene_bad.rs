//! Fixture: broken annotations are themselves diagnostics.

// lint:allow(no-lock)
use std::sync::Mutex; // reasonless annotation: does NOT exempt this

// lint:allow(no-such-rule) — the rule name is a typo
pub struct S {
    pub inner: Option<Mutex<u64>>,
}

//! Fixture: two callers of a deprecated shim.

pub fn uses_shims(k: &mut Kernel) -> u64 {
    let a = k.iol_read(1, 16); // caller 1
    let b = k.iol_read(2, 16); // caller 2
    a + b
}

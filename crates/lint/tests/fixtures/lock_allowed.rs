//! Fixture: an annotated (justified) lock passes, and counts toward
//! the rule's budget.

// lint:allow(no-lock) — fixture justification: confined to one thread.
use std::sync::Mutex;

pub struct Shared {
    // A multi-line justification covers the line after the block.
    // lint:allow(no-lock) — fixture justification: never contended,
    // exists only to keep the container Send.
    pub inner: Mutex<u64>,
}

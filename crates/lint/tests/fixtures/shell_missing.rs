//! Fixture: a shell that journals `Alpha` but never `Beta` or
//! `Gamma` — replay would silently drop both.

pub fn journal_some(j: &mut Vec<String>) {
    j.push(format!("{:?}", Cmd::Alpha));
}

//! Fixture: an unannotated lock in shipping code.

use std::sync::Mutex; // line 3: MUST flag

pub struct Shared {
    pub inner: Mutex<u64>, // line 6: MUST flag
}

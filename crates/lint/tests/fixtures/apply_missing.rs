//! Fixture: a dispatcher missing `Cmd::Gamma` — the seeded violation
//! the acceptance criteria demand. `Gamma` appears only in this
//! comment, which must not satisfy the rule.

pub fn apply(cmd: &super::Cmd) -> u64 {
    match cmd {
        Cmd::Alpha => 0,
        Cmd::Beta(a, b) => u64::from(a + b),
    }
}

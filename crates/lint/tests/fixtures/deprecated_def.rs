//! Fixture: the shim's definition site — excluded from the count
//! (it may mention `.iol_read(` in its own tests or docs).

impl Kernel {
    pub fn iol_read(&mut self, fd: u64, len: u64) -> u64 {
        self.raw_read(fd, len)
    }
}

pub fn self_call(k: &mut Kernel) -> u64 {
    k.iol_read(0, 1)
}

//! Fixture: hot-path allocations, every banned shape once.

pub fn copies(input: &[u8]) -> Vec<u8> {
    let scratch: Vec<u8> = Vec::new(); // line 4: MUST flag (Vec::new)
    drop(scratch);
    let v = vec![0u8; 4]; // line 6: MUST flag (vec!)
    drop(v);
    input.to_vec() // line 8: MUST flag (.to_vec())
}

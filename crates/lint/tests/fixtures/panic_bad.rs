//! Fixture: panics on the serving path.

pub fn serve(input: Option<u64>) -> u64 {
    let v = input.unwrap(); // line 4: MUST flag (.unwrap())
    if v == 0 {
        panic!("zero"); // line 6: MUST flag (panic!)
    }
    v
}

#[test]
fn test_scope_panics_freely() {
    assert_eq!(serve(Some(3)), 3);
    let _ = Some(1).unwrap(); // test scope: must NOT flag
}

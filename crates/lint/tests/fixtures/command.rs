//! Fixture: the enum side of the exhaustiveness cross-check —
//! a tuple variant, a struct variant, and an attributed variant.

pub enum Cmd {
    Alpha,
    Beta(u32, u32),
    #[allow(dead_code)]
    Gamma { size: u64 },
}

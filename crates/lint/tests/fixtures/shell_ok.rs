//! Fixture: a shell journaling every `Cmd` variant.

pub fn journal_all(j: &mut Vec<String>) {
    j.push(format!("{:?}", Cmd::Alpha));
    j.push(format!("{:?}", Cmd::Beta(1, 2)));
    j.push(format!("{:?}", Cmd::Gamma { size: 3 }));
}

//! Lexer coverage: the constructs a grep cannot classify — nested
//! block comments, raw strings, the lifetime/char ambiguity, raw
//! identifiers — plus the structural analyses built on top of the
//! token stream (test-scope masking, allow-annotation parsing).

use iolite_lint::lexer::{lex, TokenKind};
use iolite_lint::source::SourceFile;
use std::path::PathBuf;

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner */ still outer */ fn x() {}";
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokenKind::BlockComment);
    assert_eq!(toks[0].1, "/* outer /* inner */ still outer */");
    assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
}

#[test]
fn raw_strings_any_hash_depth() {
    let src = r####"let a = r"x"; let b = r#"std::fs"#; let c = r##"y "# z"##;"####;
    let raw: Vec<_> = kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == TokenKind::RawStr)
        .collect();
    assert_eq!(raw.len(), 3);
    assert_eq!(raw[1].1, r##"r#"std::fs"#"##);
    assert_eq!(raw[2].1, r###"r##"y "# z"##"###);
}

#[test]
fn byte_and_raw_byte_literals() {
    let src = r###"let a = b"bytes"; let b = br#"raw"#; let c = b'x';"###;
    let toks = kinds(src);
    assert!(toks.contains(&(TokenKind::Str, "b\"bytes\"".to_string())));
    assert!(toks.contains(&(TokenKind::RawStr, "br#\"raw\"#".to_string())));
    assert!(toks.contains(&(TokenKind::Char, "b'x'".to_string())));
}

#[test]
fn lifetimes_vs_char_literals() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let u = '\\u{1F600}'; }";
    let toks = kinds(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .collect();
    let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
    assert_eq!(lifetimes.len(), 2, "two 'a lifetimes: {toks:?}");
    assert_eq!(chars.len(), 3, "'x', '\\n', '\\u{{…}}': {toks:?}");
    assert_eq!(chars[2].1, "'\\u{1F600}'");
}

#[test]
fn static_lifetime_is_not_a_char() {
    let toks = kinds("fn f() -> &'static str { \"s\" }");
    assert!(toks.contains(&(TokenKind::Lifetime, "'static".to_string())));
}

#[test]
fn raw_identifiers_keep_their_prefix() {
    let toks = kinds("let r#match = 1; let r2 = r#match;");
    let raw: Vec<_> = toks
        .iter()
        .filter(|(k, t)| *k == TokenKind::Ident && t == "r#match")
        .collect();
    assert_eq!(raw.len(), 2);
}

#[test]
fn ranges_stay_three_tokens_floats_stay_one() {
    let toks = kinds("for i in 0..n { let x = 0.5; }");
    assert!(toks.contains(&(TokenKind::Number, "0".to_string())));
    assert!(toks.contains(&(TokenKind::Number, "0.5".to_string())));
    assert_eq!(
        toks.iter().filter(|(_, t)| t == ".").count(),
        2,
        "the range's two dots are punct: {toks:?}"
    );
}

#[test]
fn lexing_is_total_on_malformed_input() {
    // Unterminated string, stray quote, truncated escape, non-ASCII
    // punctuation and chars. Every token must also be a valid &str
    // slice (kinds() calls text() on each).
    for src in ["\"never closed", "let x = '", "let s = \"a\\", "héllo ← 'é'"] {
        let _ = kinds(src); // must not panic
    }
}

#[test]
fn multi_line_tokens_track_line_numbers() {
    let src = "let a = \"one\ntwo\";\nlet b = 1;";
    let toks = lex(src);
    let s = toks
        .iter()
        .find(|t| t.kind == TokenKind::Str)
        .expect("string token");
    assert_eq!((s.line, s.end_line), (1, 2));
    let b = toks
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text(src) == "b")
        .expect("b token");
    assert_eq!(b.line, 3);
}

fn source(src: &str) -> SourceFile {
    SourceFile::new(PathBuf::from("fixture.rs"), src.to_string())
}

#[test]
fn cfg_test_mask_covers_the_item_not_the_file() {
    let src = "fn ship() { work(); }\n\
               #[cfg(test)]\nmod tests {\n    fn helper() { copy(); }\n}\n\
               fn also_ships() { more(); }\n";
    let file = source(src);
    let masked: Vec<&str> = (0..file.tokens.len())
        .filter(|&i| file.test_mask[i])
        .map(|i| file.text(i))
        .collect();
    assert!(masked.contains(&"helper"));
    assert!(!masked.contains(&"ship"));
    assert!(!masked.contains(&"also_ships"));
}

#[test]
fn test_attribute_with_trailing_attributes_still_masks() {
    let src = "#[test]\n#[ignore]\nfn t() { boom(); }\nfn ship() {}\n";
    let file = source(src);
    let masked: Vec<&str> = (0..file.tokens.len())
        .filter(|&i| file.test_mask[i])
        .map(|i| file.text(i))
        .collect();
    assert!(masked.contains(&"boom"));
    assert!(!masked.contains(&"ship"));
}

#[test]
fn allow_parsing_trailing_and_block_forms() {
    let src = "\
let a = x.lock(); // lint:allow(no-lock) — trailing, covers this line
// lint:allow(panic) — a justification that
// spans several comment lines still covers
// the line after the block.
let b = y.unwrap();
// lint:allow(no-lock)
let c = z.lock();
";
    let file = source(src);
    assert!(file.allowed("no-lock", 1), "trailing form");
    assert!(file.allowed("panic", 5), "multi-line block reaches line 5");
    assert!(!file.allowed("panic", 6), "coverage ends after one code line");
    assert!(
        !file.allowed("no-lock", 7),
        "reasonless annotation must not exempt"
    );
    assert!(
        file.allows.iter().any(|a| a.rule == "no-lock" && !a.has_reason),
        "the reasonless annotation is still recorded (for hygiene)"
    );
}

//! The `iolite-lint` binary. See the library docs for the rule
//! catalog; see `lint.toml` for this repo's configuration.
//!
//! ```text
//! iolite-lint [--config <lint.toml>] [--fix-baseline]
//! ```
//!
//! Without `--config`, the config is found by walking from the current
//! directory upward — so the binary works from any subdirectory of the
//! repo. Exit status: 0 clean, 1 violations, 2 usage/config errors.

use std::path::PathBuf;
use std::process::ExitCode;

use iolite_lint::baseline::Baseline;
use iolite_lint::config::Config;
use iolite_lint::engine;

fn main() -> ExitCode {
    let mut config_path: Option<PathBuf> = None;
    let mut fix_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--fix-baseline" => fix_baseline = true,
            "--help" | "-h" => {
                println!("iolite-lint [--config <lint.toml>] [--fix-baseline]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = match config_path.or_else(find_config) {
        Some(p) => p,
        None => return usage("no lint.toml found here or in any parent directory"),
    };
    let root = config_path
        .parent()
        .map(PathBuf::from)
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| PathBuf::from("."));

    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => return usage(&format!("cannot read {}: {e}", config_path.display())),
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => return usage(&e),
    };

    let baseline_path = root.join(&cfg.baseline);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => match Baseline::parse(&t) {
            Ok(b) => b,
            Err(e) => return usage(&e),
        },
        // A missing baseline is an empty one: enforce mode will then
        // demand a `--fix-baseline` run via ratchet diagnostics.
        Err(_) => Baseline::default(),
    };

    let report = engine::run(&root, &cfg, &baseline, !fix_baseline);

    for note in &report.notes {
        println!("note: {note}");
    }
    for diag in &report.diags {
        println!("{diag}");
    }
    let rules = cfg.rules.len();
    println!(
        "iolite-lint: {} files, {rules} rules, {} violation{}",
        report.files_scanned,
        report.diags.len(),
        if report.diags.len() == 1 { "" } else { "s" },
    );

    if fix_baseline {
        if !report.diags.is_empty() {
            eprintln!(
                "iolite-lint: refusing to rewrite the baseline while the \
                 tree has violations — a ratchet must not bank failures"
            );
            return ExitCode::FAILURE;
        }
        // The purity disallow-list is workspace-wide; the linter's own
        // baseline rewrite is host tooling, not kernel state.
        #[allow(clippy::disallowed_methods)]
        if let Err(e) = std::fs::write(&baseline_path, report.observed.render()) {
            return usage(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!("iolite-lint: wrote {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    if report.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks upward from the current directory looking for `lint.toml`.
fn find_config() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("lint.toml");
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("iolite-lint: {message}");
    ExitCode::from(2)
}

//! The committed counts ratchet (`lint-baseline.toml`).
//!
//! Two rule kinds compare observed counts against this file instead of
//! demanding zero: deprecated-API callers (may only shrink) and
//! annotated panic sites (the budget). The file is committed, so an
//! intentional change is an explicit, reviewable diff — produced by
//! `iolite-lint --fix-baseline`, never by hand-tweaking counts to make
//! CI pass.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::toml::{Doc, Value};

/// Counts per rule: rule name → key → count. For `baseline-count`
/// rules the keys are symbol names; for budgeted scan rules the single
/// key is `"allowed"`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    tables: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Parses the baseline file's text.
    ///
    /// # Errors
    ///
    /// Returns a message on syntax errors or non-integer counts.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Doc::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let mut b = Baseline::default();
        for name in doc.table_names() {
            if name.is_empty() {
                continue;
            }
            let table = doc.table(name).expect("listed name");
            for (key, value) in table {
                let Value::Int(n) = value else {
                    return Err(format!("baseline [{name}] {key}: counts must be integers"));
                };
                if *n < 0 {
                    return Err(format!("baseline [{name}] {key}: negative count"));
                }
                b.set(name, key, *n as u64);
            }
        }
        Ok(b)
    }

    /// The recorded count for `(rule, key)`, if any.
    pub fn get(&self, rule: &str, key: &str) -> Option<u64> {
        self.tables.get(rule).and_then(|t| t.get(key)).copied()
    }

    /// Records a count.
    pub fn set(&mut self, rule: &str, key: &str, count: u64) {
        self.tables
            .entry(rule.to_string())
            .or_default()
            .insert(key.to_string(), count);
    }

    /// Renders the file body (stable order — the diff is the review).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# iolite-lint counts ratchet. Regenerate with\n\
             # `cargo run --release -p iolite-lint -- --fix-baseline`;\n\
             # never edit counts by hand (the diff is the review).\n",
        );
        for (rule, table) in &self.tables {
            let _ = write!(out, "\n[{rule}]\n");
            for (key, count) in table {
                let _ = writeln!(out, "{key} = {count}");
            }
        }
        out
    }
}

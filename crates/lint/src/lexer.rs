//! A hand-rolled Rust lexer, exactly deep enough for contract linting.
//!
//! The whole point of replacing the CI `grep` with a lexer is knowing
//! *where text is*: a `std::fs` inside a comment or string literal is
//! prose, not code, and must not trip the purity rule, while
//! `use std::time::Instant as T` is code however it is renamed. The
//! lexer therefore distinguishes, byte-precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any hash depth, `br…` included);
//! * lifetimes (`'a`, `'static`) vs char literals (`'a'`, `'\n'`,
//!   `'\u{1F600}'`) — the classic single-quote ambiguity;
//! * raw identifiers (`r#match`);
//! * identifiers, numbers, and single-character punctuation.
//!
//! Everything else about Rust (types, expressions, semantics) is out of
//! scope on purpose: the rules only ever match *token patterns*, which
//! keeps the linter trivially total — any byte sequence lexes.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `match`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A string or byte-string literal with escapes (`"…"`, `b"…"`).
    Str,
    /// A raw (byte) string literal (`r"…"`, `r##"…"##`, `br#"…"#`).
    RawStr,
    /// A numeric literal (loosely lexed; suffixes included).
    Number,
    /// A single punctuation byte (`:`, `.`, `{`, …).
    Punct,
    /// A `//…` comment, terminator excluded.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
}

/// One lexed token: a kind plus its byte span and line range in the
/// source (lines are 1-based; `end_line > line` only for multi-line
/// strings and block comments).
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on.
    pub end_line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Total: malformed input (unterminated
/// strings, stray bytes) degrades to best-effort tokens rather than
/// failing — a linter must never be the thing that can't read a file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {
                    // `raw_or_byte_literal` consumed the token and
                    // pushed it (it needs to choose among four kinds).
                    continue;
                }
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ => {
                    // One punctuation character. A multi-byte UTF-8
                    // scalar in code position is consumed whole so
                    // every token stays a valid &str slice.
                    self.pos += 1;
                    while self
                        .peek(0)
                        .is_some_and(|c| c & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    TokenKind::Punct
                }
            };
            self.push(kind, start, line);
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        // Truncated escapes at EOF can overshoot by a byte or two;
        // clamp so the span always slices.
        self.pos = self.pos.min(self.bytes.len());
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            end_line: self.line,
        });
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    /// Block comments nest in Rust: `/* /* */ */` is one comment.
    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::BlockComment
    }

    /// Handles `r`/`b`-prefixed literals: raw strings (`r"…"`,
    /// `r#"…"#`), byte strings (`b"…"`), raw byte strings (`br#"…"#`),
    /// byte chars (`b'x'`), and raw identifiers (`r#ident`). Returns
    /// `true` when it consumed (and pushed) a token; `false` means the
    /// `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let mut i = self.pos;
        let raw = if self.bytes[i] == b'b' && self.bytes.get(i + 1) == Some(&b'r') {
            i += 2;
            true
        } else if self.bytes[i] == b'r' {
            i += 1;
            true
        } else {
            i += 1; // the `b`
            false
        };
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(i + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.bytes.get(i + hashes) == Some(&b'"') {
                self.pos = i + hashes + 1;
                self.raw_str_body(hashes);
                self.push(TokenKind::RawStr, start, line);
                return true;
            }
            // `r#ident`: a raw identifier, lexed as one Ident token
            // whose text keeps the `r#` prefix.
            if self.bytes[start] == b'r' && hashes == 1 {
                if let Some(c) = self.bytes.get(i + 1) {
                    if *c == b'_' || c.is_ascii_alphabetic() {
                        self.pos = i + 1;
                        self.ident();
                        self.push(TokenKind::Ident, start, line);
                        return true;
                    }
                }
            }
            return false;
        }
        // `b"…"` / `b'…'`.
        match self.bytes.get(i) {
            Some(b'"') => {
                self.pos = i;
                self.string();
                self.push(TokenKind::Str, start, line);
                true
            }
            Some(b'\'') => {
                self.pos = i;
                self.char_literal();
                self.push(TokenKind::Char, start, line);
                true
            }
            _ => false,
        }
    }

    /// Consumes a raw-string body up to `"` followed by `hashes` `#`s.
    fn raw_str_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let mut n = 0usize;
                while n < hashes && self.bytes.get(self.pos + 1 + n) == Some(&b'#') {
                    n += 1;
                }
                if n == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// A `"…"` string with `\`-escapes (opening quote at `self.pos`).
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Str
    }

    /// A `'` either opens a char literal or names a lifetime. Rust's
    /// rule: `'x` followed by another `'` is a char; `'ident` not
    /// followed by `'` is a lifetime.
    fn quote(&mut self) -> TokenKind {
        let next = self.peek(1);
        let after = self.peek(2);
        let next_is_ident = next.is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric());
        if next_is_ident && after != Some(b'\'') {
            // Lifetime: consume `'` + identifier chars.
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        self.char_literal();
        TokenKind::Char
    }

    /// A char literal (opening quote at `self.pos`), escapes included
    /// (`'\''`, `'\\'`, `'\u{…}'`, multi-byte UTF-8 chars).
    fn char_literal(&mut self) {
        self.pos += 1; // opening '
        if self.peek(0) == Some(b'\\') {
            self.pos += 2; // the escape head, e.g. `\u` or `\'`
            if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'{') {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'}' {
                    self.pos += 1;
                }
                self.pos += 1;
            } else if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'u') {
                // `\u{…}`: consume the braced code point.
                if self.peek(0) == Some(b'{') {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'}' {
                        self.pos += 1;
                    }
                    self.pos += 1;
                }
            } else if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'x') {
                self.pos += 2; // two hex digits
            }
        } else {
            // One UTF-8 scalar: skip continuation bytes.
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c & 0b1100_0000 == 0b1000_0000)
            {
                self.pos += 1;
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1; // closing '
        }
    }

    fn number(&mut self) -> TokenKind {
        // Digits, `_`, suffixes, hex letters — lexed loosely. A `.` is
        // consumed only when a digit follows (so `0..n` stays three
        // tokens and `0.5` stays one).
        self.pos += 1;
        loop {
            match self.peek(0) {
                Some(c) if c == b'_' || c.is_ascii_alphanumeric() => self.pos += 1,
                Some(b'.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        self.pos += 1;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

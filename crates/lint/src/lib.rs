//! **iolite-lint** — the repo's contract checker: the ROADMAP's prose
//! invariants, turned into machine-checked rules.
//!
//! Every PR so far left behind a standing contract ("the pure core
//! stays pure", "the serving path never panics", "no locks in the
//! sharded kernel") that until now was enforced by review memory and
//! one brittle CI `grep`. This crate replaces that with a lexer-backed
//! checker: `cargo run --release -p iolite-lint` scans the tree,
//! prints `file:line: [rule] message` diagnostics, and exits nonzero
//! on any violation. CI runs it before clippy.
//!
//! # Rule catalog
//!
//! | rule | kind | contract |
//! |------|------|----------|
//! | `purity` | `scan` | `crates/core/src/pure/` is deterministic: no `std::io`/`std::time`/`std::fs`, no RNG, no wall-clock — journal replay (PR 6) depends on it. Robust to `use … as` renames (the `use` line spells the banned path) and immune to comment/string false positives (the old grep was not). |
//! | `no-lock` | `scan` | No `Mutex`/`RwLock` in the kernel, cache, or serving crates — the sharded design (PR 7) is shared-nothing; cross-shard communication goes over the fabric. |
//! | `hot-path-alloc` | `scan` | No `.to_vec()`/`.clone()`/`Vec::new`/`vec!` in the designated hot serving modules — the zero-copy aggregate discipline (PR 2). Deliberate copies carry an annotation. |
//! | `panic` | `scan` + budget | No `.unwrap()`/`.expect()`/`panic!` in the event loop or shard fabric (PR 5: a request must never kill the server). Justified sites are annotated and *budgeted*: the committed count may only shrink. |
//! | `command-coverage` | `exhaustive` | Every `pure::Command` variant has an `apply` match arm **and** a journaling shell site — a variant the shell never journals silently replays nothing (PR 6). Also flags wildcard `_ =>` arms in the dispatcher. |
//! | `deprecated-api` | `baseline-count` | Callers of the PR 4 raw `FileId`/`PipeId` shims (`iol_read`, `posix_write`, …) are counted against the committed baseline — shrink-only. |
//!
//! # Annotation syntax
//!
//! ```text
//! // lint:allow(rule-name) — reason the contract is waived here
//! ```
//!
//! The annotation exempts its own line and the next line from the
//! named rule. The reason is **mandatory** — an annotation without one
//! is itself a diagnostic, as is one naming an unconfigured rule.
//!
//! # Configuration
//!
//! Rules live in `lint.toml` at the repo root (schema in [`config`]);
//! ratcheted counts live in `lint-baseline.toml`, regenerated only by
//! `cargo run --release -p iolite-lint -- --fix-baseline` so every
//! baseline change is a reviewable diff.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod toml;

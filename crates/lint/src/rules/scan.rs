//! The generic token-pattern scanner.
//!
//! One engine, four contracts: **purity** (`std::{io,time,fs}`, RNG and
//! wall-clock identifiers banned from the pure core — robust to `use …
//! as` renames because the `use` line itself spells the banned path),
//! **no-lock** (`Mutex`/`RwLock` identifiers banned from kernel/cache/
//! serving crates), **hot-path-alloc** (`.to_vec()`/`.clone()`/
//! `Vec::new`/`vec!` banned from designated hot modules), and
//! **panic** (`.unwrap()`/`.expect()`/`panic!` banned from the serving
//! path). Each banned occurrence is a diagnostic unless the line
//! carries a `lint:allow(<rule>) — reason` annotation.
//!
//! Matching runs over *code* tokens only — comments and string/char
//! literals can spell `std::fs` all day (this is the false-positive
//! class the old CI grep suffered from).

use crate::config::ScanRule;
use crate::lexer::TokenKind;
use crate::rules::Diagnostic;
use crate::source::SourceFile;

/// The scanner's verdict on one file.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Unannotated violations.
    pub diags: Vec<Diagnostic>,
    /// Sites a `lint:allow` annotation exempted (budget accounting).
    pub allowed_sites: u64,
}

/// Scans one file against `rule`, appending findings to `out`.
pub fn scan_file(name: &str, rule: &ScanRule, file: &SourceFile, out: &mut ScanOutcome) {
    let code = file.code_indexes();
    for (pos, &i) in code.iter().enumerate() {
        if !rule.include_tests && file.test_mask[i] {
            continue;
        }
        let tok = file.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = file.text(i);
        let found: Option<String> = banned_path(rule, file, &code, pos)
            .map(|p| format!("reference to banned path `{p}`"))
            .or_else(|| {
                rule.ban_idents
                    .iter()
                    .any(|b| b == text)
                    .then(|| format!("banned identifier `{text}`"))
            })
            .or_else(|| {
                (is_method_call(file, &code, pos) && rule.ban_methods.iter().any(|b| b == text))
                    .then(|| format!("banned call `.{text}()`"))
            })
            .or_else(|| {
                (is_macro_invocation(file, &code, pos)
                    && rule.ban_macros.iter().any(|b| b == text))
                .then(|| format!("banned macro `{text}!`"))
            });
        let Some(what) = found else { continue };
        if file.allowed(name, tok.line) {
            out.allowed_sites += 1;
            continue;
        }
        let reason = if rule.reason.is_empty() {
            String::new()
        } else {
            format!(" — {}", rule.reason)
        };
        out.diags.push(Diagnostic {
            path: file.path.display().to_string(),
            line: tok.line,
            rule: name.to_string(),
            message: format!("{what}{reason}"),
        });
    }
}

/// If the idents starting at code-index `pos` spell one of the rule's
/// banned `a::b::c` paths, returns the matched path. Longest patterns
/// are configured patterns, so first match wins.
fn banned_path(
    rule: &ScanRule,
    file: &SourceFile,
    code: &[usize],
    pos: usize,
) -> Option<String> {
    'pattern: for pattern in &rule.ban_paths {
        let mut c = pos;
        for (seg_idx, seg) in pattern.iter().enumerate() {
            if c >= code.len()
                || file.tokens[code[c]].kind != TokenKind::Ident
                || file.text(code[c]) != seg
            {
                continue 'pattern;
            }
            c += 1;
            if seg_idx + 1 < pattern.len() {
                // Expect `::` between segments.
                if !(punct_at(file, code, c, ":") && punct_at(file, code, c + 1, ":")) {
                    continue 'pattern;
                }
                c += 2;
            }
        }
        return Some(pattern.join("::"));
    }
    None
}

/// Whether the ident at code-index `pos` is a `.name(` method call.
fn is_method_call(file: &SourceFile, code: &[usize], pos: usize) -> bool {
    pos > 0
        && punct_at(file, code, pos - 1, ".")
        && (punct_at(file, code, pos + 1, "(")
            // `.collect::<Vec<_>>()`-style turbofish on the call.
            || (punct_at(file, code, pos + 1, ":") && punct_at(file, code, pos + 2, ":")))
}

/// Whether the ident at code-index `pos` is a `name!` macro invocation.
fn is_macro_invocation(file: &SourceFile, code: &[usize], pos: usize) -> bool {
    punct_at(file, code, pos + 1, "!")
}

fn punct_at(file: &SourceFile, code: &[usize], pos: usize, what: &str) -> bool {
    code.get(pos).is_some_and(|&i| {
        file.tokens[i].kind == TokenKind::Punct && file.text(i) == what
    })
}

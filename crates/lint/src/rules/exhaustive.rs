//! The enum ↔ match ↔ shell cross-check.
//!
//! The pure core's `Command` enum, the `step` dispatcher in `apply.rs`,
//! and the journaling shell in `kernel.rs` must stay in one-to-one
//! correspondence: a new variant whose `apply` arm exists but whose
//! shell never journals it replays *nothing* for that operation —
//! replay diverges silently, which is exactly the bug class this rule
//! makes impossible. (rustc's own exhaustiveness check covers the
//! match arm only while the match has no wildcard, and covers the
//! shell not at all.)
//!
//! Mechanically: every variant parsed out of `enum <Name> { … }` must
//! appear as the token sequence `<Name>::<Variant>` in each configured
//! match file and each configured shell file. A wildcard `_ =>` arm in
//! a match file is also flagged — it would defeat rustc's half of the
//! guarantee.

use crate::config::ExhaustiveRule;
use crate::lexer::TokenKind;
use crate::rules::Diagnostic;
use crate::source::SourceFile;

/// Extracts `enum <name>`'s variant identifiers (with the line each is
/// declared on). Returns `None` when the enum isn't in the file.
pub fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let code = file.code_indexes();
    // Find `enum <name> {`.
    let mut at = None;
    for (pos, &i) in code.iter().enumerate() {
        if file.tokens[i].kind == TokenKind::Ident
            && file.text(i) == "enum"
            && code.get(pos + 1).is_some_and(|&j| file.text(j) == name)
        {
            at = Some(pos + 2);
            break;
        }
    }
    let mut c = at?;
    // Skip to the opening brace (generics would sit here; `Command`
    // has none, but stay robust).
    while c < code.len() && file.text(code[c]) != "{" {
        c += 1;
    }
    let mut variants = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut expect_variant = false;
    while c < code.len() {
        let i = code[c];
        let text = file.text(i);
        match text {
            "{" => {
                brace += 1;
                if brace == 1 {
                    expect_variant = true;
                }
            }
            "}" => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            "," if brace == 1 && paren == 0 => expect_variant = true,
            "#" if brace == 1 && paren == 0 => {
                // An attribute on the next variant: skip its `[…]`.
                if code.get(c + 1).is_some_and(|&j| file.text(j) == "[") {
                    let mut depth = 0i32;
                    c += 1;
                    while c < code.len() {
                        match file.text(code[c]) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        c += 1;
                    }
                }
            }
            _ => {
                if expect_variant
                    && brace == 1
                    && paren == 0
                    && file.tokens[i].kind == TokenKind::Ident
                {
                    variants.push((text.to_string(), file.tokens[i].line));
                    expect_variant = false;
                }
            }
        }
        c += 1;
    }
    Some(variants)
}

/// Whether `file` contains the token sequence `enum_name::variant`.
pub fn mentions_variant(file: &SourceFile, enum_name: &str, variant: &str) -> bool {
    let code = file.code_indexes();
    for (pos, &i) in code.iter().enumerate() {
        if file.tokens[i].kind != TokenKind::Ident || file.text(i) != enum_name {
            continue;
        }
        let colon = |p: usize| {
            code.get(p).is_some_and(|&j| {
                file.tokens[j].kind == TokenKind::Punct && file.text(j) == ":"
            })
        };
        if colon(pos + 1)
            && colon(pos + 2)
            && code
                .get(pos + 3)
                .is_some_and(|&j| file.tokens[j].kind == TokenKind::Ident && file.text(j) == variant)
        {
            return true;
        }
    }
    false
}

/// Whether `file` contains a wildcard match arm (`_ =>`) — in the pure
/// dispatcher this would silence rustc's exhaustiveness check.
pub fn has_wildcard_arm(file: &SourceFile) -> Option<u32> {
    let code = file.code_indexes();
    for (pos, &i) in code.iter().enumerate() {
        if file.tokens[i].kind == TokenKind::Ident
            && file.text(i) == "_"
            && code.get(pos + 1).is_some_and(|&j| file.text(j) == "=")
            && code.get(pos + 2).is_some_and(|&j| file.text(j) == ">")
        {
            return Some(file.tokens[i].line);
        }
    }
    None
}

/// Runs the cross-check. `lookup` resolves a configured path to its
/// loaded [`SourceFile`]; missing files are reported as diagnostics
/// (config rot must fail the run, not skip the rule).
pub fn check<'a>(
    name: &str,
    rule: &ExhaustiveRule,
    mut lookup: impl FnMut(&str) -> Option<&'a SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(enum_file) = lookup(&rule.enum_file) else {
        out.push(missing(name, &rule.enum_file));
        return;
    };
    let Some(variants) = enum_variants(enum_file, &rule.enum_name) else {
        out.push(Diagnostic {
            path: rule.enum_file.clone(),
            line: 1,
            rule: name.to_string(),
            message: format!("`enum {}` not found", rule.enum_name),
        });
        return;
    };
    let enum_path = enum_file.path.display().to_string();
    let sides: [(&[String], &str, bool); 2] = [
        (&rule.match_files, "no `apply` match arm in", true),
        (&rule.shell_files, "no journaling shell site in", false),
    ];
    for (files, what, is_dispatcher) in sides {
        for path in files {
            let Some(file) = lookup(path) else {
                out.push(missing(name, path));
                continue;
            };
            // Only the dispatcher is wildcard-checked: general shell
            // code matches plenty of other things with `_ =>`.
            if is_dispatcher {
                if let Some(line) = has_wildcard_arm(file) {
                    out.push(Diagnostic {
                        path: file.path.display().to_string(),
                        line,
                        rule: name.to_string(),
                        message: format!(
                            "wildcard `_ =>` arm defeats {} exhaustiveness",
                            rule.enum_name
                        ),
                    });
                }
            }
            for (variant, line) in &variants {
                if !mentions_variant(file, &rule.enum_name, variant) {
                    out.push(Diagnostic {
                        path: enum_path.clone(),
                        line: *line,
                        rule: name.to_string(),
                        message: format!(
                            "variant `{}::{variant}` has {what} {path} — \
                             a journaled run would not replay it",
                            rule.enum_name
                        ),
                    });
                }
            }
        }
    }
}

fn missing(rule: &str, path: &str) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: 1,
        rule: rule.to_string(),
        message: "configured file not found".to_string(),
    }
}

//! The deprecated-API caller ratchet.
//!
//! PR 4's raw `FileId`/`PipeId` shims (`iol_read`, `posix_write`, …)
//! carry `#[deprecated]`, but rustc only warns — nothing stops a new
//! caller from landing. This rule counts `.symbol(` call sites across
//! the scoped paths (minus the definition files) and compares each
//! count to the committed baseline: equal is fine, *below* suggests a
//! `--fix-baseline` run to bank the progress, *above* is a failure.
//!
//! Counting `.name(` token sequences is a heuristic — another type
//! could define a method with the same name — but the shim names are
//! distinctive and the baseline makes any drift visible and reviewable
//! rather than silent.

use crate::config::CountRule;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Counts `.method(` call sites for each of the rule's symbols in one
/// file, adding into `counts` (parallel to `rule.methods`).
pub fn count_file(rule: &CountRule, file: &SourceFile, counts: &mut [u64]) {
    let code = file.code_indexes();
    for (pos, &i) in code.iter().enumerate() {
        if file.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        // Deprecated callers in tests count too: the point of the
        // ratchet is total elimination, not just production hygiene.
        if pos == 0 || !punct_at(file, &code, pos - 1, ".") {
            continue;
        }
        if !punct_at(file, &code, pos + 1, "(") {
            continue;
        }
        let text = file.text(i);
        if let Some(slot) = rule.methods.iter().position(|m| m == text) {
            counts[slot] += 1;
        }
    }
}

fn punct_at(file: &SourceFile, code: &[usize], pos: usize, what: &str) -> bool {
    code.get(pos).is_some_and(|&i| {
        file.tokens[i].kind == TokenKind::Punct && file.text(i) == what
    })
}

//! The rule implementations.
//!
//! Three kinds cover every standing contract:
//!
//! * [`scan`] — generic token-pattern policing (purity, no-lock,
//!   hot-path allocation, panic discipline are all configurations of
//!   this one scanner);
//! * [`exhaustive`] — the `Command` enum ↔ `apply` match ↔ journaling
//!   shell cross-check;
//! * [`count`] — deprecated-API caller counting against the committed
//!   baseline.

pub mod count;
pub mod exhaustive;
pub mod scan;

/// One finding: a violated contract at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the lint root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule's name.
    pub rule: String,
    /// What was found (and, for scan rules, the contract's reason).
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

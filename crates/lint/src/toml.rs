//! A minimal TOML subset parser — exactly what `lint.toml` and the
//! baseline file need, nothing more (the build environment has no
//! crates.io access; see `shims/README.md`).
//!
//! Supported: `[dotted.table]` headers, `key = "string"`,
//! `key = 123`, `key = true|false`, single- or multi-line
//! `key = ["a", "b"]` string arrays, and `#` comments. Unsupported
//! syntax is a hard parse error — config typos should fail the run,
//! not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// A TOML value in the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of quoted strings.
    StrArray(Vec<String>),
}

/// A parsed document: dotted table name → key → value. Keys written
/// before any `[table]` header live in the table named `""`.
#[derive(Debug, Default, Clone)]
pub struct Doc {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
    /// Table names in first-appearance order (rule evaluation order).
    order: Vec<String>,
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Doc {
    /// Parses `text`.
    pub fn parse(text: &str) -> Result<Doc, ParseError> {
        let mut doc = Doc::default();
        let mut table = String::new();
        doc.order.push(table.clone());
        doc.tables.entry(table.clone()).or_default();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated [table] header"));
                };
                table = name.trim().to_string();
                if !doc.tables.contains_key(&table) {
                    doc.order.push(table.clone());
                }
                doc.tables.entry(table.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(err(lineno, "expected `key = value`"));
            };
            let key = line[..eq].trim().to_string();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line arrays: accumulate until brackets balance
            // outside strings.
            while value_text.starts_with('[') && !brackets_balanced(&value_text) {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, "unterminated array"));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&value_text, lineno)?;
            doc.tables
                .get_mut(&table)
                .expect("table inserted above")
                .insert(key, value);
        }
        Ok(doc)
    }

    /// The named table, if present.
    pub fn table(&self, name: &str) -> Option<&BTreeMap<String, Value>> {
        self.tables.get(name)
    }

    /// Table names, in first-appearance order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }
}

fn err(line: usize, message: &str) -> ParseError {
    ParseError {
        line,
        message: message.to_string(),
    }
}

/// Removes a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Whether `[` and `]` balance outside strings.
fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

fn parse_value(text: &str, line: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('"') {
        let Some(s) = unquote(body) else {
            return Err(err(line, "unterminated string"));
        };
        return Ok(Value::Str(s));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(line, "unterminated array"));
        };
        let mut items = Vec::new();
        for item in split_array(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let Some(body) = item.strip_prefix('"') else {
                return Err(err(line, "arrays may only hold strings"));
            };
            let Some(s) = unquote(body) else {
                return Err(err(line, "unterminated string in array"));
            };
            items.push(s);
        }
        return Ok(Value::StrArray(items));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(line, "unsupported value (string, int, bool, [\"…\"])"))
}

/// Splits array items on commas outside strings.
fn split_array(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&body[start..]);
    items
}

/// `body` starts *after* an opening quote; returns the unescaped
/// content if a closing quote terminates it (trailing text ignored).
fn unquote(body: &str) -> Option<String> {
    let mut out = String::new();
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

//! Orchestration: walk the configured paths once, lex each file once,
//! run every rule over the shared [`SourceFile`] cache, and fold the
//! results into one [`Report`].
//!
//! Two cross-cutting checks run here rather than in any single rule:
//!
//! * **annotation hygiene** — a `lint:allow(<rule>)` naming a rule that
//!   isn't configured is dead weight (usually a typo silently
//!   disabling nothing), and an annotation without a reason defeats
//!   the point of annotations; both are diagnostics;
//! * **baseline ratchets** — budgeted scan rules and `baseline-count`
//!   rules compare observed counts to the committed baseline: growth
//!   is a failure, shrinkage a note suggesting `--fix-baseline`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::config::{Config, Rule};
use crate::rules::{count, exhaustive, scan, Diagnostic};
use crate::source::SourceFile;

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Contract violations — any means a nonzero exit.
    pub diags: Vec<Diagnostic>,
    /// Informational lines (baseline shrinkage, mostly).
    pub notes: Vec<String>,
    /// Observed counts for every ratcheted rule — what `--fix-baseline`
    /// writes out.
    pub observed: Baseline,
    /// Number of distinct files lexed and scanned.
    pub files_scanned: usize,
}

/// Runs every configured rule. `root` anchors the config-relative
/// paths; `enforce_baseline = false` (the `--fix-baseline` path) skips
/// ratchet comparisons while still running every other check, so a
/// baseline can only be regenerated from an otherwise-clean tree.
pub fn run(root: &Path, cfg: &Config, baseline: &Baseline, enforce_baseline: bool) -> Report {
    let mut report = Report::default();
    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();

    let mut wanted: Vec<String> = Vec::new();
    for (_, rule) in &cfg.rules {
        match rule {
            Rule::Scan(r) => wanted.extend(r.paths.iter().cloned()),
            Rule::Count(r) => wanted.extend(r.paths.iter().cloned()),
            Rule::Exhaustive(r) => {
                wanted.push(r.enum_file.clone());
                wanted.extend(r.match_files.iter().cloned());
                wanted.extend(r.shell_files.iter().cloned());
            }
        }
    }
    for rel in wanted {
        collect(root, rel.trim_end_matches('/'), &mut files, &mut report.diags);
    }
    report.files_scanned = files.len();

    // Annotation hygiene — policed where annotations have effect (the
    // union of scan-rule scopes; elsewhere `lint:allow` in a comment is
    // just prose, e.g. this crate's own docs).
    let rule_names = cfg.rule_names();
    let scan_scope: Vec<String> = cfg
        .rules
        .iter()
        .filter_map(|(_, r)| match r {
            Rule::Scan(s) => Some(s.paths.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    for (rel, file) in &files {
        if !in_scope(rel, &scan_scope) {
            continue;
        }
        for allow in &file.allows {
            if !rule_names.contains(&allow.rule.as_str()) {
                report.diags.push(Diagnostic {
                    path: rel.clone(),
                    line: allow.line,
                    rule: "annotation".to_string(),
                    message: format!(
                        "`lint:allow({})` names no configured rule (typo?)",
                        allow.rule
                    ),
                });
            } else if !allow.has_reason {
                report.diags.push(Diagnostic {
                    path: rel.clone(),
                    line: allow.line,
                    rule: "annotation".to_string(),
                    message: format!(
                        "`lint:allow({})` has no reason — every exemption \
                         must say why",
                        allow.rule
                    ),
                });
            }
        }
    }

    for (name, rule) in &cfg.rules {
        match rule {
            Rule::Scan(r) => {
                let mut outcome = scan::ScanOutcome::default();
                let mut in_scope_files = 0usize;
                for (rel, file) in &files {
                    if !in_scope(rel, &r.paths) {
                        continue;
                    }
                    in_scope_files += 1;
                    scan::scan_file(name, r, file, &mut outcome);
                }
                if in_scope_files == 0 {
                    report.diags.push(config_rot(name, &r.paths));
                }
                report.diags.extend(outcome.diags);
                if r.budget {
                    report.observed.set(name, "allowed", outcome.allowed_sites);
                    if enforce_baseline {
                        ratchet(name, "allowed sites", outcome.allowed_sites,
                                baseline.get(name, "allowed"), &mut report);
                    }
                }
            }
            Rule::Exhaustive(r) => {
                exhaustive::check(name, r, |p| files.get(p), &mut report.diags);
            }
            Rule::Count(r) => {
                let mut counts = vec![0u64; r.methods.len()];
                let mut in_scope_files = 0usize;
                for (rel, file) in &files {
                    if !in_scope(rel, &r.paths) || in_scope(rel, &r.exclude) {
                        continue;
                    }
                    in_scope_files += 1;
                    count::count_file(r, file, &mut counts);
                }
                if in_scope_files == 0 {
                    report.diags.push(config_rot(name, &r.paths));
                }
                for (method, &n) in r.methods.iter().zip(&counts) {
                    report.observed.set(name, method, n);
                    if enforce_baseline {
                        ratchet(name, &format!("`.{method}()` callers"), n,
                                baseline.get(name, method), &mut report);
                    }
                }
            }
        }
    }

    report
        .diags
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// One ratchet comparison: observed vs committed.
fn ratchet(rule: &str, what: &str, observed: u64, committed: Option<u64>, report: &mut Report) {
    let key_hint = "run `--fix-baseline` and commit the diff";
    match committed {
        None => report.diags.push(Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 1,
            rule: rule.to_string(),
            message: format!("no baseline entry for {what} — {key_hint}"),
        }),
        Some(b) if observed > b => report.diags.push(Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 1,
            rule: rule.to_string(),
            message: format!(
                "{what} grew: {observed} observed vs {b} committed — the \
                 ratchet only turns one way; remove the new site or justify \
                 the increase in review and {key_hint}"
            ),
        }),
        Some(b) if observed < b => report.notes.push(format!(
            "[{rule}] {what} shrank: {observed} observed vs {b} committed — \
             {key_hint} to bank the progress"
        )),
        Some(_) => {}
    }
}

fn config_rot(rule: &str, paths: &[String]) -> Diagnostic {
    Diagnostic {
        path: paths.first().cloned().unwrap_or_default(),
        line: 1,
        rule: rule.to_string(),
        message: "configured paths match no .rs files — the rule polices \
                  nothing (moved module? fix lint.toml)"
            .to_string(),
    }
}

/// Whether `rel` is `p` or inside directory `p`, for any `p` in
/// `paths`.
fn in_scope(rel: &str, paths: &[String]) -> bool {
    paths.iter().any(|p| {
        let p = p.trim_end_matches('/');
        rel == p || (rel.len() > p.len() && rel.starts_with(p) && rel.as_bytes()[p.len()] == b'/')
    })
}

/// Recursively loads `.rs` files under `root`/`rel` into `files`,
/// skipping hidden entries and `target/`. Unreadable files are
/// diagnostics, not panics.
fn collect(
    root: &Path,
    rel: &str,
    files: &mut BTreeMap<String, SourceFile>,
    diags: &mut Vec<Diagnostic>,
) {
    let full = root.join(rel);
    if full.is_dir() {
        let Ok(entries) = fs::read_dir(&full) else {
            return;
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect(root, &format!("{rel}/{name}"), files, diags);
        }
    } else if rel.ends_with(".rs") && full.is_file() && !files.contains_key(rel) {
        match fs::read_to_string(&full) {
            Ok(src) => {
                files.insert(rel.to_string(), SourceFile::new(PathBuf::from(rel), src));
            }
            Err(e) => diags.push(Diagnostic {
                path: rel.to_string(),
                line: 1,
                rule: "read".to_string(),
                message: format!("cannot read file: {e}"),
            }),
        }
    }
}

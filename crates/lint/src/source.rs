//! A lexed source file plus the two structural facts every rule needs:
//! which tokens are test-only code, and which lines carry
//! `lint:allow` annotations.
//!
//! # Test scoping
//!
//! Hot-path and panic rules police *shipping* code; `#[cfg(test)]`
//! modules and `#[test]` functions are exempt. The mask is computed
//! structurally: an item introduced by a `#[cfg(test)]` or `#[test]`
//! attribute is skipped to its closing brace (or terminating `;`),
//! nested braces respected.
//!
//! # Allow annotations
//!
//! ```text
//! // lint:allow(rule-name) — why this site is exempt
//! ```
//!
//! An annotation exempts its comment block (the run of consecutive
//! comment lines it starts) **and the following line** from the named
//! rule — so it can sit trailing on the flagged line, on its own line
//! above it, or open a multi-line justification that ends just above
//! it. The reason is mandatory: an annotation without one is itself a
//! diagnostic — the whole point is that every exemption carries its
//! justification in-tree.

use std::path::PathBuf;

use crate::lexer::{lex, Token};

/// One parsed `lint:allow(rule)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: String,
    /// First line the exemption covers (the comment's own line).
    pub line: u32,
    /// Last line the exemption covers (the line after the comment).
    pub end_line: u32,
    /// Whether a non-empty reason followed the `(rule)`.
    pub has_reason: bool,
}

/// A file loaded, lexed, test-masked, and annotation-scanned once;
/// every rule then reads this.
pub struct SourceFile {
    /// Path as reported in diagnostics (relative to the lint root).
    pub path: PathBuf,
    /// The file's full text.
    pub src: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` — token `i` is inside `#[cfg(test)]`/`#[test]`
    /// scope.
    pub test_mask: Vec<bool>,
    /// Parsed `lint:allow` annotations.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lexes and analyzes `src`.
    pub fn new(path: PathBuf, src: String) -> SourceFile {
        let tokens = lex(&src);
        let test_mask = compute_test_mask(&tokens, &src);
        let allows = collect_allows(&tokens, &src);
        SourceFile {
            path,
            src,
            tokens,
            test_mask,
            allows,
        }
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.src)
    }

    /// Whether `rule` is allowed (with a reason) on `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.has_reason && (a.line..=a.end_line).contains(&line))
    }

    /// Indexes of non-comment tokens (what pattern matching runs over).
    pub fn code_indexes(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }
}

/// Marks every token inside a `#[cfg(test)]`- or `#[test]`-introduced
/// item. See the module docs for the algorithm.
fn compute_test_mask(tokens: &[Token], src: &str) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut c = 0usize;
    while c < code.len() {
        if let Some(attr_end) = test_attribute_end(tokens, src, &code, c) {
            // Skip any further attributes between this one and the item.
            let mut item_start = attr_end + 1;
            while item_start < code.len()
                && tokens[code[item_start]].text(src) == "#"
                && item_start + 1 < code.len()
                && tokens[code[item_start + 1]].text(src) == "["
            {
                item_start = skip_bracket_group(tokens, src, &code, item_start + 1) + 1;
            }
            let item_end = item_extent(tokens, src, &code, item_start);
            for &tok in &code[c..=item_end.min(code.len() - 1)] {
                mask[tok] = true;
            }
            c = item_end + 1;
        } else {
            c += 1;
        }
    }
    mask
}

/// If code-token `c` starts a `#[cfg(test)]` or `#[test]` attribute,
/// returns the code-index of its closing `]`.
fn test_attribute_end(
    tokens: &[Token],
    src: &str,
    code: &[usize],
    c: usize,
) -> Option<usize> {
    if tokens[code[c]].text(src) != "#" {
        return None;
    }
    let open = c + 1;
    if open >= code.len() || tokens[code[open]].text(src) != "[" {
        return None;
    }
    let close = skip_bracket_group(tokens, src, code, open);
    // The attribute's tokens, brackets excluded.
    let inner: Vec<&str> = code[open + 1..close.min(code.len())]
        .iter()
        .map(|&t| tokens[t].text(src))
        .collect();
    let is_test = match inner.first() {
        Some(&"test") => inner.len() == 1,
        Some(&"cfg") => inner.contains(&"test"),
        _ => false,
    };
    is_test.then_some(close)
}

/// Given code-index `open` pointing at `[`, returns the code-index of
/// the matching `]` (or the last token on unbalanced input).
fn skip_bracket_group(tokens: &[Token], src: &str, code: &[usize], open: usize) -> usize {
    let mut depth = 0i32;
    let mut c = open;
    while c < code.len() {
        match tokens[code[c]].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return c;
                }
            }
            _ => {}
        }
        c += 1;
    }
    code.len().saturating_sub(1)
}

/// The code-index of the end of the item starting at `start`: the
/// matching `}` of its first brace group, or the first `;` seen before
/// any brace (declarations like `mod tests;`).
fn item_extent(tokens: &[Token], src: &str, code: &[usize], start: usize) -> usize {
    let mut depth = 0i32;
    let mut c = start;
    while c < code.len() {
        match tokens[code[c]].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return c;
                }
            }
            ";" if depth == 0 => return c,
            _ => {}
        }
        c += 1;
    }
    code.len().saturating_sub(1)
}

/// Scans comments for `lint:allow(rule) — reason` annotations.
fn collect_allows(tokens: &[Token], src: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        // A justification may run over several comment lines; the
        // annotation covers the whole consecutive comment block plus
        // the line after it.
        let mut cover_end = tok.end_line;
        for next in &tokens[idx + 1..] {
            if next.is_comment() && next.line == cover_end + 1 {
                cover_end = next.end_line;
            } else {
                break;
            }
        }
        let text = tok.text(src);
        let mut rest = text;
        while let Some(at) = rest.find("lint:allow(") {
            let after = &rest[at + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            // The reason is whatever follows the closing paren, once
            // separators (dashes, colons, whitespace) are stripped.
            let reason = tail
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':')
                })
                .trim();
            allows.push(Allow {
                rule,
                line: tok.line,
                end_line: cover_end + 1,
                has_reason: !reason.is_empty(),
            });
            rest = tail;
        }
    }
    allows
}

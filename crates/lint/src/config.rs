//! `lint.toml` → typed rule configuration.
//!
//! # Schema
//!
//! ```toml
//! [lint]
//! baseline = "lint-baseline.toml"   # counts ratchet file
//!
//! [rules.<name>]          # one table per rule; <name> is the rule's
//! kind = "scan"           # diagnostic name and its lint:allow key
//! paths = ["crates/…"]    # files or directories, config-relative
//! include-tests = false   # scan #[cfg(test)]/#[test] code too
//! ban-paths = ["std::io"] # `a::b` token sequences to flag
//! ban-idents = ["Mutex"]  # bare identifiers to flag
//! ban-methods = ["clone"] # `.name(` call sites to flag
//! ban-macros = ["vec"]    # `name!` invocations to flag
//! budget = true           # annotated sites ratchet via the baseline
//! reason = "…"            # printed with every diagnostic
//!
//! [rules.<name>]
//! kind = "exhaustive"     # enum ↔ match ↔ shell cross-check
//! enum-file = "…"
//! enum-name = "Command"
//! match-files = ["…"]     # every variant needs `Enum::Variant` here…
//! shell-files = ["…"]     # …and here (the journaling shell site)
//!
//! [rules.<name>]
//! kind = "baseline-count" # deprecated-API caller ratchet
//! paths = ["crates"]
//! exclude = ["crates/core/src/kernel.rs"]   # definition sites
//! methods = ["iol_read"]  # `.name(` callers counted per symbol
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::toml::{Doc, Value};

/// A `kind = "scan"` rule: flag configured token patterns in scoped
/// paths unless a `lint:allow` annotation covers the line.
#[derive(Debug, Clone, Default)]
pub struct ScanRule {
    /// Files/directories the rule polices (config-relative).
    pub paths: Vec<String>,
    /// Whether test-scoped code is policed too.
    pub include_tests: bool,
    /// `a::b` path patterns to flag, split on `::`.
    pub ban_paths: Vec<Vec<String>>,
    /// Bare identifiers to flag.
    pub ban_idents: Vec<String>,
    /// Method names whose `.name(` call sites are flagged.
    pub ban_methods: Vec<String>,
    /// Macro names whose `name!` invocations are flagged.
    pub ban_macros: Vec<String>,
    /// When set, the count of *annotated* (allowed) sites is ratcheted
    /// against the baseline file: it may shrink, never grow.
    pub budget: bool,
    /// One-line contract statement, echoed in diagnostics.
    pub reason: String,
}

/// A `kind = "exhaustive"` rule: every variant of the named enum must
/// appear as `Enum::Variant` in each match file and each shell file.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveRule {
    /// File declaring the enum.
    pub enum_file: String,
    /// The enum's name.
    pub enum_name: String,
    /// Files that must match every variant (the pure dispatcher).
    pub match_files: Vec<String>,
    /// Files that must journal every variant (the imperative shell).
    pub shell_files: Vec<String>,
}

/// A `kind = "baseline-count"` rule: callers of deprecated symbols are
/// counted and ratcheted against the baseline — shrink-only.
#[derive(Debug, Clone, Default)]
pub struct CountRule {
    /// Directories/files scanned for callers.
    pub paths: Vec<String>,
    /// Path prefixes excluded (the symbols' definition sites).
    pub exclude: Vec<String>,
    /// Method names whose `.name(` call sites are counted.
    pub methods: Vec<String>,
}

/// One configured rule.
#[derive(Debug, Clone)]
pub enum Rule {
    /// Token-pattern scan.
    Scan(ScanRule),
    /// Enum/match/shell cross-check.
    Exhaustive(ExhaustiveRule),
    /// Deprecated-caller ratchet.
    Count(CountRule),
}

/// The whole configuration: named rules in declaration order.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Baseline file path, config-relative.
    pub baseline: PathBuf,
    /// `(name, rule)` pairs in `lint.toml` order.
    pub rules: Vec<(String, Rule)>,
}

impl Config {
    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on syntax errors, unknown
    /// `kind`s, or missing required keys.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = Doc::parse(text).map_err(|e| format!("lint.toml: {e}"))?;
        let mut cfg = Config {
            baseline: PathBuf::from("lint-baseline.toml"),
            rules: Vec::new(),
        };
        if let Some(lint) = doc.table("lint") {
            if let Some(v) = lint.get("baseline") {
                cfg.baseline = PathBuf::from(str_of(v, "lint.baseline")?);
            }
        }
        for name in doc.table_names() {
            let Some(rule_name) = name.strip_prefix("rules.") else {
                continue;
            };
            let table = doc.table(name).expect("listed name");
            let kind = match table.get("kind") {
                Some(v) => str_of(v, "kind")?,
                None => return Err(format!("[{name}] missing `kind`")),
            };
            let rule = match kind.as_str() {
                "scan" => Rule::Scan(scan_rule(table, name)?),
                "exhaustive" => Rule::Exhaustive(exhaustive_rule(table, name)?),
                "baseline-count" => Rule::Count(count_rule(table, name)?),
                other => return Err(format!("[{name}] unknown kind `{other}`")),
            };
            cfg.rules.push((rule_name.to_string(), rule));
        }
        if cfg.rules.is_empty() {
            return Err("lint.toml defines no [rules.*] tables".to_string());
        }
        Ok(cfg)
    }

    /// All configured rule names (valid `lint:allow(…)` keys).
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|(n, _)| n.as_str()).collect()
    }
}

type Table = BTreeMap<String, Value>;

fn scan_rule(t: &Table, ctx: &str) -> Result<ScanRule, String> {
    Ok(ScanRule {
        paths: strs(t, "paths")?,
        include_tests: flag(t, "include-tests"),
        ban_paths: strs(t, "ban-paths")?
            .into_iter()
            .map(|p| p.split("::").map(str::to_string).collect())
            .collect(),
        ban_idents: strs(t, "ban-idents")?,
        ban_methods: strs(t, "ban-methods")?,
        ban_macros: strs(t, "ban-macros")?,
        budget: flag(t, "budget"),
        reason: opt_str(t, "reason")?.unwrap_or_default(),
    })
    .and_then(|r: ScanRule| {
        if r.paths.is_empty() {
            return Err(format!("[{ctx}] needs non-empty `paths`"));
        }
        if r.ban_paths.is_empty()
            && r.ban_idents.is_empty()
            && r.ban_methods.is_empty()
            && r.ban_macros.is_empty()
        {
            return Err(format!("[{ctx}] bans nothing — remove it or add ban-* keys"));
        }
        Ok(r)
    })
}

fn exhaustive_rule(t: &Table, ctx: &str) -> Result<ExhaustiveRule, String> {
    let r = ExhaustiveRule {
        enum_file: opt_str(t, "enum-file")?
            .ok_or_else(|| format!("[{ctx}] needs `enum-file`"))?,
        enum_name: opt_str(t, "enum-name")?
            .ok_or_else(|| format!("[{ctx}] needs `enum-name`"))?,
        match_files: strs(t, "match-files")?,
        shell_files: strs(t, "shell-files")?,
    };
    if r.match_files.is_empty() && r.shell_files.is_empty() {
        return Err(format!("[{ctx}] needs match-files and/or shell-files"));
    }
    Ok(r)
}

fn count_rule(t: &Table, ctx: &str) -> Result<CountRule, String> {
    let r = CountRule {
        paths: strs(t, "paths")?,
        exclude: strs(t, "exclude")?,
        methods: strs(t, "methods")?,
    };
    if r.paths.is_empty() || r.methods.is_empty() {
        return Err(format!("[{ctx}] needs `paths` and `methods`"));
    }
    Ok(r)
}

fn strs(t: &Table, key: &str) -> Result<Vec<String>, String> {
    match t.get(key) {
        None => Ok(Vec::new()),
        Some(Value::StrArray(v)) => Ok(v.clone()),
        Some(_) => Err(format!("`{key}` must be a string array")),
    }
}

fn flag(t: &Table, key: &str) -> bool {
    matches!(t.get(key), Some(Value::Bool(true)))
}

fn opt_str(t: &Table, key: &str) -> Result<Option<String>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn str_of(v: &Value, key: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("`{key}` must be a string")),
    }
}

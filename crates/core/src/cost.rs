//! The calibrated cost model: counts → simulated time.
//!
//! The paper's testbed is a 333MHz Pentium II with 128MB RAM, five
//! 100Mb/s Fast Ethernet adaptors, and a late-90s SCSI disk (§5). Every
//! constant below is an estimate of that machine, chosen once and then
//! *validated* against the paper's reported curve shapes (see
//! EXPERIMENTS.md): Flash ≈ 280–290 Mb/s plateau on large cached files,
//! Flash-Lite saturating the ~400Mb/s network by ~30–50KB, convergence
//! below 5KB, CGI halving conventional throughput, and the §5.8
//! application ratios.
//!
//! The model deliberately has *few* degrees of freedom: one uncached and
//! one cached copy bandwidth, one checksum bandwidth, and fixed per-
//! operation costs. Servers differ only in which operations their data
//! path performs — never in hidden per-server fudge factors, with the
//! single exception of Apache's documented process-model overhead.

use std::ops::{Add, AddAssign};

use iolite_sim::SimTime;

/// Where simulated CPU time went (for breakdown reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostCategory {
    /// Data copying (memcpy).
    Copy,
    /// Internet checksum computation.
    Checksum,
    /// Page-mapping operations in the IO-Lite window.
    PageMap,
    /// System-call traps.
    Syscall,
    /// Process context switches.
    ContextSwitch,
    /// HTTP parsing and per-request server bookkeeping.
    Request,
    /// TCP connection setup/teardown.
    TcpControl,
    /// Per-packet protocol and driver work.
    Packet,
    /// Apache's process-model overhead.
    ProcessModel,
    /// Application compute (word counting, pattern matching...).
    AppCompute,
}

/// A simulated CPU time charge with its dominant category.
///
/// Charges compose with `+`; composition keeps the first non-default
/// category for reporting and sums the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charge {
    /// Total simulated CPU time.
    pub time: SimTime,
}

impl Charge {
    /// The zero charge.
    pub const ZERO: Charge = Charge {
        time: SimTime::ZERO,
    };

    /// A charge of the given time.
    pub fn of(time: SimTime) -> Charge {
        Charge { time }
    }

    /// A charge of `us` microseconds.
    pub fn us(us: f64) -> Charge {
        Charge {
            time: SimTime::from_us(us),
        }
    }
}

impl Default for Charge {
    fn default() -> Self {
        Charge::ZERO
    }
}

impl Add for Charge {
    type Output = Charge;

    fn add(self, rhs: Charge) -> Charge {
        Charge {
            time: self.time + rhs.time,
        }
    }
}

impl AddAssign for Charge {
    fn add_assign(&mut self, rhs: Charge) {
        self.time += rhs.time;
    }
}

/// The machine model. All `*_us` fields are microseconds; bandwidths are
/// expressed as nanoseconds per byte for precision.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Uncached memcpy (DRAM-to-DRAM with write allocation): ~65 MB/s.
    pub copy_ns_per_byte: f64,
    /// Copy with a warm source (file cache in L2-reachable memory): ~95 MB/s.
    pub cached_copy_ns_per_byte: f64,
    /// Internet checksum loop (read-only pass): ~130 MB/s.
    pub checksum_ns_per_byte: f64,
    /// Trap + return for one system call.
    pub syscall_us: f64,
    /// Per-descriptor cost of one `poll`/`select` scan entry (kernel
    /// walk of the descriptor state; the event-driven servers pay this
    /// for every fd in the interest set on every loop iteration).
    pub poll_fd_us: f64,
    /// pmap_enter + TLB work per 4KB page, first mapping only.
    pub page_map_us: f64,
    /// Process context switch including cache pollution.
    pub context_switch_us: f64,
    /// Cost of one `mmap`+`munmap` cycle including soft page faults —
    /// paid by Flash on mapped-file-cache misses and by Apache on every
    /// request (it maps and unmaps per request).
    pub mmap_cycle_us: f64,
    /// Capacity of Flash's mapped-file cache, in files (the Flash paper
    /// describes this cache; tail files churn through it).
    pub flash_mapped_cache_files: usize,
    /// Server-side TCP accept path (SYN handling, PCB + socket alloc).
    pub tcp_accept_us: f64,
    /// Server-side close/teardown (FIN handling, PCB teardown).
    pub tcp_close_us: f64,
    /// Per-MSS packet send cost (driver + IP + TCP header work).
    pub per_packet_us: f64,
    /// HTTP request parse.
    pub http_parse_us: f64,
    /// Event-driven server per-request bookkeeping (Flash).
    pub server_fixed_us: f64,
    /// Extra per-request cost of the IOL API path (aggregate and pool
    /// bookkeeping, extra system-call surface). This is why Flash-Lite
    /// does not saturate the network until ~30KB documents (§5.2)
    /// despite touching no data.
    pub iol_request_extra_us: f64,
    /// Apache's extra per-request process-model cost (scheduling,
    /// select across processes, slower request handling).
    pub apache_request_extra_us: f64,
    /// Apache's extra per-byte buffer management cost.
    pub apache_extra_ns_per_byte: f64,
    /// CGI dispatch overhead per request (forward + process wakeup),
    /// excluding pipe costs which are charged by the pipe model.
    pub cgi_dispatch_us: f64,
    /// Per-request access-logging cost for the event-driven servers
    /// (batched, buffered log writes). §5: logging costs Flash and
    /// Flash-Lite only 3–5%.
    pub event_log_us: f64,
    /// Per-request access-logging cost for Apache (per-process
    /// `fprintf`, time formatting, unbatched write). §5: logging costs
    /// Apache 13–16%.
    pub apache_log_us: f64,
    /// Physical memory size.
    pub ram_bytes: u64,
    /// Fixed kernel reservation (text, mbuf headers, metadata cache).
    pub kernel_reserve_bytes: u64,
    /// Fixed server-process reservation (text + heap).
    pub server_reserve_bytes: u64,
    /// Apache's per-connection process overhead.
    pub apache_per_conn_bytes: u64,
    /// Apache's process-pool cap (`MaxClients`): connections beyond it
    /// queue in the listen backlog and hold no socket/process memory.
    pub apache_max_clients: usize,
    /// Number of network adaptors.
    pub net_links: usize,
    /// Effective per-adaptor rate, Mb/s (100Mb/s minus framing and
    /// interrupt ceiling).
    pub link_mbit_s: f64,
    /// TCP maximum segment size.
    pub mss: usize,
    /// Socket send-buffer size (Tss, §5: 64KB).
    pub tss: usize,
    /// Disk average positioning, ms.
    pub disk_position_ms: f64,
    /// Disk transfer rate, MB/s.
    pub disk_mb_s: f64,
}

impl CostModel {
    /// The paper's testbed (§5): 333MHz Pentium II, 128MB RAM,
    /// 5×100Mb/s Fast Ethernet.
    pub fn pentium_ii_333() -> Self {
        CostModel {
            copy_ns_per_byte: 15.4,
            cached_copy_ns_per_byte: 10.5,
            checksum_ns_per_byte: 7.7,
            syscall_us: 5.0,
            poll_fd_us: 1.0,
            page_map_us: 10.0,
            context_switch_us: 25.0,
            mmap_cycle_us: 150.0,
            flash_mapped_cache_files: 400,
            tcp_accept_us: 300.0,
            tcp_close_us: 200.0,
            per_packet_us: 4.6,
            http_parse_us: 80.0,
            server_fixed_us: 70.0,
            iol_request_extra_us: 60.0,
            apache_request_extra_us: 550.0,
            apache_extra_ns_per_byte: 3.0,
            cgi_dispatch_us: 150.0,
            event_log_us: 40.0,
            apache_log_us: 300.0,
            ram_bytes: 128 << 20,
            kernel_reserve_bytes: 12 << 20,
            server_reserve_bytes: 4 << 20,
            apache_per_conn_bytes: 80 << 10,
            apache_max_clients: 512,
            net_links: 5,
            link_mbit_s: 84.0,
            mss: 1460,
            tss: 64 * 1024,
            disk_position_ms: 8.5,
            disk_mb_s: 14.0,
        }
    }

    /// Time to copy `bytes` with a cold source.
    pub fn copy(&self, bytes: u64) -> Charge {
        Charge::us(bytes as f64 * self.copy_ns_per_byte / 1000.0)
    }

    /// Time to copy `bytes` with a warm (cache-resident) source.
    pub fn cached_copy(&self, bytes: u64) -> Charge {
        Charge::us(bytes as f64 * self.cached_copy_ns_per_byte / 1000.0)
    }

    /// Time to checksum `bytes`.
    pub fn checksum(&self, bytes: u64) -> Charge {
        Charge::us(bytes as f64 * self.checksum_ns_per_byte / 1000.0)
    }

    /// L2-residency interpolation factor for the socket data path:
    /// documents up to ~64KB stay cache-resident between the file cache
    /// and the send path on a 512KB-L2 Pentium II, so their copies and
    /// checksums run near cache speed; by ~192KB every pass streams
    /// from DRAM. The paper's Fig. 3 curve shape (Flash flat at
    /// ~280-290Mb/s from 50KB up, yet near Flash-Lite below 5KB) is
    /// only reproducible with this size dependence.
    fn l2_factor(bytes: u64) -> f64 {
        const FAST: f64 = 64.0 * 1024.0;
        const SLOW: f64 = 192.0 * 1024.0;
        ((bytes as f64 - FAST) / (SLOW - FAST)).clamp(0.0, 1.0)
    }

    /// Time to copy `bytes` of response data into socket buffers
    /// (L2-aware: see the `l2_factor` interpolation above).
    pub fn socket_copy(&self, bytes: u64) -> Charge {
        let f = Self::l2_factor(bytes);
        let ns = self.cached_copy_ns_per_byte + f * (14.0 - self.cached_copy_ns_per_byte).max(0.0);
        Charge::us(bytes as f64 * ns / 1000.0)
    }

    /// Time to checksum `bytes` on the wire path (L2-aware).
    pub fn wire_checksum(&self, bytes: u64) -> Charge {
        let f = Self::l2_factor(bytes);
        let ns = 5.0 + f * (self.checksum_ns_per_byte - 5.0).max(0.0);
        Charge::us(bytes as f64 * ns / 1000.0)
    }

    /// Time for `n` system calls.
    pub fn syscalls(&self, n: u64) -> Charge {
        Charge::us(n as f64 * self.syscall_us)
    }

    /// Time to establish `pages` new page mappings.
    pub fn page_maps(&self, pages: u64) -> Charge {
        Charge::us(pages as f64 * self.page_map_us)
    }

    /// Time for `n` context switches.
    pub fn context_switches(&self, n: u64) -> Charge {
        Charge::us(n as f64 * self.context_switch_us)
    }

    /// Time to send `packets` MSS-sized segments.
    pub fn packets(&self, packets: u64) -> Charge {
        Charge::us(packets as f64 * self.per_packet_us)
    }

    /// Disk service time for one access of `bytes`.
    pub fn disk_access(&self, bytes: u64) -> SimTime {
        SimTime::from_ms(self.disk_position_ms)
            + SimTime::from_secs(bytes as f64 / (self.disk_mb_s * 1e6))
    }

    /// Aggregate network capacity in Mb/s.
    pub fn net_aggregate_mbit_s(&self) -> f64 {
        self.net_links as f64 * self.link_mbit_s
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::pentium_ii_333()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_bandwidth_is_65_mb_s() {
        let m = CostModel::pentium_ii_333();
        // 65MB in ~1 second.
        let t = m.copy(65_000_000).time;
        assert!((t.as_secs() - 1.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn checksum_is_faster_than_copy() {
        let m = CostModel::pentium_ii_333();
        assert!(m.checksum(1 << 20).time < m.copy(1 << 20).time);
        assert!(m.cached_copy(1 << 20).time < m.copy(1 << 20).time);
    }

    #[test]
    fn charges_compose() {
        let a = Charge::us(10.0);
        let b = Charge::us(5.0);
        assert_eq!((a + b).time, SimTime::from_us(15.0));
        let mut c = Charge::ZERO;
        c += a;
        c += b;
        assert_eq!(c.time, SimTime::from_us(15.0));
    }

    #[test]
    fn disk_access_includes_positioning() {
        let m = CostModel::pentium_ii_333();
        let t = m.disk_access(14_000_000);
        // 14MB at 14MB/s = 1s, plus 8.5ms positioning.
        assert!((t.as_secs() - 1.0085).abs() < 0.001, "{t}");
    }

    #[test]
    fn network_aggregate() {
        let m = CostModel::pentium_ii_333();
        assert!((m.net_aggregate_mbit_s() - 420.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_costs_positive() {
        let m = CostModel::pentium_ii_333();
        assert!(m.syscalls(1).time > SimTime::ZERO);
        assert!(m.page_maps(1).time > SimTime::ZERO);
        assert!(m.context_switches(1).time > SimTime::ZERO);
        assert!(m.packets(1).time > SimTime::ZERO);
    }
}

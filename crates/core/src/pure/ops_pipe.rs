//! Pipe and stdio-console operations on [`KernelState`].

use iolite_buf::{Acl, Aggregate};
use iolite_ipc::{Pipe, PipeMode};

use super::effect::Effect;
use super::ids::PipeId;
use super::state::{IoOutcome, KernelState, PipeSlot};
use crate::cost::Charge;
use crate::error::{IoResult, IolError};
use crate::process::Pid;

impl KernelState {
    /// Creates a pipe in the given mode with the BSD 64KB buffer,
    /// optionally governed by an explicit zero-copy ACL (the writer
    /// pool's ACL, §3.10).
    ///
    /// Copy-mode staging buffers draw their scratch-pool id from the
    /// central [`super::IdAlloc`] so two kernels replaying the same
    /// commands mint identical pool ids.
    pub(crate) fn op_pipe_create(
        &mut self,
        mode: PipeMode,
        acl: Option<Acl>,
        _fx: &mut Vec<Effect>,
    ) -> PipeId {
        let id = self.ids.alloc_pipe();
        let scratch = self.ids.alloc_scratch_pool();
        self.pipes.insert(
            id,
            PipeSlot {
                pipe: Pipe::with_scratch_id(mode, 64 * 1024, scratch),
                acl,
                reader_gone: false,
            },
        );
        id
    }

    /// The raw-id pipe write behind `iol_write_fd`.
    pub(crate) fn op_pipe_write(
        &mut self,
        _pid: Pid,
        id: PipeId,
        data: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> (u64, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let slot = self.pipes.get_mut(&id).expect("unknown pipe");
        let before = slot.pipe.stats().bytes_copied;
        let accepted = slot.pipe.write(data);
        let copied = slot.pipe.stats().bytes_copied - before;
        if copied > 0 {
            fx.push(Effect::BytesCopied(copied));
            out.charge += self.cost.copy(copied);
        }
        (accepted, out)
    }

    /// The raw-id pipe read behind `iol_read_fd`; zero-copy pipes also
    /// transfer the received chunks into the reader's domain (first
    /// time only — recycled buffers ride existing mappings, §3.2),
    /// enforcing the pipe's ACL when it carries one.
    pub(crate) fn op_pipe_read(
        &mut self,
        pid: Pid,
        id: PipeId,
        max: u64,
        fx: &mut Vec<Effect>,
    ) -> Result<(Option<Aggregate>, IoOutcome), IolError> {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let slot = self.pipes.get_mut(&id).expect("unknown pipe");
        // ACL'd pipes refuse unauthorized readers *before* any byte is
        // dequeued: a denial must not destroy data still in flight to
        // the legitimate reader.
        if let Some(acl) = &slot.acl {
            if !acl.allows(pid.domain()) {
                return Err(IolError::PermissionDenied {
                    domain: pid.domain(),
                });
            }
        }
        let mode = slot.pipe.mode();
        let acl = slot.acl.clone();
        let before = slot.pipe.stats().bytes_copied;
        let got = slot.pipe.read(max);
        let copied = slot.pipe.stats().bytes_copied - before;
        if copied > 0 {
            fx.push(Effect::BytesCopied(copied));
            out.charge += self.cost.copy(copied);
        }
        if let (Some(agg), PipeMode::ZeroCopy) = (&got, mode) {
            // Pass-by-reference: the reader needs (at most first-time)
            // read mappings, gated by the pipe's ACL when it carries one
            // (pipes between mutually untrusting processes); plain pipes
            // rely on pool ACLs at allocation sites.
            let pages = match &acl {
                Some(acl) => self
                    .op_transfer_with_acl(agg, pid.domain(), acl, fx)
                    .map_err(|denied| IolError::PermissionDenied {
                        domain: denied.domain,
                    })?,
                None => self.op_transfer_to(agg, pid.domain(), fx),
            };
            out.mapped_pages += pages;
            out.charge += self.cost.page_maps(pages);
        }
        Ok((got, out))
    }

    /// Closes a pipe's write end by raw id (descriptor holders go
    /// through `close_fd`, which calls this on last close).
    pub(crate) fn op_pipe_close(&mut self, id: PipeId) {
        if let Some(slot) = self.pipes.get_mut(&id) {
            slot.pipe.close();
        }
    }

    // ---- the stdio console (harness side of fds 0/1/2) ------------------

    /// Writes `data` into `pid`'s stdin console pipe (the harness
    /// playing the terminal); the process reads it at fd 0.
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`]/[`IolError::ShortIo`] as for any pipe
    /// write when the console buffer fills.
    pub(crate) fn op_feed_stdin(
        &mut self,
        pid: Pid,
        data: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoResult<u64> {
        let console = self.consoles[&pid];
        let slot = &self.pipes[&console.stdin];
        if slot.pipe.is_closed() || slot.reader_gone {
            return Err(IolError::Closed);
        }
        let (accepted, out) = self.op_pipe_write(pid, console.stdin, data, fx);
        if accepted == data.len() {
            Ok((accepted, out))
        } else if accepted == 0 {
            Err(IolError::WouldBlock { outcome: out })
        } else {
            Err(IolError::ShortIo {
                done: accepted,
                outcome: out,
            })
        }
    }

    /// Drains up to `max` bytes the process wrote to fd 1.
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`] when nothing is buffered and the
    /// process still holds its write end.
    pub(crate) fn op_read_stdout(
        &mut self,
        pid: Pid,
        max: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let console = self.consoles[&pid];
        self.op_console_read(pid, console.stdout, max, fx)
    }

    /// Drains up to `max` bytes the process wrote to fd 2.
    ///
    /// # Errors
    ///
    /// As [`KernelState::op_read_stdout`].
    pub(crate) fn op_read_stderr(
        &mut self,
        pid: Pid,
        max: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let console = self.consoles[&pid];
        self.op_console_read(pid, console.stderr, max, fx)
    }

    fn op_console_read(
        &mut self,
        pid: Pid,
        pipe: PipeId,
        max: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let (got, out) = self.op_pipe_read(pid, pipe, max, fx)?;
        match got {
            Some(agg) => Ok((agg, out)),
            None if self.pipes[&pipe].pipe.is_closed() => Ok((Aggregate::empty(), out)),
            None => Err(IolError::WouldBlock { outcome: out }),
        }
    }
}

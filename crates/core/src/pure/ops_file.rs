//! File-system, unified-cache, window, and VM operations on
//! [`KernelState`].
//!
//! Bodies are the former `Kernel` methods with one mechanical change:
//! metric mutations became [`Effect`] pushes into the caller-supplied
//! buffer, and device time is reported as [`Effect::DiskRead`] data
//! instead of being accumulated in place.

use iolite_buf::{Acl, Aggregate, ChunkId, DomainId};
use iolite_fs::{CacheKey, FileContent, FileId};
use iolite_vm::{MemAccount, MmapView};

use super::effect::Effect;
use super::state::{IoOutcome, KernelState};
use crate::cost::Charge;
use crate::process::Pid;

impl KernelState {
    // ---- file store ----------------------------------------------------

    /// Creates a file with explicit contents.
    pub(crate) fn op_create_file(&mut self, name: &str, data: &[u8]) -> FileId {
        self.store
            .create(name, FileContent::Explicit(data.to_vec()))
    }

    /// Creates a synthetic (pattern-generated) file.
    pub(crate) fn op_create_synthetic_file(&mut self, name: &str, len: u64, seed: u64) -> FileId {
        self.store.create_synthetic(name, len, seed)
    }

    /// Resolves a path through the metadata cache.
    pub(crate) fn op_lookup(&mut self, name: &str, fx: &mut Vec<Effect>) -> (Option<FileId>, Charge) {
        let store = &self.store;
        let result = self.meta.lookup(name, || store.lookup(name));
        let charge = match result {
            Some((_, true)) => Charge::us(self.cost.syscall_us),
            // A metadata miss costs an extra metadata-cache fill; the
            // paper keeps metadata in the old buffer cache, so no device
            // time is charged for the common in-memory case.
            _ => Charge::us(self.cost.syscall_us * 3.0),
        };
        fx.push(Effect::Syscalls(1));
        (result.map(|(id, _)| id), charge)
    }

    // ---- cache budget and VM pressure ----------------------------------

    /// Re-syncs the file-cache budget with the memory accountant and
    /// returns entries evicted by the shrink.
    ///
    /// Evictions are reported to the pageout daemon as replaced
    /// cached-I/O pages, feeding the §3.7 trigger statistics.
    pub(crate) fn op_rebalance_cache(&mut self) -> usize {
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        let budget = self.physmem.cache_budget();
        let evicted = self.cache.set_budget(budget);
        for (_, agg) in &evicted {
            let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
            for _ in 0..pages.min(64) {
                self.pageout.page_replaced(iolite_vm::PageClass::CachedIo);
            }
        }
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        evicted.len()
    }

    /// Reports VM replacement pressure from non-cache pages (application
    /// anonymous memory being paged) and applies the §3.7 rule: if more
    /// than half of recently replaced pages held cached I/O data, one
    /// cache entry is evicted. Returns whether an eviction happened.
    pub(crate) fn op_vm_pressure(&mut self, other_pages: u64) -> bool {
        for _ in 0..other_pages {
            self.pageout.page_replaced(iolite_vm::PageClass::Other);
        }
        if self.pageout.should_evict_cache_entry() {
            if let Some((_, agg)) = self.cache.evict_one() {
                // The evicted entry's dirty pages would go to their
                // backing stores (paging space + the files they cache).
                let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
                self.pageout
                    .backing_store_write(1, pages * iolite_buf::PAGE_SIZE as u64);
                self.pageout.eviction_performed();
                self.physmem
                    .set(MemAccount::FileCache, self.cache.resident_bytes());
                return true;
            }
        }
        false
    }

    /// Pins a cache entry's key (e.g. while the network transmits it).
    pub(crate) fn op_cache_pin(&mut self, key: CacheKey) {
        self.cache.pin(&key);
    }

    /// Releases one pin on a cache key.
    pub(crate) fn op_cache_unpin(&mut self, key: CacheKey) {
        self.cache.unpin(&key);
    }

    /// Installs a replica of a file's bytes as its whole-file cache
    /// entry (sharded serving: a non-home shard caches the payload a
    /// remote read returned, so later requests for the file hit
    /// locally). The bytes arrived over a cross-shard channel, not from
    /// this shard's disk, so copy cost is charged and no disk time
    /// accrues.
    pub(crate) fn op_cache_install(
        &mut self,
        file: FileId,
        data: &[u8],
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, data, iolite_buf::PAGE_SIZE);
        fx.push(Effect::BytesCopied(data.len() as u64));
        out.charge += self.cost.copy(data.len() as u64);
        self.cache.insert(CacheKey::whole(file), agg);
        self.op_rebalance_cache();
        self.cache_pool.release_free_chunks(u64::MAX);
        out
    }

    /// Touches Flash's mapped-file cache; returns whether the file was
    /// already mapped.
    pub(crate) fn op_mapped_file_touch(&mut self, file: FileId) -> bool {
        self.mapped_files.touch(file)
    }

    /// Reserves memory on an account in the physical-memory accountant.
    pub(crate) fn op_mem_reserve(&mut self, account: MemAccount, bytes: u64) {
        self.physmem.reserve(account, bytes);
    }

    /// Releases memory from an account.
    pub(crate) fn op_mem_release(&mut self, account: MemAccount, bytes: u64) {
        self.physmem.release(account, bytes);
    }

    // ---- reads, writes, mmap -------------------------------------------

    /// Reads a file extent through the unified cache with IO-Lite
    /// semantics: returns a buffer aggregate sharing the cache's
    /// physical copy (`IOL_read`, §3.4).
    ///
    /// Less data than requested is returned at end-of-file (the API
    /// explicitly allows short reads).
    pub(crate) fn op_read_file_at(
        &mut self,
        pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> (Aggregate, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let agg = whole.range(start, take).expect("clamped range");
        // Transfer: make the aggregate's chunks readable in the caller.
        let pages = self.op_transfer_to(&agg, pid.domain(), fx);
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (agg, out)
    }

    /// Replaces a file extent with the contents of `agg` (`IOL_write`,
    /// §3.4): the cached aggregate is replaced, never mutated, so prior
    /// readers keep their snapshots (§3.5).
    ///
    /// Pins held on the key (e.g. by the network mid-transmission)
    /// survive the replacement: the cache keys pin counts by
    /// [`CacheKey`], not by entry generation, so a deferred unpin from
    /// a pre-write transmission cannot strip the protection of a
    /// post-write one.
    pub(crate) fn op_write_file_at(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        agg: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        // Update the backing store vectored, run by run (write-back
        // happens off the critical path; no device time charged here,
        // and no materialization of the aggregate).
        let mut run_offset = offset;
        for chunk in agg.chunks() {
            self.store.write(file, run_offset, chunk);
            run_offset += chunk.len() as u64;
        }
        // Snapshot-preserving cache replacement: rebuild the whole-file
        // entry as head ++ agg ++ tail, chaining by reference (indexed
        // range views; slices outside the extent are not walked twice).
        let key = CacheKey::whole(file);
        if let Some(old) = self.cache.replace_for_write(&key) {
            let head_len = offset.min(old.len());
            let mut rebuilt = old.range(0, head_len).expect("clamped");
            rebuilt.append(agg);
            let tail_start = (offset + agg.len()).min(old.len());
            rebuilt.append(&old.range(tail_start, old.len() - tail_start).expect("clamped"));
            self.cache.insert(key, rebuilt);
            self.op_rebalance_cache();
        }
        out.charge += Charge::ZERO;
        out
    }

    /// Backward-compatible copying read at an explicit offset (§4.2:
    /// "a data copy operation is used to move data between application
    /// buffers and IO-Lite buffers").
    pub(crate) fn op_posix_file_read(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> (Vec<u8>, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let mut dst = vec![0u8; take as usize];
        whole.copy_to(start, &mut dst);
        fx.push(Effect::BytesCopied(take));
        out.charge += self.cost.cached_copy(take);
        (dst, out)
    }

    /// Backward-compatible copying write at an explicit offset.
    pub(crate) fn op_posix_file_write(
        &mut self,
        pid: Pid,
        file: FileId,
        offset: u64,
        data: &[u8],
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let agg = Aggregate::from_bytes(&self.cache_pool, data);
        fx.push(Effect::BytesCopied(data.len() as u64));
        let mut out = self.op_write_file_at(pid, file, offset, &agg, fx);
        out.charge += self.cost.copy(data.len() as u64);
        out
    }

    /// Maps a whole file (§3.8 `mmap`): contiguous view, lazy alignment
    /// copies, COW against cached snapshots.
    pub(crate) fn op_file_mmap(
        &mut self,
        pid: Pid,
        file: FileId,
        fx: &mut Vec<Effect>,
    ) -> (MmapView, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let pages = self.op_transfer_to(&whole, pid.domain(), fx);
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (MmapView::new(whole), out)
    }

    /// Cache-or-disk read of the whole file, maintaining budgets.
    pub(crate) fn op_read_whole_cached(
        &mut self,
        file: FileId,
        out: &mut IoOutcome,
        fx: &mut Vec<Effect>,
    ) -> Aggregate {
        let key = CacheKey::whole(file);
        if let Some(agg) = self.cache.lookup(&key) {
            out.cache_hit = true;
            return agg;
        }
        let len = self.store.len(file).unwrap_or(0);
        let bytes = self.store.read(file, 0, len).unwrap_or_default();
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, &bytes, iolite_buf::PAGE_SIZE);
        out.disk_bytes = len;
        out.disk_time = self.disk.access_time(len);
        fx.push(Effect::DiskRead {
            file,
            bytes: len,
            time: out.disk_time,
        });
        // Admit, then shrink to budget; evicted chunks that drained
        // return to the pool and are eventually released.
        self.cache.insert(key, agg.clone());
        self.op_rebalance_cache();
        self.cache_pool.release_free_chunks(u64::MAX);
        agg
    }

    // ---- window transfers ----------------------------------------------

    /// Makes an aggregate's chunks readable in `domain`, charging only
    /// first-time mappings (§3.2). Returns newly mapped pages.
    pub(crate) fn op_transfer_to(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self
            .window
            .transfer(&chunks, domain, &self.cache_pool_acl.clone())
            .unwrap_or(0);
        fx.push(Effect::PagesMapped(pages));
        pages
    }

    /// Like [`KernelState::op_transfer_to`] but enforcing an explicit
    /// ACL (pipe transfers between mutually untrusting processes).
    ///
    /// # Errors
    ///
    /// Returns [`iolite_vm::AccessDenied`] when `domain` is not on
    /// `acl`.
    pub(crate) fn op_transfer_with_acl(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        acl: &Acl,
        fx: &mut Vec<Effect>,
    ) -> Result<u64, iolite_vm::AccessDenied> {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self.window.transfer(&chunks, domain, acl)?;
        fx.push(Effect::PagesMapped(pages));
        Ok(pages)
    }
}

//! File-system, unified-cache, window, and VM operations on
//! [`KernelState`].
//!
//! Bodies are the former `Kernel` methods with one mechanical change:
//! metric mutations became [`Effect`] pushes into the caller-supplied
//! buffer, and device time is reported as [`Effect::DiskRead`] data
//! instead of being accumulated in place.

use iolite_buf::{Acl, Aggregate, ChunkId, DomainId};
use iolite_fs::{CacheKey, FileContent, FileId};
use iolite_vm::{MemAccount, MmapView};

use super::effect::Effect;
use super::state::{IoOutcome, KernelState};
use crate::cost::Charge;
use crate::process::Pid;

impl KernelState {
    // ---- file store ----------------------------------------------------

    /// Creates a file with explicit contents.
    pub(crate) fn op_create_file(&mut self, name: &str, data: &[u8]) -> FileId {
        self.store
            .create(name, FileContent::Explicit(data.to_vec()))
    }

    /// Creates a synthetic (pattern-generated) file.
    pub(crate) fn op_create_synthetic_file(&mut self, name: &str, len: u64, seed: u64) -> FileId {
        self.store.create_synthetic(name, len, seed)
    }

    /// Resolves a path through the metadata cache.
    pub(crate) fn op_lookup(&mut self, name: &str, fx: &mut Vec<Effect>) -> (Option<FileId>, Charge) {
        let store = &self.store;
        let result = self.meta.lookup(name, || store.lookup(name));
        let charge = match result {
            Some((_, true)) => Charge::us(self.cost.syscall_us),
            // A metadata miss costs an extra metadata-cache fill; the
            // paper keeps metadata in the old buffer cache, so no device
            // time is charged for the common in-memory case.
            _ => Charge::us(self.cost.syscall_us * 3.0),
        };
        fx.push(Effect::Syscalls(1));
        (result.map(|(id, _)| id), charge)
    }

    // ---- cache budget and VM pressure ----------------------------------

    /// Re-syncs the file-cache budget with the memory accountant and
    /// returns entries evicted by the shrink.
    ///
    /// Evictions are reported to the pageout daemon as replaced
    /// cached-I/O pages, feeding the §3.7 trigger statistics.
    pub(crate) fn op_rebalance_cache(&mut self) -> usize {
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        let budget = self.physmem.cache_budget();
        let evicted = self.cache.set_budget(budget);
        for (_, agg) in &evicted {
            let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
            for _ in 0..pages.min(64) {
                self.pageout.page_replaced(iolite_vm::PageClass::CachedIo);
            }
        }
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        evicted.len()
    }

    /// Reports VM replacement pressure from non-cache pages (application
    /// anonymous memory being paged) and applies the §3.7 rule through
    /// the pageout arbiter: when more than half of recently replaced
    /// pages held cached I/O data, pressure is relieved either by
    /// evicting one *clean* cache entry, or — when the dirty pool has
    /// passed the write-back threshold or nothing clean remains — by
    /// flushing a write-back batch first (cleaning mints new victims;
    /// discarding dirty data would lose writes). Returns whether the
    /// cache shrank or cleaned anything.
    pub(crate) fn op_vm_pressure(&mut self, other_pages: u64, fx: &mut Vec<Effect>) -> bool {
        for _ in 0..other_pages {
            self.pageout.page_replaced(iolite_vm::PageClass::Other);
        }
        let has_clean_victim = self.cache.len() > self.cache.dirty_len();
        match self.pageout.arbitrate(
            self.cache.dirty_bytes(),
            self.writeback.config().dirty_threshold_bytes,
            has_clean_victim,
        ) {
            iolite_vm::PageoutAction::Idle => false,
            iolite_vm::PageoutAction::WriteBack => {
                let flushed = self.op_write_back(0, fx);
                if flushed > 0 {
                    self.pageout.eviction_performed();
                }
                flushed > 0
            }
            iolite_vm::PageoutAction::EvictClean => {
                if let Some((_, agg)) = self.cache.evict_one() {
                    // The evicted entry's pages would go to their
                    // backing stores (paging space + the files they
                    // cache).
                    let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
                    self.pageout
                        .backing_store_write(1, pages * iolite_buf::PAGE_SIZE as u64);
                    self.pageout.eviction_performed();
                    self.physmem
                        .set(MemAccount::FileCache, self.cache.resident_bytes());
                    return true;
                }
                false
            }
        }
    }

    /// Pins a cache entry's key (e.g. while the network transmits it).
    pub(crate) fn op_cache_pin(&mut self, key: CacheKey) {
        self.cache.pin(&key);
    }

    /// Releases one pin on a cache key.
    pub(crate) fn op_cache_unpin(&mut self, key: CacheKey) {
        self.cache.unpin(&key);
    }

    /// Installs a replica of a file's bytes as its whole-file cache
    /// entry (sharded serving: a non-home shard caches the payload a
    /// remote read returned, so later requests for the file hit
    /// locally). The bytes arrived over a cross-shard channel, not from
    /// this shard's disk, so copy cost is charged and no disk time
    /// accrues.
    pub(crate) fn op_cache_install(
        &mut self,
        file: FileId,
        data: &[u8],
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, data, iolite_buf::PAGE_SIZE);
        fx.push(Effect::BytesCopied(data.len() as u64));
        out.charge += self.cost.copy(data.len() as u64);
        self.cache.insert(CacheKey::whole(file), agg);
        self.op_rebalance_cache();
        out
    }

    /// Drops a cache entry outright (sharded writes: a local replica
    /// made stale by a write routed to the file's home shard must not
    /// serve the old bytes afterwards). Checksums cached over the
    /// dropped buffers die with it; readers still pinning slices of
    /// the old aggregate keep their immutable snapshot (§3.5). No-op
    /// when the key is absent. Returns whether an entry was dropped.
    pub(crate) fn op_cache_invalidate(&mut self, key: CacheKey) -> bool {
        let Some(old) = self.cache.replace_for_write(&key) else {
            return false;
        };
        self.cksum.invalidate_aggregate(&old);
        self.op_rebalance_cache();
        true
    }

    // ---- the write path (PR 10) ----------------------------------------

    /// Installs a PUT body as `file`'s whole-file cache entry, **dirty**
    /// (§3.5 snapshot semantics + deferred persistence).
    ///
    /// The body aggregate is installed by reference — zero-copy from
    /// the connection's receive buffers straight into the cache.
    /// Concurrent readers of the previous version keep their pinned
    /// immutable slices (the replaced aggregate's buffers persist while
    /// referenced); checksums cached over the replaced buffers are
    /// invalidated (§3.9 staleness fix). The store image is updated
    /// immediately so lengths, metadata, and cold reads stay consistent
    /// — but *no device time is charged here*: persistence timing is
    /// the write-back scheduler's business ([`KernelState::op_write_back`]),
    /// and dirty entries are never evicted before they are cleaned, so
    /// the deferral is unobservable to readers.
    pub(crate) fn op_put_install(
        &mut self,
        _pid: Pid,
        file: FileId,
        agg: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        // Store-write-early: vectored, run by run, no materialization.
        let mut run_offset = 0u64;
        for chunk in agg.chunks() {
            self.store.write(file, run_offset, chunk);
            run_offset += chunk.len() as u64;
        }
        self.store.truncate(file, agg.len());
        let key = CacheKey::whole(file);
        if let Some(old) = self.cache.replace_for_write(&key) {
            // A PUT replaces the whole entry: every checksum cached over
            // the old buffers is stale.
            self.cksum.invalidate_aggregate(&old);
        }
        fx.push(Effect::DirtyInstalled { bytes: agg.len() });
        self.cache.insert_dirty(key, agg.clone());
        self.op_rebalance_cache();
        out.charge += Charge::ZERO;
        out
    }

    /// Flushes one write-back batch: dirty entries (in deterministic
    /// key order) up to `max_bytes` (0 ⇒ the configured flush-batch
    /// size) are marked clean and staged through the NVM tier, with
    /// overflow going to disk. One disk positioning is paid per batch
    /// with a non-zero disk share — that amortization is the CAWL
    /// observation. Returns the bytes flushed.
    pub(crate) fn op_write_back(&mut self, max_bytes: u64, fx: &mut Vec<Effect>) -> u64 {
        let batch_limit = if max_bytes == 0 {
            self.writeback.config().flush_batch_bytes
        } else {
            max_bytes
        };
        let mut keys: Vec<CacheKey> = Vec::new();
        let mut bytes = 0u64;
        for k in self.cache.dirty_keys() {
            let len = self.cache.entry_len(k).expect("dirty set tracks entries");
            if !keys.is_empty() && bytes + len > batch_limit {
                break;
            }
            keys.push(*k);
            bytes += len;
            if bytes >= batch_limit {
                break;
            }
        }
        if keys.is_empty() {
            return 0;
        }
        for k in &keys {
            self.cache.mark_clean(k);
        }
        let staged = self.writeback.stage(keys.len() as u64, bytes);
        fx.push(Effect::WritebackFlushed {
            entries: keys.len() as u64,
            bytes,
        });
        if staged.nvm_bytes > 0 {
            fx.push(Effect::NvmAbsorbed {
                bytes: staged.nvm_bytes,
                time: self.writeback.nvm_time(staged.nvm_bytes),
            });
        }
        if staged.disk_bytes > 0 {
            fx.push(Effect::DiskWrite {
                bytes: staged.disk_bytes,
                time: self.disk.access_time(staged.disk_bytes),
            });
        }
        bytes
    }

    /// Demotes up to `max_bytes` (0 ⇒ the configured drain chunk) from
    /// the NVM staging tier to disk — the background drain that keeps
    /// the tier able to absorb the next burst. Returns bytes moved.
    pub(crate) fn op_nvm_demote(&mut self, max_bytes: u64, fx: &mut Vec<Effect>) -> u64 {
        let moved = self.writeback.demote(max_bytes);
        if moved > 0 {
            fx.push(Effect::NvmDemoted { bytes: moved });
            fx.push(Effect::DiskWrite {
                bytes: moved,
                time: self.disk.access_time(moved),
            });
        }
        moved
    }

    /// Replaces the write-back tuning (journaled, so replayed runs see
    /// identical flush scheduling).
    pub(crate) fn op_set_writeback(&mut self, cfg: iolite_fs::WritebackConfig) {
        self.writeback.set_config(cfg);
    }

    /// Touches Flash's mapped-file cache; returns whether the file was
    /// already mapped.
    pub(crate) fn op_mapped_file_touch(&mut self, file: FileId) -> bool {
        self.mapped_files.touch(file)
    }

    /// Reserves memory on an account in the physical-memory accountant.
    pub(crate) fn op_mem_reserve(&mut self, account: MemAccount, bytes: u64) {
        self.physmem.reserve(account, bytes);
    }

    /// Releases memory from an account.
    pub(crate) fn op_mem_release(&mut self, account: MemAccount, bytes: u64) {
        self.physmem.release(account, bytes);
    }

    // ---- reads, writes, mmap -------------------------------------------

    /// Reads a file extent through the unified cache with IO-Lite
    /// semantics: returns a buffer aggregate sharing the cache's
    /// physical copy (`IOL_read`, §3.4).
    ///
    /// Less data than requested is returned at end-of-file (the API
    /// explicitly allows short reads).
    pub(crate) fn op_read_file_at(
        &mut self,
        pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> (Aggregate, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let agg = whole.range(start, take).expect("clamped range");
        // Transfer: make the aggregate's chunks readable in the caller.
        let pages = self.op_transfer_to(&agg, pid.domain(), fx);
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (agg, out)
    }

    /// Replaces a file extent with the contents of `agg` (`IOL_write`,
    /// §3.4): the cached aggregate is replaced, never mutated, so prior
    /// readers keep their snapshots (§3.5).
    ///
    /// Pins held on the key (e.g. by the network mid-transmission)
    /// survive the replacement: the cache keys pin counts by
    /// [`CacheKey`], not by entry generation, so a deferred unpin from
    /// a pre-write transmission cannot strip the protection of a
    /// post-write one.
    pub(crate) fn op_write_file_at(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        agg: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        // Update the backing store vectored, run by run (write-back
        // happens off the critical path; no device time charged here,
        // and no materialization of the aggregate).
        let mut run_offset = offset;
        for chunk in agg.chunks() {
            self.store.write(file, run_offset, chunk);
            run_offset += chunk.len() as u64;
        }
        // Snapshot-preserving cache replacement: rebuild the whole-file
        // entry as head ++ agg ++ tail, chaining by reference (indexed
        // range views; slices outside the extent are not walked twice).
        let key = CacheKey::whole(file);
        if let Some(old) = self.cache.replace_for_write(&key) {
            let head_len = offset.min(old.len());
            let tail_start = (offset + agg.len()).min(old.len());
            // §3.9 staleness fix: checksums cached over the replaced
            // extent's buffers no longer describe the file. Invalidation
            // is by buffer identity, so head/tail slices on *other*
            // buffers keep their cached checksums.
            let replaced = old
                .range(head_len, tail_start - head_len)
                .expect("clamped");
            self.cksum.invalidate_aggregate(&replaced);
            let mut rebuilt = old.range(0, head_len).expect("clamped");
            rebuilt.append(agg);
            rebuilt.append(&old.range(tail_start, old.len() - tail_start).expect("clamped"));
            self.cache.insert(key, rebuilt);
            self.op_rebalance_cache();
        }
        out.charge += Charge::ZERO;
        out
    }

    /// Backward-compatible copying read at an explicit offset (§4.2:
    /// "a data copy operation is used to move data between application
    /// buffers and IO-Lite buffers").
    pub(crate) fn op_posix_file_read(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> (Vec<u8>, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let mut dst = vec![0u8; take as usize];
        whole.copy_to(start, &mut dst);
        fx.push(Effect::BytesCopied(take));
        out.charge += self.cost.cached_copy(take);
        (dst, out)
    }

    /// Backward-compatible copying write at an explicit offset.
    pub(crate) fn op_posix_file_write(
        &mut self,
        pid: Pid,
        file: FileId,
        offset: u64,
        data: &[u8],
        fx: &mut Vec<Effect>,
    ) -> IoOutcome {
        let agg = Aggregate::from_bytes(&self.cache_pool, data);
        fx.push(Effect::BytesCopied(data.len() as u64));
        let mut out = self.op_write_file_at(pid, file, offset, &agg, fx);
        out.charge += self.cost.copy(data.len() as u64);
        out
    }

    /// Maps a whole file (§3.8 `mmap`): contiguous view, lazy alignment
    /// copies, COW against cached snapshots.
    pub(crate) fn op_file_mmap(
        &mut self,
        pid: Pid,
        file: FileId,
        fx: &mut Vec<Effect>,
    ) -> (MmapView, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let whole = self.op_read_whole_cached(file, &mut out, fx);
        let pages = self.op_transfer_to(&whole, pid.domain(), fx);
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (MmapView::new(whole), out)
    }

    /// Cache-or-disk read of the whole file, maintaining budgets.
    pub(crate) fn op_read_whole_cached(
        &mut self,
        file: FileId,
        out: &mut IoOutcome,
        fx: &mut Vec<Effect>,
    ) -> Aggregate {
        let key = CacheKey::whole(file);
        if let Some(agg) = self.cache.lookup(&key) {
            out.cache_hit = true;
            return agg;
        }
        let len = self.store.len(file).unwrap_or(0);
        let bytes = self.store.read(file, 0, len).unwrap_or_default();
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, &bytes, iolite_buf::PAGE_SIZE);
        out.disk_bytes = len;
        out.disk_time = self.disk.access_time(len);
        fx.push(Effect::DiskRead {
            file,
            bytes: len,
            time: out.disk_time,
        });
        // Admit, then shrink to budget. The cache pool is deliberately
        // append-only — drained chunks are never scavenged back from
        // inside an op. Scavenging keys off `Arc` refcounts, and those
        // count *ambient* holders (the recorded journal's command
        // aggregates, a connection's in-flight response clone) that
        // exist live but not under replay: releasing here would make
        // every later allocation offset — and thus buffer identity,
        // which §3.9 checksum keys and the state digest both observe —
        // depend on who else happens to hold a buffer. Determinism
        // over compaction.
        self.cache.insert(key, agg.clone());
        self.op_rebalance_cache();
        agg
    }

    // ---- window transfers ----------------------------------------------

    /// Makes an aggregate's chunks readable in `domain`, charging only
    /// first-time mappings (§3.2). Returns newly mapped pages.
    pub(crate) fn op_transfer_to(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        fx: &mut Vec<Effect>,
    ) -> u64 {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self
            .window
            .transfer(&chunks, domain, &self.cache_pool_acl.clone())
            .unwrap_or(0);
        fx.push(Effect::PagesMapped(pages));
        pages
    }

    /// Like [`KernelState::op_transfer_to`] but enforcing an explicit
    /// ACL (pipe transfers between mutually untrusting processes).
    ///
    /// # Errors
    ///
    /// Returns [`iolite_vm::AccessDenied`] when `domain` is not on
    /// `acl`.
    pub(crate) fn op_transfer_with_acl(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        acl: &Acl,
        fx: &mut Vec<Effect>,
    ) -> Result<u64, iolite_vm::AccessDenied> {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self.window.transfer(&chunks, domain, acl)?;
        fx.push(Effect::PagesMapped(pages));
        Ok(pages)
    }
}

//! [`KernelState`]: every byte of kernel state as one pure value.
//!
//! The struct composes all IO-Lite subsystems (window, cache, checksum
//! cache, pipes, sockets, descriptor registry, …) plus the sequential
//! clock and the central [`IdAlloc`]. Mutations live in the `ops_*`
//! sibling modules as `op_*` methods taking an explicit effect buffer;
//! this file holds the aux value types, the constructor, the read-only
//! query surface, [`KernelState::snapshot`] (a deep, identity-preserving
//! fork), and [`KernelState::state_hash`] (a stable digest used to prove
//! replay equivalence).

use std::collections::{BTreeMap, VecDeque};

use iolite_buf::{digest_aggregate, Acl, Aggregate, BufferPool, Fnv64, PoolForker, PoolId};
use iolite_fs::{
    CacheKey, DiskModel, FileId, FileStore, MetadataCache, Policy, UnifiedCache,
    WritebackConfig, WritebackScheduler,
};
use iolite_ipc::Pipe;
use iolite_net::{ChecksumCache, PacketFilter, SendOutcome, TcpConn};
use iolite_sim::SimTime;
use iolite_vm::{IoLiteWindow, MemAccount, PageoutDaemon, PhysMemory};

use super::ids::{ConnId, IdAlloc, PipeId};
use crate::cost::{Charge, CostCategory, CostModel};
use crate::error::IolError;
use crate::fd::{Fd, FdObject, FdRegistry, OpenFileRef};
use crate::process::{Pid, Process};

use super::effect::Effect;

/// A bounded LRU set of mapped files: Flash's mapped-file cache.
///
/// Flash keeps recently served files mmap'd; a miss costs an
/// `mmap`/`munmap` cycle. Flash-Lite has no equivalent cost — IO-Lite
/// window mappings persist at chunk granularity (§3.2).
#[derive(Debug, Default, Clone)]
pub struct MappedFileCache {
    capacity: usize,
    clock: u64,
    entries: std::collections::HashMap<FileId, u64>,
}

impl MappedFileCache {
    /// Creates a cache of the given capacity (0 disables caching: every
    /// touch misses, which models Apache's map-per-request behaviour).
    pub fn new(capacity: usize) -> Self {
        MappedFileCache {
            capacity,
            clock: 0,
            entries: std::collections::HashMap::new(),
        }
    }

    /// Touches a file; returns `true` if it was already mapped.
    pub fn touch(&mut self, file: FileId) -> bool {
        self.clock += 1;
        if self.capacity == 0 {
            return false;
        }
        if let Some(stamp) = self.entries.get_mut(&file) {
            *stamp = self.clock;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&f, _)| f)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(file, self.clock);
        false
    }

    /// Number of files currently mapped.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds the cache's state into a stable digest (sorted iteration;
    /// stamps are unique, so order is well defined).
    pub fn digest(&self, h: &mut Fnv64) {
        h.write_usize(self.capacity);
        h.write_u64(self.clock);
        h.write_usize(self.entries.len());
        let mut files: Vec<FileId> = self.entries.keys().copied().collect();
        files.sort_unstable();
        for f in files {
            h.write_u64(f.0);
            h.write_u64(self.entries[&f]);
        }
    }
}

/// Which end of a pipe a file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    /// The reading end.
    Read,
    /// The writing end.
    Write,
}

/// The outcome of one kernel operation: simulated CPU cost plus any
/// device time the caller must schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoOutcome {
    /// CPU time consumed by the operation.
    pub charge: Charge,
    /// Whether the file cache satisfied the request.
    pub cache_hit: bool,
    /// Bytes read from the disk device (0 on hits).
    pub disk_bytes: u64,
    /// Device service time for those bytes (not CPU; schedule on the
    /// disk resource).
    pub disk_time: SimTime,
    /// New page mappings this operation established.
    pub mapped_pages: u64,
    /// Network send accounting when the descriptor was a socket
    /// (segments, checksum bytes computed vs cached, copies, socket
    /// buffer occupancy). `None` for files and pipes.
    pub net: Option<SendOutcome>,
}

/// A kernel-owned TCP socket: the connection state plus an inbound
/// byte queue fed by the receive path (or test harnesses).
#[derive(Debug)]
pub(crate) struct KernelSocket {
    pub(crate) conn: TcpConn,
    pub(crate) inbound: VecDeque<Aggregate>,
    /// The local side tore the connection down (last descriptor gone).
    pub(crate) closed: bool,
    /// The remote side hung up (FIN/RST): reads drain then EOF, writes
    /// are EPIPE — the "descriptor becomes ready because the peer
    /// closed" case an event loop must observe through `iol_poll`.
    pub(crate) peer_closed: bool,
    /// `O_NONBLOCK`: writes respect the Tss send-buffer bound with
    /// partial progress instead of accepting everything at once.
    pub(crate) nonblocking: bool,
    /// Unacknowledged bytes occupying the send buffer (nonblocking
    /// sockets only; the driver drains them as simulated ACKs arrive
    /// via `socket_drain`).
    pub(crate) sndbuf_used: u64,
}

impl KernelSocket {
    /// Whether writes can never succeed again (local teardown or a
    /// remote hang-up).
    pub(crate) fn write_dead(&self) -> bool {
        self.closed || self.peer_closed
    }

    /// Bytes a write may accept right now: the Tss bound for
    /// nonblocking sockets, unbounded for blocking ones (which model
    /// write-until-drained).
    pub(crate) fn send_space(&self) -> u64 {
        if self.nonblocking {
            (self.conn.tss() as u64).saturating_sub(self.sndbuf_used)
        } else {
            u64::MAX
        }
    }

    /// Deep-forks the socket for a state snapshot, rebinding the
    /// inbound queue's aggregates through `forker`.
    fn fork(&self, forker: &mut PoolForker) -> KernelSocket {
        KernelSocket {
            conn: self.conn.clone(),
            inbound: self.inbound.iter().map(|a| forker.fork_aggregate(a)).collect(),
            closed: self.closed,
            peer_closed: self.peer_closed,
            nonblocking: self.nonblocking,
            sndbuf_used: self.sndbuf_used,
        }
    }

    /// Folds the socket's state into a stable digest.
    fn digest(&self, h: &mut Fnv64) {
        self.conn.digest(h);
        h.write_usize(self.inbound.len());
        for a in &self.inbound {
            digest_aggregate(a, h);
        }
        h.write_bool(self.closed);
        h.write_bool(self.peer_closed);
        h.write_bool(self.nonblocking);
        h.write_u64(self.sndbuf_used);
    }
}

/// A kernel pipe plus the ACL governing zero-copy transfers out of it
/// (`None` = the permissive kernel default; pipes between mutually
/// untrusting processes carry the writer pool's ACL, §3.10).
#[derive(Debug)]
pub(crate) struct PipeSlot {
    pub(crate) pipe: Pipe,
    pub(crate) acl: Option<Acl>,
    /// Set when the last read-end descriptor disappears: subsequent
    /// writes are `EPIPE` — there is nobody left to drain the pipe.
    pub(crate) reader_gone: bool,
}

impl PipeSlot {
    fn fork(&self, forker: &mut PoolForker) -> PipeSlot {
        PipeSlot {
            pipe: self.pipe.fork(forker),
            acl: self.acl.clone(),
            reader_gone: self.reader_gone,
        }
    }

    fn digest(&self, h: &mut Fnv64) {
        // ACLs are fixed at creation and fully determined by the
        // creating command; presence is enough to separate the shapes.
        h.write_bool(self.acl.is_some());
        h.write_bool(self.reader_gone);
        self.pipe.digest(h);
    }
}

/// The stdio console pipes backing a process's fds 0/1/2.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Console {
    pub(crate) stdin: PipeId,
    pub(crate) stdout: PipeId,
    pub(crate) stderr: PipeId,
}

/// The complete simulated-kernel state as a pure value.
///
/// Subsystem fields are public by design, mirroring the shell's
/// historical surface: experiment drivers reach directly into the
/// checksum cache, the memory accountant, the packet filter — the same
/// way kernel subsystems reach each other. (Direct field mutation is
/// shell-side convenience; only `op_*` mutations are journaled.)
pub struct KernelState {
    /// The machine/cost model.
    pub cost: CostModel,
    /// The IO-Lite window (chunk mappings per domain).
    pub window: IoLiteWindow,
    /// Physical-memory accountant.
    pub physmem: PhysMemory,
    /// The §3.7 pageout daemon.
    pub pageout: PageoutDaemon,
    /// File contents.
    pub store: FileStore,
    /// The "old" metadata buffer cache.
    pub meta: MetadataCache,
    /// The unified IO-Lite file cache.
    pub cache: UnifiedCache,
    /// The write-back scheduler + NVM staging tier (PR 10 write path).
    pub writeback: WritebackScheduler,
    /// The Internet checksum cache (§3.9).
    pub cksum: ChecksumCache,
    /// The early-demux packet filter (§3.6).
    pub filter: PacketFilter,
    /// Disk timing model.
    pub disk: DiskModel,
    /// Flash's mapped-file cache (conventional servers only).
    pub mapped_files: MappedFileCache,
    /// The pool backing the file cache. Its ACL is extended to every
    /// process that reads files: web content is world-readable, and the
    /// paper's private-data story (separate per-process/CGI pools) is
    /// carried by the per-process pools instead.
    pub(crate) cache_pool: BufferPool,
    pub(crate) cache_pool_acl: Acl,
    pub(crate) processes: BTreeMap<Pid, Process>,
    pub(crate) pipes: BTreeMap<PipeId, PipeSlot>,
    pub(crate) sockets: BTreeMap<ConnId, KernelSocket>,
    pub(crate) consoles: BTreeMap<Pid, Console>,
    pub(crate) fds: FdRegistry,
    pub(crate) ids: IdAlloc,
    pub(crate) clock: SimTime,
}

impl KernelState {
    /// Creates the initial kernel state for a machine model and file-
    /// cache policy. Pure: two calls with equal arguments produce
    /// states with equal [`KernelState::state_hash`].
    pub fn new(cost: CostModel, policy: Policy) -> Self {
        let mut physmem = PhysMemory::new(cost.ram_bytes);
        physmem.reserve(MemAccount::Kernel, cost.kernel_reserve_bytes);
        let budget = physmem.cache_budget();
        let disk = DiskModel {
            avg_position_ms: cost.disk_position_ms,
            transfer_mb_s: cost.disk_mb_s,
        };
        KernelState {
            cost,
            window: IoLiteWindow::new(iolite_buf::DEFAULT_CHUNK_SIZE),
            physmem,
            pageout: PageoutDaemon::new(),
            store: FileStore::new(),
            meta: MetadataCache::new(4096),
            cache: UnifiedCache::new(policy, budget),
            writeback: WritebackScheduler::new(WritebackConfig::default_tuning()),
            cksum: ChecksumCache::new(1 << 16),
            filter: PacketFilter::new(),
            disk,
            mapped_files: MappedFileCache::new(cost.flash_mapped_cache_files),
            cache_pool: BufferPool::new(
                PoolId(0),
                Acl::kernel_only(),
                iolite_buf::DEFAULT_CHUNK_SIZE,
            ),
            cache_pool_acl: Acl::kernel_only(),
            processes: BTreeMap::new(),
            pipes: BTreeMap::new(),
            sockets: BTreeMap::new(),
            consoles: BTreeMap::new(),
            fds: FdRegistry::new(),
            ids: IdAlloc::new(),
            clock: SimTime::ZERO,
        }
    }

    // ---- clock ---------------------------------------------------------

    /// The kernel's sequential clock (used by the application harness;
    /// the Web driver uses an external event clock instead).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Adds CPU time to the sequential clock, reporting the charge as
    /// an effect (the shell folds it into the metrics breakdown).
    pub(crate) fn op_charge(&mut self, cat: CostCategory, c: Charge, fx: &mut Vec<Effect>) {
        self.clock += c.time;
        fx.push(Effect::Charge {
            category: cat,
            time: c.time,
        });
    }

    /// Advances the sequential clock by non-CPU time (e.g. disk waits).
    pub(crate) fn op_advance(&mut self, t: SimTime) {
        self.clock += t;
    }

    /// Resets the sequential clock.
    pub(crate) fn op_reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
    }

    /// Reports `n` process context switches as an effect.
    pub(crate) fn op_context_switch(&self, n: u64, fx: &mut Vec<Effect>) {
        fx.push(Effect::ContextSwitches(n));
    }

    // ---- processes and pools -------------------------------------------

    /// Spawns a process: private default pool, stdio console triple at
    /// fds 0/1/2.
    pub(crate) fn op_spawn(&mut self, name: String, fx: &mut Vec<Effect>) -> Pid {
        let pid = self.ids.alloc_pid();
        let pool_id = self.ids.alloc_pool();
        let proc = Process::new(pid, name, pool_id, iolite_buf::DEFAULT_CHUNK_SIZE);
        // File data read by this process becomes readable to it.
        self.cache_pool_acl.grant(pid.domain());
        self.processes.insert(pid, proc);
        // The stdio triple: three zero-copy console pipes, wired to the
        // conventional descriptor numbers.
        let console = Console {
            stdin: self.op_pipe_create(iolite_ipc::PipeMode::ZeroCopy, None, fx),
            stdout: self.op_pipe_create(iolite_ipc::PipeMode::ZeroCopy, None, fx),
            stderr: self.op_pipe_create(iolite_ipc::PipeMode::ZeroCopy, None, fx),
        };
        self.consoles.insert(pid, console);
        let table = self.fds.table(pid);
        table.install_at(Fd::STDIN, FdObject::PipeRead(console.stdin));
        table.install_at(Fd::STDOUT, FdObject::PipeWrite(console.stdout));
        table.install_at(Fd::STDERR, FdObject::PipeWrite(console.stderr));
        pid
    }

    /// Creates an additional allocation pool (`IOL_create_pool`, §3.4)
    /// with an explicit ACL. The pool is returned to the caller, not
    /// retained — only the consumed pool id is kernel state.
    pub(crate) fn op_create_pool(&mut self, acl: Acl) -> BufferPool {
        BufferPool::new(self.ids.alloc_pool(), acl, iolite_buf::DEFAULT_CHUNK_SIZE)
    }

    // ---- read-only queries ---------------------------------------------

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics on unknown pids — experiment drivers own process lifetimes.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[&pid]
    }

    /// Immutable access to a pipe (tests, stats).
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[&id].pipe
    }

    /// Read-only access to the connection behind a socket descriptor
    /// (window rates, lifetime totals).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors,
    /// [`IolError::BadFdKind`] for non-sockets.
    pub fn socket(&self, pid: Pid, fd: Fd) -> Result<&TcpConn, IolError> {
        let desc = self
            .fds
            .get_table(pid)
            .and_then(|t| t.get(fd))
            .ok_or(IolError::NotOpen { fd })?;
        let object = desc.lock().unwrap().object;
        match object {
            FdObject::Socket(id) => Ok(&self.sockets[&id].conn),
            _ => Err(IolError::BadFdKind {
                fd,
                operation: "socket access",
            }),
        }
    }

    /// Free space in a socket's send buffer (`Tss - unacknowledged`);
    /// the event loop sizes its next write window with this, the way
    /// Flash sizes `writev` calls against `FIONSPACE`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_space(&self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer space")?;
        let sock = &self.sockets[&id];
        // A blocking socket's buffer is always (logically) empty; cap
        // the answer at Tss either way.
        Ok(sock.send_space().min(sock.conn.tss() as u64))
    }

    /// Bytes sitting unacknowledged in a socket's send buffer.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_unacked(&self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer occupancy")?;
        Ok(self.sockets[&id].sndbuf_used)
    }

    /// Whether a socket's remote side has hung up (a FIN/RST was
    /// observed via `socket_peer_close`). A harness driving the wire
    /// externally needs this *query* — as opposed to learning it from a
    /// failed `socket_drain` — because under an adversarial wire the
    /// drain happens on ACK arrival, not every tick, so a dead peer
    /// mid-drain would otherwise go unnoticed forever.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_peer_closed(&self, pid: Pid, fd: Fd) -> Result<bool, IolError> {
        let id = self.resolve_socket(pid, fd, "peer liveness")?;
        Ok(self.sockets[&id].peer_closed)
    }

    /// The length of the file behind a descriptor (`fstat(2)`'s
    /// `st_size`).
    ///
    /// A resident whole-file cache entry is authoritative over the
    /// store's metadata: under sharded replication a non-home shard's
    /// store image goes stale the moment a write commits at the home
    /// shard (shared-nothing — only home writes), while the replica
    /// installed from the home's bytes carries the true length. Sizing
    /// a read from the stale store would truncate or overrun the
    /// replica. On an unsharded kernel the two never diverge
    /// (`put_install` writes the store eagerly).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn fd_len(&self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let file = self.fd_file(pid, fd)?;
        if let Some(entry) = self.cache.peek(&CacheKey::whole(file)) {
            return Ok(entry.len());
        }
        Ok(self.store.len(file).unwrap_or(0))
    }

    /// The [`FileId`] behind a file descriptor — for cache-layer
    /// bookkeeping (cache pins, the mapped-file cache), never for I/O.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn fd_file(&self, pid: Pid, fd: Fd) -> Result<FileId, IolError> {
        self.resolve_file(pid, fd, "file metadata")
    }

    /// The object behind a descriptor (`fstat`-style introspection; the
    /// handle to pass `install_fd`/`install_fd_at` when inheriting
    /// descriptors across processes, fork-style).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors.
    pub fn fd_object(&self, pid: Pid, fd: Fd) -> Result<FdObject, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.lock().unwrap().object;
        Ok(object)
    }

    /// Resolves a descriptor to its open-file description (`EBADF` on
    /// unknown numbers) — the one lookup every fd operation goes
    /// through. Read-only: resolving never creates a table.
    pub(crate) fn resolve_fd(&self, pid: Pid, fd: Fd) -> Result<OpenFileRef, IolError> {
        self.fds
            .get_table(pid)
            .and_then(|t| t.get(fd))
            .ok_or(IolError::NotOpen { fd })
    }

    /// Resolves a descriptor that must name a regular file.
    pub(crate) fn resolve_file(
        &self,
        pid: Pid,
        fd: Fd,
        operation: &'static str,
    ) -> Result<FileId, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.lock().unwrap().object;
        match object {
            FdObject::File(file) => Ok(file),
            _ => Err(IolError::BadFdKind { fd, operation }),
        }
    }

    pub(crate) fn resolve_socket(
        &self,
        pid: Pid,
        fd: Fd,
        operation: &'static str,
    ) -> Result<ConnId, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.lock().unwrap().object;
        match object {
            FdObject::Socket(id) => Ok(id),
            _ => Err(IolError::BadFdKind { fd, operation }),
        }
    }

    // ---- snapshot and digest -------------------------------------------

    /// Deep-forks the whole kernel state.
    ///
    /// One [`PoolForker`] spans the snapshot so buffer identity is
    /// preserved: pools fork before the aggregates that view them
    /// (cache pool and per-process pools first, then pipes — whose
    /// scratch pools fork inside [`Pipe::fork`] — then cache entries
    /// and socket queues). Aggregates viewing *application* pools that
    /// are not kernel state (delivered payloads) share their original
    /// buffers, which is sound: the kernel never mutates buffer
    /// contents in place.
    pub fn snapshot(&self) -> KernelState {
        let mut forker = PoolForker::new();
        let cache_pool = self.cache_pool.fork(&mut forker);
        let processes: BTreeMap<Pid, Process> = self
            .processes
            .iter()
            .map(|(pid, p)| (*pid, p.fork(&mut forker)))
            .collect();
        let pipes: BTreeMap<PipeId, PipeSlot> = self
            .pipes
            .iter()
            .map(|(id, s)| (*id, s.fork(&mut forker)))
            .collect();
        let cache = self.cache.snapshot(&mut forker);
        let sockets: BTreeMap<ConnId, KernelSocket> = self
            .sockets
            .iter()
            .map(|(id, s)| (*id, s.fork(&mut forker)))
            .collect();
        KernelState {
            cost: self.cost,
            window: self.window.clone(),
            physmem: self.physmem.clone(),
            pageout: self.pageout.clone(),
            store: self.store.clone(),
            meta: self.meta.clone(),
            cache,
            writeback: self.writeback.clone(),
            cksum: self.cksum.clone(),
            filter: self.filter.clone(),
            disk: self.disk,
            mapped_files: self.mapped_files.clone(),
            cache_pool,
            cache_pool_acl: self.cache_pool_acl.clone(),
            processes,
            pipes,
            sockets,
            consoles: self.consoles.clone(),
            fds: self.fds.fork(),
            ids: self.ids,
            clock: self.clock,
        }
    }

    /// A stable digest of the replay-relevant kernel state.
    ///
    /// Two states built by the same command sequence hash equal; the
    /// replay regression test leans on this. Excluded by design: pool
    /// allocator internals (application-side allocations are not
    /// kernel commands) and the disk/cost models (constructor inputs).
    pub fn state_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.clock.as_nanos());
        self.ids.digest(&mut h);
        self.window.digest(&mut h);
        self.physmem.digest(&mut h);
        self.pageout.digest(&mut h);
        self.store.digest(&mut h);
        self.meta.digest(&mut h);
        self.cache.digest(&mut h);
        self.writeback.digest(&mut h);
        self.cksum.digest(&mut h);
        self.filter.digest(&mut h);
        self.mapped_files.digest(&mut h);
        h.write_usize(self.processes.len());
        for (pid, p) in &self.processes {
            h.write_u32(pid.0);
            h.write_str(p.name());
            h.write_u32(p.pool().id().0);
        }
        h.write_usize(self.pipes.len());
        for (id, slot) in &self.pipes {
            h.write_u32(id.0);
            slot.digest(&mut h);
        }
        h.write_usize(self.sockets.len());
        for (id, sock) in &self.sockets {
            h.write_u64(id.0);
            sock.digest(&mut h);
        }
        h.write_usize(self.consoles.len());
        for (pid, c) in &self.consoles {
            h.write_u32(pid.0);
            h.write_u32(c.stdin.0);
            h.write_u32(c.stdout.0);
            h.write_u32(c.stderr.0);
        }
        self.fds.digest(&mut h);
        h.finish()
    }
}

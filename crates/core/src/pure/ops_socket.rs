//! TCP socket operations on [`KernelState`].

use std::collections::VecDeque;

use iolite_buf::Aggregate;
use iolite_net::{BufferMode, MbufChain, SendOutcome, TcpConn};

use super::effect::Effect;
use super::ids::ConnId;
use super::state::{IoOutcome, KernelSocket, KernelState};
use crate::cost::Charge;
use crate::error::{IoResult, IolError};
use crate::fd::{Fd, FdObject};
use crate::process::Pid;

impl KernelState {
    /// Creates a TCP connection in the kernel's socket registry and
    /// installs a descriptor for it in `pid`'s table. The §3.4 promise
    /// made real: the same `IOL_read`/`IOL_write` calls that act on
    /// files and pipes drive the socket's zero-copy (or copying) send
    /// path.
    pub(crate) fn op_socket_create(
        &mut self,
        pid: Pid,
        mode: BufferMode,
        mss: usize,
        tss: usize,
    ) -> Fd {
        let id = self.ids.alloc_conn();
        self.sockets.insert(
            id,
            KernelSocket {
                conn: TcpConn::new(id.0, mode, mss, tss),
                inbound: VecDeque::new(),
                closed: false,
                peer_closed: false,
                nonblocking: false,
                sndbuf_used: 0,
            },
        );
        self.fds.table(pid).install(FdObject::Socket(id))
    }

    /// Delivers inbound payload to a socket (the receive path's
    /// hand-off after demux/reassembly, or a test harness playing the
    /// remote peer). The data becomes readable through `iol_read_fd`.
    pub(crate) fn op_socket_deliver(
        &mut self,
        pid: Pid,
        fd: Fd,
        payload: Aggregate,
    ) -> IoResult<u64> {
        let id = self.resolve_socket(pid, fd, "socket delivery")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.closed || sock.peer_closed {
            return Err(IolError::Closed);
        }
        let len = payload.len();
        sock.inbound.push_back(payload);
        Ok((len, IoOutcome::default()))
    }

    /// Accounting-only send on a *copy-mode* socket descriptor: the
    /// conventional `write(2)` path, whose costs depend only on the
    /// byte count (copies have no identity, so no cache can apply).
    pub(crate) fn op_socket_send_accounted(
        &mut self,
        pid: Pid,
        fd: Fd,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<SendOutcome> {
        let id = self.resolve_socket(pid, fd, "accounted socket send")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let send = sock.conn.send_accounted(len);
        fx.push(Effect::Syscalls(1));
        fx.push(Effect::BytesCopied(send.bytes_copied));
        fx.push(Effect::BytesChecksummed(send.csum_bytes_computed));
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            net: Some(send),
            ..IoOutcome::default()
        };
        Ok((send, out))
    }

    /// Materializes the actual TCP segment chains a descriptor write of
    /// `payload` would emit (end-to-end byte-exactness tests; the hot
    /// path only needs `iol_write_fd`'s accounting).
    pub(crate) fn op_socket_transmit_segments(
        &mut self,
        pid: Pid,
        fd: Fd,
        payload: &Aggregate,
    ) -> IoResult<Vec<MbufChain>> {
        let id = self.resolve_socket(pid, fd, "segment materialization")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let chains = sock.conn.build_segments(payload);
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((chains, out))
    }

    /// Sets a socket descriptor's `O_NONBLOCK` flag.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub(crate) fn op_set_nonblocking(
        &mut self,
        pid: Pid,
        fd: Fd,
        nonblocking: bool,
    ) -> Result<(), IolError> {
        let id = self.resolve_socket(pid, fd, "set O_NONBLOCK")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        sock.nonblocking = nonblocking;
        Ok(())
    }

    /// Acknowledges up to `max` bytes of a nonblocking socket's send
    /// buffer (the wire drained them), returning the bytes freed. No
    /// CPU is charged — per-packet and checksum work was already billed
    /// at send time.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual, and
    /// [`IolError::Closed`] once the peer hung up — a dead peer
    /// acknowledges nothing, so unacknowledged bytes can never drain
    /// and the in-flight response must be failed, not completed.
    pub(crate) fn op_socket_drain(&mut self, pid: Pid, fd: Fd, max: u64) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer drain")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let take = sock.sndbuf_used.min(max);
        sock.sndbuf_used -= take;
        Ok(take)
    }

    /// Marks a socket's remote side as hung up (FIN/RST arrived): reads
    /// drain the delivered data then return EOF, writes fail with
    /// [`IolError::Closed`], and `iol_poll` reports `eof`/`epipe`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub(crate) fn op_socket_peer_close(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        let id = self.resolve_socket(pid, fd, "peer close")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        sock.peer_closed = true;
        Ok(())
    }

    /// Enables or disables the §3.9 checksum cache.
    pub(crate) fn op_set_checksum_cache(&mut self, enabled: bool) {
        self.cksum.set_enabled(enabled);
    }

    /// Drains up to `len` bytes from a socket's inbound queue.
    pub(crate) fn op_socket_read(
        &mut self,
        pid: Pid,
        _fd: Fd,
        id: ConnId,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        let mode = sock.conn.mode();
        let mut agg = Aggregate::empty();
        while agg.len() < len {
            let Some(front) = sock.inbound.front_mut() else {
                break;
            };
            let want = len - agg.len();
            if front.len() <= want {
                agg.append(front);
                sock.inbound.pop_front();
            } else {
                let head = front.range(0, want).expect("in range");
                front.advance(want);
                agg.append(&head);
            }
        }
        if agg.is_empty() {
            // Local teardown or a remote hang-up both end the stream:
            // once the queue is drained, reads return empty (EOF).
            return if sock.closed || sock.peer_closed || len == 0 {
                Ok((agg, out))
            } else {
                Err(IolError::WouldBlock { outcome: out })
            };
        }
        match mode {
            BufferMode::ZeroCopy => {
                // recv by reference: first-time chunk mappings only.
                let pages = self.op_transfer_to(&agg, pid.domain(), fx);
                out.mapped_pages += pages;
                out.charge += self.cost.page_maps(pages);
            }
            BufferMode::Copy => {
                // Conventional recv copies socket-buffer data out.
                let copied = agg.len();
                fx.push(Effect::BytesCopied(copied));
                out.charge += self.cost.copy(copied);
            }
        }
        Ok((agg, out))
    }
}

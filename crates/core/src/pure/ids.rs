//! Kernel object identifiers and the central id allocator.

use iolite_buf::PoolId;

use crate::process::Pid;

/// Identifies a kernel pipe object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u32);

/// Identifies a kernel TCP connection (socket) object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// The central allocator for every kernel id space: pids, pool ids,
/// pipe ids, connection ids, and the pool ids of kernel-owned pipe
/// scratch pools.
///
/// Centralizing the counters makes id allocation a pure state
/// transition (no global atomics — [`IdAlloc`] lives inside
/// [`crate::pure::KernelState`], so two kernels built from the same
/// command stream allocate identical ids) and puts the overflow checks
/// in one place.
///
/// Ordinary pool ids ascend from 1 and must stay in the lower half of
/// the `u32` space; kernel scratch-pool ids ascend from
/// `u32::MAX / 2 + 1`, the private band `iolite_ipc::Pipe` reserves for
/// scratch pools (application-side pipes draw from a separate
/// descending band at the top of the space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdAlloc {
    next_pid: u32,
    next_pool: u32,
    next_pipe: u32,
    next_conn: u64,
    next_scratch: u32,
}

/// First id of the kernel scratch-pool band (`> u32::MAX / 2`, as the
/// IPC layer's scratch-pool invariant requires).
const SCRATCH_BASE: u32 = u32::MAX / 2 + 1;

/// Exclusive upper bound of the kernel scratch band, leaving the top of
/// the space to the IPC layer's global (application-side) allocator.
const SCRATCH_LIMIT: u32 = u32::MAX - (1 << 20);

impl IdAlloc {
    /// Creates the allocator with every counter at its starting value.
    pub fn new() -> Self {
        IdAlloc {
            next_pid: 1,
            next_pool: 1,
            next_pipe: 1,
            next_conn: 1,
            next_scratch: SCRATCH_BASE,
        }
    }

    /// Allocates the next process id.
    ///
    /// # Panics
    ///
    /// Panics on exhaustion of the pid space.
    pub fn alloc_pid(&mut self) -> Pid {
        let id = self.next_pid;
        self.next_pid = id.checked_add(1).expect("pid space exhausted");
        Pid(id)
    }

    /// Allocates the next ordinary (application/cache) pool id.
    ///
    /// # Panics
    ///
    /// Panics when the ascending band would cross into the scratch-pool
    /// half of the id space.
    pub fn alloc_pool(&mut self) -> PoolId {
        let id = self.next_pool;
        assert!(id < SCRATCH_BASE, "pool id space exhausted");
        self.next_pool += 1;
        PoolId(id)
    }

    /// Allocates the next pipe id.
    ///
    /// # Panics
    ///
    /// Panics on exhaustion of the pipe id space.
    pub fn alloc_pipe(&mut self) -> PipeId {
        let id = self.next_pipe;
        self.next_pipe = id.checked_add(1).expect("pipe id space exhausted");
        PipeId(id)
    }

    /// Allocates the next connection id.
    ///
    /// # Panics
    ///
    /// Panics on exhaustion of the connection id space.
    pub fn alloc_conn(&mut self) -> ConnId {
        let id = self.next_conn;
        self.next_conn = id.checked_add(1).expect("connection id space exhausted");
        ConnId(id)
    }

    /// Allocates the next kernel scratch-pool id (copy-mode pipe
    /// staging buffers).
    ///
    /// # Panics
    ///
    /// Panics when the kernel band would run into the IPC layer's
    /// application-side band at the top of the space.
    pub fn alloc_scratch_pool(&mut self) -> PoolId {
        let id = self.next_scratch;
        assert!(id < SCRATCH_LIMIT, "scratch pool id space exhausted");
        self.next_scratch += 1;
        PoolId(id)
    }

    /// Folds the counters into a stable digest.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        h.write_u32(self.next_pid);
        h.write_u32(self.next_pool);
        h.write_u32(self.next_pipe);
        h.write_u64(self.next_conn);
        h.write_u32(self.next_scratch);
    }
}

impl Default for IdAlloc {
    fn default() -> Self {
        IdAlloc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_independent_and_sequential() {
        let mut ids = IdAlloc::new();
        assert_eq!(ids.alloc_pid(), Pid(1));
        assert_eq!(ids.alloc_pid(), Pid(2));
        assert_eq!(ids.alloc_pool(), PoolId(1));
        assert_eq!(ids.alloc_pipe(), PipeId(1));
        assert_eq!(ids.alloc_conn(), ConnId(1));
        assert_eq!(ids.alloc_pid(), Pid(3), "pools/pipes do not consume pids");
    }

    #[test]
    fn scratch_band_sits_in_the_upper_half() {
        let mut ids = IdAlloc::new();
        let a = ids.alloc_scratch_pool();
        let b = ids.alloc_scratch_pool();
        assert!(a.0 > u32::MAX / 2);
        assert_eq!(b.0, a.0 + 1);
        assert!(b.0 < u32::MAX - (1 << 20), "leaves the global band alone");
    }

    /// Regression: allocation is overflow-checked, not wrapping — a
    /// wrapped counter would silently alias two live objects.
    #[test]
    #[should_panic(expected = "pool id space exhausted")]
    fn pool_allocation_refuses_to_cross_into_the_scratch_band() {
        let mut ids = IdAlloc {
            next_pool: u32::MAX / 2,
            ..IdAlloc::new()
        };
        ids.alloc_pool(); // last legal id
        ids.alloc_pool(); // must panic, not wrap or collide
    }

    #[test]
    #[should_panic(expected = "pid space exhausted")]
    fn pid_allocation_is_overflow_checked() {
        let mut ids = IdAlloc {
            next_pid: u32::MAX,
            ..IdAlloc::new()
        };
        ids.alloc_pid();
    }

    #[test]
    #[should_panic(expected = "scratch pool id space exhausted")]
    fn scratch_allocation_stops_before_the_global_band() {
        let mut ids = IdAlloc {
            next_scratch: u32::MAX - (1 << 20),
            ..IdAlloc::new()
        };
        ids.alloc_scratch_pool();
    }

    #[test]
    fn digest_changes_with_any_counter() {
        let hash = |ids: &IdAlloc| {
            let mut h = iolite_buf::Fnv64::new();
            ids.digest(&mut h);
            h.finish()
        };
        let mut ids = IdAlloc::new();
        let h0 = hash(&ids);
        ids.alloc_pipe();
        assert_ne!(hash(&ids), h0);
    }

    #[test]
    #[should_panic(expected = "pool id space exhausted")]
    fn pool_band_never_reaches_scratch_base() {
        let mut ids = IdAlloc {
            next_pool: u32::MAX / 2 + 1,
            ..IdAlloc::new()
        };
        // Even a corrupted counter cannot mint a scratch-band pool id.
        ids.alloc_pool();
    }
}

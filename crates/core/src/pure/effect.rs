//! Side effects as data: what an operation did to the world.
//!
//! The functional core never touches [`crate::Metrics`] (or any other
//! shell-owned sink). Every observable consequence of a [`super::Command`]
//! — CPU time, copies, checksum work, page mappings, disk traffic — is
//! appended to an effect buffer as a value. The imperative shell (and
//! [`super::replay`]) folds effects into metrics with
//! [`crate::Metrics::absorb`]; because effects are pure data, a
//! recorded run and its replay produce identical metrics.

use iolite_fs::FileId;
use iolite_sim::SimTime;

use crate::cost::CostCategory;

/// One observable side effect of applying a command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Simulated CPU time consumed, by category.
    Charge {
        /// The cost category the time bills to.
        category: CostCategory,
        /// The CPU time consumed.
        time: SimTime,
    },
    /// System-call traps executed.
    Syscalls(u64),
    /// Bytes physically copied.
    BytesCopied(u64),
    /// Bytes touched by checksum computation.
    BytesChecksummed(u64),
    /// Bytes whose checksum was served from the §3.9 cache.
    BytesChecksumCached(u64),
    /// New page mappings established in the IO-Lite window.
    PagesMapped(u64),
    /// Process context switches.
    ContextSwitches(u64),
    /// A disk read of `bytes` from `file`, with its device service
    /// time (the caller schedules the time on the disk resource; the
    /// core only reports it).
    DiskRead {
        /// The file read from the device.
        file: FileId,
        /// Bytes transferred from the device.
        bytes: u64,
        /// Device service time for the transfer.
        time: SimTime,
    },
    /// A pageout flush to backing stores (§3.7): `writes` store writes
    /// covering `bytes` in total.
    PageoutFlush {
        /// Backing-store writes issued.
        writes: u64,
        /// Bytes written across those stores.
        bytes: u64,
    },
    /// A PUT body installed as a dirty cache entry (PR 10 write path);
    /// persistence is deferred to write-back.
    DirtyInstalled {
        /// Bytes of dirty data admitted.
        bytes: u64,
    },
    /// One write-back flush batch cleaned `entries` cache entries
    /// covering `bytes` (landing split between NVM and disk is reported
    /// by the companion [`Effect::NvmAbsorbed`]/[`Effect::DiskWrite`]).
    WritebackFlushed {
        /// Cache entries marked clean by the batch.
        entries: u64,
        /// Bytes the batch persisted.
        bytes: u64,
    },
    /// Bytes the NVM staging tier absorbed, with its (positioning-free)
    /// device service time — scheduled by the caller like disk time.
    NvmAbsorbed {
        /// Bytes staged into the NVM tier.
        bytes: u64,
        /// NVM device service time.
        time: SimTime,
    },
    /// A background NVM→disk demotion of `bytes` (its disk cost is the
    /// companion [`Effect::DiskWrite`]).
    NvmDemoted {
        /// Bytes drained from the NVM tier.
        bytes: u64,
    },
    /// A disk write of `bytes`, with its device service time (the
    /// caller schedules the time on the disk resource; the core only
    /// reports it).
    DiskWrite {
        /// Bytes transferred to the device.
        bytes: u64,
        /// Device service time for the transfer.
        time: SimTime,
    },
}

impl crate::metrics::Metrics {
    /// Folds one effect into the metrics — the single bridge between
    /// the pure core's effect stream and the shell's accounting.
    pub fn absorb(&mut self, effect: &Effect) {
        match *effect {
            Effect::Charge { category, time } => self.charge(category, time),
            Effect::Syscalls(n) => self.syscalls += n,
            Effect::BytesCopied(n) => self.bytes_copied += n,
            Effect::BytesChecksummed(n) => self.bytes_checksummed += n,
            Effect::BytesChecksumCached(n) => self.bytes_checksum_cached += n,
            Effect::PagesMapped(n) => self.pages_mapped += n,
            Effect::ContextSwitches(n) => self.context_switches += n,
            Effect::DiskRead { bytes, .. } => {
                self.disk_ops += 1;
                self.disk_bytes += bytes;
            }
            // Backing-store flushes are tracked by the pageout daemon's
            // own counters inside the state; nothing to fold here.
            Effect::PageoutFlush { .. } => {}
            Effect::DirtyInstalled { bytes } => self.bytes_dirty_installed += bytes,
            Effect::WritebackFlushed { entries, bytes } => {
                self.writeback_flushes += 1;
                self.writeback_entries += entries;
                self.bytes_written_back += bytes;
            }
            Effect::NvmAbsorbed { bytes, .. } => self.nvm_absorbed_bytes += bytes,
            Effect::NvmDemoted { bytes } => self.nvm_demoted_bytes += bytes,
            Effect::DiskWrite { bytes, .. } => {
                self.disk_write_ops += 1;
                self.disk_write_bytes += bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn absorb_reconstructs_every_counter() {
        let mut m = Metrics::new();
        for e in [
            Effect::Syscalls(2),
            Effect::BytesCopied(10),
            Effect::BytesChecksummed(20),
            Effect::BytesChecksumCached(5),
            Effect::PagesMapped(3),
            Effect::ContextSwitches(4),
            Effect::DiskRead {
                file: FileId(1),
                bytes: 100,
                time: SimTime::from_us(7.0),
            },
            Effect::Charge {
                category: CostCategory::Copy,
                time: SimTime::from_us(9.0),
            },
            Effect::DirtyInstalled { bytes: 11 },
            Effect::WritebackFlushed { entries: 2, bytes: 11 },
            Effect::NvmAbsorbed {
                bytes: 6,
                time: SimTime::from_us(1.0),
            },
            Effect::NvmDemoted { bytes: 6 },
            Effect::DiskWrite {
                bytes: 5,
                time: SimTime::from_us(2.0),
            },
        ] {
            m.absorb(&e);
        }
        assert_eq!(m.syscalls, 2);
        assert_eq!(m.bytes_copied, 10);
        assert_eq!(m.bytes_checksummed, 20);
        assert_eq!(m.bytes_checksum_cached, 5);
        assert_eq!(m.pages_mapped, 3);
        assert_eq!(m.context_switches, 4);
        assert_eq!(m.disk_ops, 1);
        assert_eq!(m.disk_bytes, 100);
        assert_eq!(m.bytes_dirty_installed, 11);
        assert_eq!((m.writeback_flushes, m.writeback_entries), (1, 2));
        assert_eq!(m.bytes_written_back, 11);
        assert_eq!((m.nvm_absorbed_bytes, m.nvm_demoted_bytes), (6, 6));
        assert_eq!((m.disk_write_ops, m.disk_write_bytes), (1, 5));
        assert_eq!(m.time_in(CostCategory::Copy), SimTime::from_us(9.0));
    }
}

//! The transition functions: [`step`] (in-place), [`apply`] (value
//! semantics), and [`replay`] (journal → final state + metrics).

use std::fmt;

use iolite_buf::{Aggregate, BufferPool};
use iolite_fs::FileId;

use super::command::{Command, Journal};
use super::effect::Effect;
use super::ids::PipeId;
use super::state::KernelState;
use crate::error::IolError;
use crate::fd::Fd;
use crate::metrics::Metrics;
use crate::poll::Readiness;
use crate::process::Pid;

/// The coarse result of [`step`]ping one command.
///
/// Rich return values (mmap views, TCP segment chains, send outcomes)
/// are the imperative shell's business — it calls the typed `op_*`
/// methods directly. `Reply` exists so the dispatcher is total and
/// replay/property tests can sanity-check outcomes without a
/// per-command return type.
pub enum Reply {
    /// Nothing beyond the state transition.
    Unit,
    /// A spawned process id.
    Pid(Pid),
    /// A created file.
    File(FileId),
    /// A descriptor.
    Fd(Fd),
    /// Two descriptors (`pipe(2)`-style pairs).
    FdPair(Fd, Fd),
    /// A created pipe.
    Pipe(PipeId),
    /// A created allocation pool (returned to the caller, not state).
    Pool(BufferPool),
    /// A byte count / offset / page count.
    Len(u64),
    /// A small cardinality (evicted entries).
    Count(usize),
    /// A boolean outcome (eviction happened, file was mapped).
    Flag(bool),
    /// A path lookup result.
    Lookup(Option<FileId>),
    /// Zero-copy payload.
    Data(Aggregate),
    /// Optional zero-copy payload (pipe reads).
    MaybeData(Option<Aggregate>),
    /// Copied-out payload.
    Bytes(Vec<u8>),
    /// Per-descriptor readiness.
    Poll(Vec<Readiness>),
}

impl fmt::Debug for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::Unit => write!(f, "Unit"),
            Reply::Pid(p) => write!(f, "Pid({})", p.0),
            Reply::File(id) => write!(f, "File({})", id.0),
            Reply::Fd(fd) => write!(f, "Fd({})", fd.0),
            Reply::FdPair(a, b) => write!(f, "FdPair({}, {})", a.0, b.0),
            Reply::Pipe(id) => write!(f, "Pipe({})", id.0),
            Reply::Pool(_) => write!(f, "Pool"),
            Reply::Len(n) => write!(f, "Len({n})"),
            Reply::Count(n) => write!(f, "Count({n})"),
            Reply::Flag(b) => write!(f, "Flag({b})"),
            Reply::Lookup(id) => write!(f, "Lookup({:?})", id.map(|i| i.0)),
            Reply::Data(a) => write!(f, "Data(len={})", a.len()),
            Reply::MaybeData(a) => write!(f, "MaybeData(len={:?})", a.as_ref().map(|a| a.len())),
            Reply::Bytes(b) => write!(f, "Bytes(len={})", b.len()),
            Reply::Poll(r) => write!(f, "Poll(n={})", r.len()),
        }
    }
}

/// Applies one command to `state` in place, appending the resulting
/// effects to `fx`. This is the engine under both the imperative shell
/// and [`replay`]: deterministic, no I/O, no wall clock, no randomness.
///
/// # Errors
///
/// Whatever the underlying operation rejects with. Note that a
/// rejected command may still have mutated state before the rejection
/// (a failed `open` warms the metadata cache; an ACL-denied pipe read
/// has already trapped) — replay therefore re-steps *every* journaled
/// command, errors included.
pub fn step(state: &mut KernelState, cmd: &Command, fx: &mut Vec<Effect>) -> Result<Reply, IolError> {
    match cmd {
        Command::Spawn { name } => Ok(Reply::Pid(state.op_spawn(name.clone(), fx))),
        Command::CreatePool { acl } => Ok(Reply::Pool(state.op_create_pool(acl.clone()))),
        Command::Advance { t } => {
            state.op_advance(*t);
            Ok(Reply::Unit)
        }
        Command::ResetClock => {
            state.op_reset_clock();
            Ok(Reply::Unit)
        }
        Command::Charge { category, charge } => {
            state.op_charge(*category, *charge, fx);
            Ok(Reply::Unit)
        }
        Command::ContextSwitch { n } => {
            state.op_context_switch(*n, fx);
            Ok(Reply::Unit)
        }
        Command::CreateFile { name, data } => Ok(Reply::File(state.op_create_file(name, data))),
        Command::CreateSyntheticFile { name, len, seed } => {
            Ok(Reply::File(state.op_create_synthetic_file(name, *len, *seed)))
        }
        Command::Lookup { name } => Ok(Reply::Lookup(state.op_lookup(name, fx).0)),
        Command::RebalanceCache => Ok(Reply::Count(state.op_rebalance_cache())),
        Command::VmPressure { other_pages } => {
            Ok(Reply::Flag(state.op_vm_pressure(*other_pages, fx)))
        }
        Command::ReadFileAt { pid, file, offset, len } => {
            Ok(Reply::Data(state.op_read_file_at(*pid, *file, *offset, *len, fx).0))
        }
        Command::WriteFileAt { pid, file, offset, agg } => {
            state.op_write_file_at(*pid, *file, *offset, agg, fx);
            Ok(Reply::Unit)
        }
        Command::PosixFileRead { pid, file, offset, len } => {
            Ok(Reply::Bytes(state.op_posix_file_read(*pid, *file, *offset, *len, fx).0))
        }
        Command::PosixFileWrite { pid, file, offset, data } => {
            state.op_posix_file_write(*pid, *file, *offset, data, fx);
            Ok(Reply::Unit)
        }
        Command::FileMmap { pid, file } => {
            state.op_file_mmap(*pid, *file, fx);
            Ok(Reply::Unit)
        }
        Command::CachePin { key } => {
            state.op_cache_pin(*key);
            Ok(Reply::Unit)
        }
        Command::CacheUnpin { key } => {
            state.op_cache_unpin(*key);
            Ok(Reply::Unit)
        }
        Command::CacheInstall { file, data } => {
            state.op_cache_install(*file, data, fx);
            Ok(Reply::Unit)
        }
        Command::CacheInvalidate { key } => {
            state.op_cache_invalidate(*key);
            Ok(Reply::Unit)
        }
        Command::PutInstall { pid, file, agg } => {
            state.op_put_install(*pid, *file, agg, fx);
            Ok(Reply::Len(agg.len()))
        }
        Command::WriteBack { max_bytes } => Ok(Reply::Len(state.op_write_back(*max_bytes, fx))),
        Command::NvmDemote { max_bytes } => Ok(Reply::Len(state.op_nvm_demote(*max_bytes, fx))),
        Command::SetWriteback { cfg } => {
            state.op_set_writeback(*cfg);
            Ok(Reply::Unit)
        }
        Command::MappedFileTouch { file } => Ok(Reply::Flag(state.op_mapped_file_touch(*file))),
        Command::MemReserve { account, bytes } => {
            state.op_mem_reserve(*account, *bytes);
            Ok(Reply::Unit)
        }
        Command::MemRelease { account, bytes } => {
            state.op_mem_release(*account, *bytes);
            Ok(Reply::Unit)
        }
        Command::TransferTo { agg, domain } => {
            Ok(Reply::Len(state.op_transfer_to(agg, *domain, fx)))
        }
        Command::TransferWithAcl { agg, domain, acl } => state
            .op_transfer_with_acl(agg, *domain, acl, fx)
            .map(Reply::Len)
            .map_err(|denied| IolError::PermissionDenied {
                domain: denied.domain,
            }),
        Command::PipeCreate { mode, acl } => {
            Ok(Reply::Pipe(state.op_pipe_create(*mode, acl.clone(), fx)))
        }
        Command::PipeWrite { pid, pipe, agg } => {
            Ok(Reply::Len(state.op_pipe_write(*pid, *pipe, agg, fx).0))
        }
        Command::PipeRead { pid, pipe, max } => state
            .op_pipe_read(*pid, *pipe, *max, fx)
            .map(|(got, _)| Reply::MaybeData(got)),
        Command::PipeClose { pipe } => {
            state.op_pipe_close(*pipe);
            Ok(Reply::Unit)
        }
        Command::SocketCreate { pid, mode, mss, tss } => {
            Ok(Reply::Fd(state.op_socket_create(*pid, *mode, *mss, *tss)))
        }
        Command::SocketDeliver { pid, fd, payload } => state
            .op_socket_deliver(*pid, *fd, payload.clone())
            .map(|(len, _)| Reply::Len(len)),
        Command::SocketSendAccounted { pid, fd, len } => state
            .op_socket_send_accounted(*pid, *fd, *len, fx)
            .map(|_| Reply::Unit),
        Command::SocketTransmitSegments { pid, fd, payload } => state
            .op_socket_transmit_segments(*pid, *fd, payload)
            .map(|_| Reply::Unit),
        Command::SetNonblocking { pid, fd, nonblocking } => state
            .op_set_nonblocking(*pid, *fd, *nonblocking)
            .map(|()| Reply::Unit),
        Command::SocketDrain { pid, fd, max } => {
            state.op_socket_drain(*pid, *fd, *max).map(Reply::Len)
        }
        Command::SocketPeerClose { pid, fd } => {
            state.op_socket_peer_close(*pid, *fd).map(|()| Reply::Unit)
        }
        Command::SetChecksumCache { enabled } => {
            state.op_set_checksum_cache(*enabled);
            Ok(Reply::Unit)
        }
        Command::Open { pid, path } => state.op_open(*pid, path, fx).map(|(fd, _)| Reply::Fd(fd)),
        Command::OpenFile { pid, file } => Ok(Reply::Fd(state.op_open_file(*pid, *file))),
        Command::PipeFds { pid, mode } => {
            let (r, w) = state.op_pipe_fds(*pid, *mode, fx);
            Ok(Reply::FdPair(r, w))
        }
        Command::PipeBetween { writer, reader, mode, acl } => {
            let (w, r) = state.op_pipe_between(*writer, *reader, *mode, acl.clone(), fx);
            Ok(Reply::FdPair(w, r))
        }
        Command::InstallFd { pid, object } => Ok(Reply::Fd(state.op_install_fd(*pid, *object))),
        Command::InstallFdAt { pid, at, object } => {
            Ok(Reply::Fd(state.op_install_fd_at(*pid, *at, *object)))
        }
        Command::DupFd { pid, fd } => state.op_dup_fd(*pid, *fd).map(Reply::Fd),
        Command::Dup2Fd { pid, src, dst } => state.op_dup2_fd(*pid, *src, *dst).map(Reply::Fd),
        Command::CloseFd { pid, fd } => state.op_close_fd(*pid, *fd).map(|()| Reply::Unit),
        Command::Lseek { pid, fd, offset, whence } => state
            .op_lseek(*pid, *fd, *offset, *whence, fx)
            .map(|(pos, _)| Reply::Len(pos)),
        Command::Poll { pid, fds } => state
            .op_iol_poll(*pid, fds, fx)
            .map(|(events, _)| Reply::Poll(events)),
        Command::IolReadFd { pid, fd, len } => state
            .op_iol_read_fd(*pid, *fd, *len, fx)
            .map(|(agg, _)| Reply::Data(agg)),
        Command::IolWriteFd { pid, fd, agg } => state
            .op_iol_write_fd(*pid, *fd, agg, fx)
            .map(|(n, _)| Reply::Len(n)),
        Command::IolPread { pid, fd, offset, len } => state
            .op_iol_pread(*pid, *fd, *offset, *len, fx)
            .map(|(agg, _)| Reply::Data(agg)),
        Command::IolPwrite { pid, fd, offset, agg } => state
            .op_iol_pwrite(*pid, *fd, *offset, agg, fx)
            .map(|(n, _)| Reply::Len(n)),
        Command::PosixReadFd { pid, fd, len } => state
            .op_posix_read_fd(*pid, *fd, *len, fx)
            .map(|(bytes, _)| Reply::Bytes(bytes)),
        Command::PosixWriteFd { pid, fd, data } => state
            .op_posix_write_fd(*pid, *fd, data, fx)
            .map(|(n, _)| Reply::Len(n)),
        Command::MmapFd { pid, fd } => state.op_mmap_fd(*pid, *fd, fx).map(|_| Reply::Unit),
        Command::FeedStdin { pid, data } => state
            .op_feed_stdin(*pid, data, fx)
            .map(|(n, _)| Reply::Len(n)),
        Command::ReadStdout { pid, max } => state
            .op_read_stdout(*pid, *max, fx)
            .map(|(agg, _)| Reply::Data(agg)),
        Command::ReadStderr { pid, max } => state
            .op_read_stderr(*pid, *max, fx)
            .map(|(agg, _)| Reply::Data(agg)),
    }
}

/// Pure value-semantics application: snapshots `state`, steps the
/// command, and returns the successor state plus its effects.
///
/// Partial progress (`ShortIo`, `WouldBlock`) still produces a
/// successor — those are successful transitions that also report why
/// the caller stopped early. Hard rejections return the error and
/// **discard** the snapshot, including any pre-rejection mutations the
/// command made (warmed caches, trap accounting); callers who need
/// those exact semantics journal through the shell and [`replay`],
/// which re-steps rejected commands too.
///
/// # Errors
///
/// Whatever [`step`] rejects with, minus the partial-progress cases.
pub fn apply(state: &KernelState, cmd: &Command) -> Result<(KernelState, Vec<Effect>), IolError> {
    let mut next = state.snapshot();
    let mut fx = Vec::new();
    match step(&mut next, cmd, &mut fx) {
        Ok(_) | Err(IolError::ShortIo { .. }) | Err(IolError::WouldBlock { .. }) => Ok((next, fx)),
        Err(e) => Err(e),
    }
}

/// Replays a recorded journal against an initial state, folding every
/// command through [`step`] (errors included — the journal records
/// attempts, and attempts mutate) and absorbing effects into a fresh
/// [`Metrics`]. Returns the final state and the reconstructed metrics.
///
/// Starting from the same initial state a live run started from (same
/// cost model and policy, before any command), the returned state
/// digests to the live run's [`KernelState::state_hash`] and the
/// metrics match its shell's — that equivalence is the point.
pub fn replay(initial: KernelState, journal: &Journal) -> (KernelState, Metrics) {
    let mut state = initial;
    let mut metrics = Metrics::new();
    let mut fx = Vec::new();
    for cmd in journal.commands() {
        fx.clear();
        let _ = step(&mut state, cmd, &mut fx);
        for e in &fx {
            metrics.absorb(e);
        }
    }
    (state, metrics)
}

//! Descriptor-surface operations on [`KernelState`]: open/dup/close,
//! lseek, poll, and the fd-based I/O entry points (§3.4: the IOL calls
//! act on any fd).

use iolite_buf::{Acl, Aggregate};
use iolite_fs::FileId;
use iolite_ipc::PipeMode;
use iolite_vm::MmapView;

use super::effect::Effect;
use super::state::{IoOutcome, KernelState};
use crate::cost::Charge;
use crate::error::{IoResult, IolError};
use crate::fd::{Fd, FdObject, Whence};
use crate::poll::{PollFd, Readiness};
use crate::process::Pid;

impl KernelState {
    // ---- readiness (the event-driven servers' select/poll, §6) ----------

    /// Reports readiness for a set of descriptors, `poll(2)`-style: one
    /// [`Readiness`] per entry, in order. Pipe ends (stdio included),
    /// kernel-registry sockets, and regular files are all supported;
    /// an entry that fails to resolve reports `invalid` (`POLLNVAL`)
    /// without failing the scan.
    ///
    /// The call is charged as one trap plus a per-entry scan cost —
    /// the select/poll overhead that made event-driven servers
    /// sensitive to poll-set size long before the payload moved.
    ///
    /// # Errors
    ///
    /// None today — the result is total; the `IoResult` shape carries
    /// the accounting like every other descriptor operation.
    pub(crate) fn op_iol_poll(
        &self,
        pid: Pid,
        fds: &[PollFd],
        fx: &mut Vec<Effect>,
    ) -> IoResult<Vec<Readiness>> {
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us + fds.len() as f64 * self.cost.poll_fd_us),
            ..IoOutcome::default()
        };
        fx.push(Effect::Syscalls(1));
        let table = self.fds.get_table(pid);
        let mut events = Vec::with_capacity(fds.len());
        for entry in fds {
            let Some(desc) = table.and_then(|t| t.get(entry.fd)) else {
                events.push(Readiness {
                    invalid: true,
                    ..Readiness::PENDING
                });
                continue;
            };
            let object = desc.lock().unwrap().object;
            events.push(self.object_readiness(object));
        }
        Ok((events, out))
    }

    /// The current readiness of one descriptor object.
    fn object_readiness(&self, object: FdObject) -> Readiness {
        match object {
            // Regular files never block (poll(2) semantics).
            FdObject::File(_) => Readiness {
                readable: true,
                writable: true,
                ..Readiness::PENDING
            },
            FdObject::PipeRead(id) => {
                let slot = &self.pipes[&id];
                let buffered = slot.pipe.buffered();
                Readiness {
                    readable: buffered > 0,
                    // All write ends gone and nothing left to drain:
                    // the next read returns empty.
                    eof: buffered == 0 && slot.pipe.is_closed(),
                    ..Readiness::PENDING
                }
            }
            FdObject::PipeWrite(id) => {
                let slot = &self.pipes[&id];
                let dead = slot.pipe.is_closed() || slot.reader_gone;
                Readiness {
                    writable: !dead && slot.pipe.space() > 0,
                    epipe: dead,
                    ..Readiness::PENDING
                }
            }
            FdObject::Socket(id) => {
                let Some(sock) = self.sockets.get(&id) else {
                    return Readiness {
                        invalid: true,
                        ..Readiness::PENDING
                    };
                };
                let hung_up = sock.write_dead();
                Readiness {
                    readable: !sock.inbound.is_empty(),
                    writable: !hung_up && sock.send_space() > 0,
                    eof: sock.inbound.is_empty() && hung_up,
                    epipe: hung_up,
                    ..Readiness::PENDING
                }
            }
        }
    }

    // ---- opening, duplicating, closing ----------------------------------

    /// Opens a file by path, returning a descriptor with offset 0. The
    /// outcome carries the metadata-lookup plus syscall charge.
    ///
    /// # Errors
    ///
    /// [`IolError::NotFound`] when the path does not resolve.
    pub(crate) fn op_open(&mut self, pid: Pid, path: &str, fx: &mut Vec<Effect>) -> IoResult<Fd> {
        let (id, charge) = self.op_lookup(path, fx);
        let file = id.ok_or(IolError::NotFound)?;
        let fd = self.fds.table(pid).install(FdObject::File(file));
        let out = IoOutcome {
            charge: charge + Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((fd, out))
    }

    /// Installs a descriptor (offset 0) for an already-resolved file —
    /// the bridge for layers that hold [`FileId`]s (workload setup,
    /// benches) into the descriptor world.
    pub(crate) fn op_open_file(&mut self, pid: Pid, file: FileId) -> Fd {
        self.fds.table(pid).install(FdObject::File(file))
    }

    /// Creates a pipe and returns `(read_fd, write_fd)` in `pid`'s
    /// table (both ends in one process, as after `pipe(2)` before
    /// `fork`).
    pub(crate) fn op_pipe_fds(&mut self, pid: Pid, mode: PipeMode, fx: &mut Vec<Effect>) -> (Fd, Fd) {
        let id = self.op_pipe_create(mode, None, fx);
        let table = self.fds.table(pid);
        let r = table.install(FdObject::PipeRead(id));
        let w = table.install(FdObject::PipeWrite(id));
        (r, w)
    }

    /// Creates a pipe with its write end in `writer`'s table and its
    /// read end in `reader`'s (the post-`fork` shape of `a | b`).
    /// Returns `(write_fd, read_fd)`.
    pub(crate) fn op_pipe_between(
        &mut self,
        writer: Pid,
        reader: Pid,
        mode: PipeMode,
        acl: Option<Acl>,
        fx: &mut Vec<Effect>,
    ) -> (Fd, Fd) {
        let id = self.op_pipe_create(mode, acl, fx);
        let w = self.fds.table(writer).install(FdObject::PipeWrite(id));
        let r = self.fds.table(reader).install(FdObject::PipeRead(id));
        (w, r)
    }

    /// Installs an existing object in `pid`'s descriptor table (the
    /// moral equivalent of inheriting an fd across `fork`/`exec`).
    pub(crate) fn op_install_fd(&mut self, pid: Pid, object: FdObject) -> Fd {
        self.fds.table(pid).install(object)
    }

    /// Installs an existing object at exactly `at` (`dup2`-style
    /// targeting for inherited objects), displacing and
    /// (last-reference) closing whatever was there.
    pub(crate) fn op_install_fd_at(&mut self, pid: Pid, at: Fd, object: FdObject) -> Fd {
        let displaced = self.fds.table(pid).install_at(at, object);
        if let Some(old) = displaced {
            let old_object = old.lock().unwrap().object;
            self.finalize_close(old_object);
        }
        at
    }

    /// Duplicates a descriptor (`dup(2)`) onto the lowest free number:
    /// both numbers share one file offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open.
    pub(crate) fn op_dup_fd(&mut self, pid: Pid, fd: Fd) -> Result<Fd, IolError> {
        self.fds
            .table(pid)
            .dup(fd)
            .ok_or(IolError::NotOpen { fd })
    }

    /// Duplicates `src` onto exactly `dst` (`dup2(2)`), displacing and
    /// (last-reference) closing whatever was there.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `src` is not open.
    pub(crate) fn op_dup2_fd(&mut self, pid: Pid, src: Fd, dst: Fd) -> Result<Fd, IolError> {
        let displaced = self
            .fds
            .table(pid)
            .dup2(src, dst)
            .ok_or(IolError::NotOpen { fd: src })?;
        if let Some(old) = displaced {
            let object = old.lock().unwrap().object;
            self.finalize_close(object);
        }
        Ok(dst)
    }

    /// Closes a descriptor (`close(2)`). When the last descriptor for a
    /// pipe write end disappears (across *all* processes), the pipe is
    /// closed for real and readers see EOF; a socket's last close tears
    /// the connection down.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open (double close).
    pub(crate) fn op_close_fd(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        let removed = self
            .fds
            .table(pid)
            .close(fd)
            .ok_or(IolError::NotOpen { fd })?;
        let object = removed.lock().unwrap().object;
        self.finalize_close(object);
        Ok(())
    }

    /// Applies last-reference close semantics after a descriptor for
    /// `object` was removed or displaced.
    ///
    /// Files have no last-close action, so they skip the registry scan
    /// entirely — the common case (a server's 10k-file open set) closes
    /// in O(log n).
    fn finalize_close(&mut self, object: FdObject) {
        if matches!(object, FdObject::File(_)) {
            return;
        }
        if self.fds.object_referenced(object) {
            return;
        }
        match object {
            FdObject::PipeWrite(id) => self.op_pipe_close(id),
            FdObject::PipeRead(id) => {
                // The last reader hung up: writers get EPIPE from now
                // on instead of filling a pipe nobody drains.
                if let Some(slot) = self.pipes.get_mut(&id) {
                    slot.reader_gone = true;
                }
            }
            FdObject::Socket(id) => {
                if let Some(sock) = self.sockets.get_mut(&id) {
                    sock.closed = true;
                    sock.inbound.clear();
                }
            }
            FdObject::File(_) => unreachable!("files returned early"),
        }
    }

    /// Repositions a file descriptor (`lseek(2)`), resolving
    /// [`Whence::End`] against the file's metadata. Returns the new
    /// absolute offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors,
    /// [`IolError::BadFdKind`] for pipes/sockets (ESPIPE), and
    /// [`IolError::InvalidSeek`] when the resolved position is negative.
    pub(crate) fn op_lseek(
        &mut self,
        pid: Pid,
        fd: Fd,
        offset: i64,
        whence: Whence,
        fx: &mut Vec<Effect>,
    ) -> IoResult<u64> {
        let desc = self.resolve_fd(pid, fd)?;
        let mut open = desc.lock().unwrap();
        let FdObject::File(file) = open.object else {
            return Err(IolError::BadFdKind {
                fd,
                operation: "lseek",
            });
        };
        let base: u64 = match whence {
            Whence::Set => 0,
            Whence::Cur => open.pos,
            Whence::End => self.store.len(file).unwrap_or(0),
        };
        let target = base as i128 + offset as i128;
        if target < 0 {
            return Err(IolError::InvalidSeek { requested: offset });
        }
        open.pos = target as u64;
        fx.push(Effect::Syscalls(1));
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((open.pos, out))
    }

    // ---- descriptor I/O --------------------------------------------------

    /// `IOL_read` on a descriptor: files read at (and advance) the
    /// shared offset; pipe read-ends drain the pipe; sockets drain the
    /// inbound queue. Short (even empty) reads at end-of-stream are
    /// part of the contract.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors;
    /// [`IolError::BadFdKind`] for write-only objects;
    /// [`IolError::WouldBlock`] when a pipe/socket is empty but its
    /// writer is still open; [`IolError::PermissionDenied`] when an
    /// ACL'd pipe refuses the reader's domain.
    pub(crate) fn op_iol_read_fd(
        &mut self,
        pid: Pid,
        fd: Fd,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.lock().unwrap().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.lock().unwrap().pos;
                let (agg, out) = self.op_read_file_at(pid, file, pos, len, fx);
                desc.lock().unwrap().pos = pos + agg.len();
                Ok((agg, out))
            }
            FdObject::PipeRead(pipe) => {
                let (got, out) = self.op_pipe_read(pid, pipe, len, fx)?;
                match got {
                    Some(agg) => Ok((agg, out)),
                    // Empty + closed is EOF (an empty read); empty +
                    // open writer is EAGAIN, charged like any trap.
                    None if self.pipes[&pipe].pipe.is_closed() => Ok((Aggregate::empty(), out)),
                    None => Err(IolError::WouldBlock { outcome: out }),
                }
            }
            FdObject::Socket(id) => self.op_socket_read(pid, fd, id, len, fx),
            FdObject::PipeWrite(_) => Err(IolError::BadFdKind {
                fd,
                operation: "read",
            }),
        }
    }

    /// `IOL_write` on a descriptor: files replace at (and advance) the
    /// shared offset; pipe write-ends enqueue; sockets run the TCP send
    /// path (zero-copy with checksum caching, or copying — the
    /// descriptor doesn't care, §3.4). Returns bytes accepted; socket
    /// writes carry their `SendOutcome` in `outcome.net`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual;
    /// [`IolError::Closed`] when writing a closed pipe or socket;
    /// [`IolError::WouldBlock`] when a full pipe accepts nothing;
    /// [`IolError::ShortIo`] (carrying the partial count and its
    /// charge) when a pipe fills mid-write.
    pub(crate) fn op_iol_write_fd(
        &mut self,
        pid: Pid,
        fd: Fd,
        agg: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoResult<u64> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.lock().unwrap().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.lock().unwrap().pos;
                let out = self.op_write_file_at(pid, file, pos, agg, fx);
                desc.lock().unwrap().pos = pos + agg.len();
                Ok((agg.len(), out))
            }
            FdObject::PipeWrite(pipe) => {
                let slot = &self.pipes[&pipe];
                if slot.pipe.is_closed() || slot.reader_gone {
                    // Writing with no write end left, or no reader left
                    // to ever drain it, is EPIPE.
                    return Err(IolError::Closed);
                }
                let (accepted, out) = self.op_pipe_write(pid, pipe, agg, fx);
                if accepted == agg.len() {
                    Ok((accepted, out))
                } else if accepted == 0 {
                    Err(IolError::WouldBlock { outcome: out })
                } else {
                    Err(IolError::ShortIo {
                        done: accepted,
                        outcome: out,
                    })
                }
            }
            FdObject::Socket(id) => {
                let sock = self.sockets.get_mut(&id).expect("registered socket");
                if sock.write_dead() {
                    return Err(IolError::Closed);
                }
                // Nonblocking sockets honor the Tss send-buffer bound:
                // accept only what fits, with `ShortIo` carrying the
                // partial progress (the driver drains the buffer as the
                // simulated wire ACKs it). Blocking sockets model the
                // synchronous write-until-drained path and accept
                // everything, as before.
                let len = agg.len();
                let space = sock.send_space();
                fx.push(Effect::Syscalls(1));
                let out_base = IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                };
                if space == 0 {
                    return Err(IolError::WouldBlock { outcome: out_base });
                }
                let accept = len.min(space);
                let window = if accept == len {
                    None
                } else {
                    Some(agg.range(0, accept).expect("clamped send window"))
                };
                let sock = self.sockets.get_mut(&id).expect("registered socket");
                let send = sock.conn.send(window.as_ref().unwrap_or(agg), &mut self.cksum);
                if sock.nonblocking {
                    sock.sndbuf_used += accept;
                }
                fx.push(Effect::BytesChecksummed(send.csum_bytes_computed));
                fx.push(Effect::BytesChecksumCached(send.csum_bytes_cached));
                fx.push(Effect::BytesCopied(send.bytes_copied));
                let out = IoOutcome {
                    net: Some(send),
                    ..out_base
                };
                if accept == len {
                    Ok((accept, out))
                } else {
                    Err(IolError::ShortIo {
                        done: accept,
                        outcome: out,
                    })
                }
            }
            FdObject::PipeRead(_) => Err(IolError::BadFdKind {
                fd,
                operation: "write",
            }),
        }
    }

    /// Positional `IOL_read` (`pread(2)`): reads a file descriptor at
    /// an explicit offset without moving the shared offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] (pipes and
    /// sockets have no positions).
    pub(crate) fn op_iol_pread(
        &mut self,
        pid: Pid,
        fd: Fd,
        offset: u64,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Aggregate> {
        let file = self.resolve_file(pid, fd, "positional file access")?;
        Ok(self.op_read_file_at(pid, file, offset, len, fx))
    }

    /// Positional `IOL_write` (`pwrite(2)`).
    ///
    /// # Errors
    ///
    /// As [`KernelState::op_iol_pread`].
    pub(crate) fn op_iol_pwrite(
        &mut self,
        pid: Pid,
        fd: Fd,
        offset: u64,
        agg: &Aggregate,
        fx: &mut Vec<Effect>,
    ) -> IoResult<u64> {
        let file = self.resolve_file(pid, fd, "positional file access")?;
        let out = self.op_write_file_at(pid, file, offset, agg, fx);
        Ok((agg.len(), out))
    }

    /// Backward-compatible copying read on a file descriptor, advancing
    /// the shared offset (§4.2's copy-in/copy-out POSIX veneer).
    ///
    /// # Errors
    ///
    /// As [`KernelState::op_iol_pread`] — pipes carry copy semantics
    /// through their mode instead.
    pub(crate) fn op_posix_read_fd(
        &mut self,
        pid: Pid,
        fd: Fd,
        len: u64,
        fx: &mut Vec<Effect>,
    ) -> IoResult<Vec<u8>> {
        let file = self.resolve_file(pid, fd, "posix_read")?;
        let desc = self.resolve_fd(pid, fd)?;
        let pos = desc.lock().unwrap().pos;
        let (bytes, out) = self.op_posix_file_read(pid, file, pos, len, fx);
        desc.lock().unwrap().pos = pos + bytes.len() as u64;
        Ok((bytes, out))
    }

    /// Backward-compatible copying write on a file descriptor,
    /// advancing the shared offset.
    ///
    /// # Errors
    ///
    /// As [`KernelState::op_posix_read_fd`].
    pub(crate) fn op_posix_write_fd(
        &mut self,
        pid: Pid,
        fd: Fd,
        data: &[u8],
        fx: &mut Vec<Effect>,
    ) -> IoResult<u64> {
        let file = self.resolve_file(pid, fd, "posix_write")?;
        let desc = self.resolve_fd(pid, fd)?;
        let pos = desc.lock().unwrap().pos;
        let out = self.op_posix_file_write(pid, file, pos, data, fx);
        desc.lock().unwrap().pos = pos + data.len() as u64;
        Ok((data.len() as u64, out))
    }

    /// Maps the whole file behind a descriptor (§3.8 `mmap`).
    ///
    /// # Errors
    ///
    /// As [`KernelState::op_iol_pread`].
    pub(crate) fn op_mmap_fd(&mut self, pid: Pid, fd: Fd, fx: &mut Vec<Effect>) -> IoResult<MmapView> {
        let file = self.resolve_file(pid, fd, "mmap")?;
        Ok(self.op_file_mmap(pid, file, fx))
    }
}

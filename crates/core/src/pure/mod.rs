//! The functional core of the kernel: pure state, commands, effects.
//!
//! # Architecture map (PR 6)
//!
//! The kernel is split into a **functional core** (this module) and an
//! **imperative shell** ([`crate::kernel::Kernel`]):
//!
//! ```text
//!            applications / drivers / benches
//!                         │
//!                         ▼
//!   ┌──────────────────────────────────────────────┐
//!   │ imperative shell  crate::kernel::Kernel      │  journals Commands,
//!   │   • public syscall surface (unchanged)       │  absorbs Effects into
//!   │   • Metrics, Journal, reused effect buffer   │  Metrics
//!   └──────────────┬───────────────────────────────┘
//!                  │  state.op(args, &mut fx)
//!                  ▼
//!   ┌──────────────────────────────────────────────┐
//!   │ functional core  crate::pure                 │
//!   │   state.rs    KernelState: every byte of     │
//!   │               kernel state as a value        │
//!   │   ids.rs      IdAlloc: all id counters       │
//!   │   command.rs  Command + Journal              │
//!   │   effect.rs   Effect: side effects as data   │
//!   │   apply.rs    step / apply / replay          │
//!   │   ops_file.rs file + cache + VM ops          │
//!   │   ops_pipe.rs pipe + console ops             │
//!   │   ops_socket.rs TCP socket ops               │
//!   │   ops_fd.rs   descriptor surface + poll      │
//!   └──────────────────────────────────────────────┘
//! ```
//!
//! The contract: every mutation of [`KernelState`] is expressible as a
//! [`Command`]; [`apply`] (value semantics) and [`step`] (in-place, the
//! shell's and [`replay`]'s engine) are **deterministic** — no I/O, no
//! wall-clock time, no randomness. Observable side effects (CPU
//! charges, copies, checksums, page mappings, disk traffic) leave the
//! core only as [`Effect`] values; the shell folds them into
//! [`crate::Metrics`]. Recording the command stream into a [`Journal`]
//! and folding [`replay`] over it from the initial state reproduces the
//! final [`KernelState::state_hash`] and metrics bit-for-bit.
//!
//! Purity is enforced in CI: nothing under `crates/core/src/pure/` may
//! reach the host — the standard library's io/time/fs modules and any
//! random-number source are banned by `clippy.toml` (disallowed types
//! and methods) plus a grep gate in the workflow.

mod apply;
mod command;
mod effect;
mod ids;
mod ops_fd;
mod ops_file;
mod ops_pipe;
mod ops_socket;
mod state;

pub use apply::{apply, replay, step, Reply};
pub use command::{Command, Journal};
pub use effect::Effect;
pub use ids::{ConnId, IdAlloc, PipeId};
pub use state::{IoOutcome, KernelState, MappedFileCache, PipeEnd};

//! Commands: every kernel mutation as a value, plus the journal that
//! records them for deterministic replay.

use iolite_buf::{Acl, Aggregate, DomainId};
use iolite_fs::{CacheKey, FileId};
use iolite_ipc::PipeMode;
use iolite_net::BufferMode;
use iolite_sim::SimTime;
use iolite_vm::MemAccount;

use super::ids::PipeId;
use crate::cost::{Charge, CostCategory};
use crate::fd::{Fd, FdObject, Whence};
use crate::poll::PollFd;
use crate::process::Pid;

/// One validated kernel mutation. Applying a command to a
/// [`super::KernelState`] (via [`super::step`] or [`super::apply`]) is
/// the *only* way state changes; the variants mirror the shell's public
/// surface one-to-one.
///
/// Commands own their inputs (paths as `String`s, payloads as
/// [`Aggregate`]s — cheap reference-counted clones), so a recorded
/// [`Journal`] is self-contained and can be replayed against a fresh
/// initial state.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Field meanings mirror the identically-named shell methods.
pub enum Command {
    // -- processes, pools, clock --
    Spawn { name: String },
    CreatePool { acl: Acl },
    Advance { t: SimTime },
    ResetClock,
    Charge { category: CostCategory, charge: Charge },
    ContextSwitch { n: u64 },

    // -- file system and cache --
    CreateFile { name: String, data: Vec<u8> },
    CreateSyntheticFile { name: String, len: u64, seed: u64 },
    Lookup { name: String },
    RebalanceCache,
    VmPressure { other_pages: u64 },
    ReadFileAt { pid: Pid, file: FileId, offset: u64, len: u64 },
    WriteFileAt { pid: Pid, file: FileId, offset: u64, agg: Aggregate },
    PosixFileRead { pid: Pid, file: FileId, offset: u64, len: u64 },
    PosixFileWrite { pid: Pid, file: FileId, offset: u64, data: Vec<u8> },
    FileMmap { pid: Pid, file: FileId },
    CachePin { key: CacheKey },
    CacheUnpin { key: CacheKey },
    CacheInstall { file: FileId, data: Vec<u8> },
    CacheInvalidate { key: CacheKey },
    PutInstall { pid: Pid, file: FileId, agg: Aggregate },
    WriteBack { max_bytes: u64 },
    NvmDemote { max_bytes: u64 },
    SetWriteback { cfg: iolite_fs::WritebackConfig },
    MappedFileTouch { file: FileId },
    MemReserve { account: MemAccount, bytes: u64 },
    MemRelease { account: MemAccount, bytes: u64 },

    // -- window transfers --
    TransferTo { agg: Aggregate, domain: DomainId },
    TransferWithAcl { agg: Aggregate, domain: DomainId, acl: Acl },

    // -- pipes --
    PipeCreate { mode: PipeMode, acl: Option<Acl> },
    PipeWrite { pid: Pid, pipe: PipeId, agg: Aggregate },
    PipeRead { pid: Pid, pipe: PipeId, max: u64 },
    PipeClose { pipe: PipeId },

    // -- sockets --
    SocketCreate { pid: Pid, mode: BufferMode, mss: usize, tss: usize },
    SocketDeliver { pid: Pid, fd: Fd, payload: Aggregate },
    SocketSendAccounted { pid: Pid, fd: Fd, len: u64 },
    SocketTransmitSegments { pid: Pid, fd: Fd, payload: Aggregate },
    SetNonblocking { pid: Pid, fd: Fd, nonblocking: bool },
    SocketDrain { pid: Pid, fd: Fd, max: u64 },
    SocketPeerClose { pid: Pid, fd: Fd },
    SetChecksumCache { enabled: bool },

    // -- descriptors --
    Open { pid: Pid, path: String },
    OpenFile { pid: Pid, file: FileId },
    PipeFds { pid: Pid, mode: PipeMode },
    PipeBetween { writer: Pid, reader: Pid, mode: PipeMode, acl: Option<Acl> },
    InstallFd { pid: Pid, object: FdObject },
    InstallFdAt { pid: Pid, at: Fd, object: FdObject },
    DupFd { pid: Pid, fd: Fd },
    Dup2Fd { pid: Pid, src: Fd, dst: Fd },
    CloseFd { pid: Pid, fd: Fd },
    Lseek { pid: Pid, fd: Fd, offset: i64, whence: Whence },
    Poll { pid: Pid, fds: Vec<PollFd> },

    // -- descriptor I/O --
    IolReadFd { pid: Pid, fd: Fd, len: u64 },
    IolWriteFd { pid: Pid, fd: Fd, agg: Aggregate },
    IolPread { pid: Pid, fd: Fd, offset: u64, len: u64 },
    IolPwrite { pid: Pid, fd: Fd, offset: u64, agg: Aggregate },
    PosixReadFd { pid: Pid, fd: Fd, len: u64 },
    PosixWriteFd { pid: Pid, fd: Fd, data: Vec<u8> },
    MmapFd { pid: Pid, fd: Fd },

    // -- stdio console --
    FeedStdin { pid: Pid, data: Aggregate },
    ReadStdout { pid: Pid, max: u64 },
    ReadStderr { pid: Pid, max: u64 },
}

/// A recorded command stream: the deterministic-replay artifact.
///
/// The shell appends every executed command (including ones that
/// returned an error — a rejected `open` still warmed the metadata
/// cache, so replay must repeat it). [`super::replay`] folds
/// [`super::step`] over the stream to reconstruct the final state and
/// metrics.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    commands: Vec<Command>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends a command.
    pub fn push(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// The recorded commands, in execution order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

//! The unified, fallible result type of the descriptor-based IOL API.
//!
//! Every I/O operation on a descriptor returns [`IoResult<T>`]: on
//! success, the value plus the [`IoOutcome`] (simulated CPU charge,
//! cache/disk/mapping accounting); on failure, a precise [`IolError`].
//! The errors map one-to-one onto the POSIX `errno`s a real IO-Lite
//! kernel would return through the unchanged "file-descriptor-related
//! UNIX system calls" of §3.4:
//!
//! | [`IolError`] | errno analog | raised when |
//! |---|---|---|
//! | [`NotOpen`](IolError::NotOpen) | `EBADF` | the descriptor is not open in the caller's table |
//! | [`BadFdKind`](IolError::BadFdKind) | `ESPIPE`/`ENOTSOCK`/`EBADF` | the object cannot perform the operation (e.g. `lseek` on a pipe, read on a write end) |
//! | [`PermissionDenied`](IolError::PermissionDenied) | `EACCES` | the caller's domain is not on the governing ACL (§3.3) |
//! | [`NotFound`](IolError::NotFound) | `ENOENT` | a path fails to resolve at `open` |
//! | [`Closed`](IolError::Closed) | `EPIPE` | writing an object whose peer hung up |
//! | [`WouldBlock`](IolError::WouldBlock) | `EAGAIN` | the operation made no progress and must wait for the peer (carries the trap's charge) |
//! | [`InvalidSeek`](IolError::InvalidSeek) | `EINVAL` | the resolved seek position is negative |
//! | [`ShortIo`](IolError::ShortIo) | partial `write(2)` | the object filled mid-write; partial progress is carried |
//!
//! `ShortIo` deserves a note: a pipe that accepts *some* bytes before
//! filling reports the accepted count and the charge for the work done,
//! exactly like a short POSIX `write`. Producer/consumer loops treat it
//! as flow control via [`short_ok`].

use std::fmt;

use iolite_buf::DomainId;

use crate::fd::Fd;
use crate::kernel::IoOutcome;

/// The error half of the descriptor API.
///
/// Carries enough context to act on: the offending descriptor, the
/// denied domain, or the partial progress of a short write.
#[derive(Debug, Clone, Copy)]
pub enum IolError {
    /// The descriptor is not open in the calling process's table
    /// (`EBADF`): never opened, or closed then used.
    NotOpen {
        /// The descriptor that failed to resolve.
        fd: Fd,
    },
    /// The descriptor is open but refers to an object that cannot
    /// perform this operation (reading a pipe's write end, seeking a
    /// socket, mmapping a pipe...).
    BadFdKind {
        /// The descriptor.
        fd: Fd,
        /// The operation that was refused (diagnostic).
        operation: &'static str,
    },
    /// The caller's protection domain is not on the ACL governing the
    /// data (§3.3).
    PermissionDenied {
        /// The domain that was denied.
        domain: DomainId,
    },
    /// A path failed to resolve (`ENOENT`).
    NotFound,
    /// The object's peer is gone: writing a closed pipe or socket
    /// (`EPIPE` analog — fail loudly instead of signalling).
    Closed,
    /// No progress is possible without blocking (`EAGAIN`): reading an
    /// empty pipe whose writer is still open, or writing a full one.
    /// The blocked call still trapped into the kernel, so its
    /// accounting rides along — pollers bill `outcome.charge` exactly
    /// like a successful call's.
    WouldBlock {
        /// Accounting for the refused attempt (the syscall charge).
        outcome: IoOutcome,
    },
    /// The resolved seek position would be negative (`EINVAL`).
    InvalidSeek {
        /// The out-of-range position that was requested.
        requested: i64,
    },
    /// The write made partial progress before the object filled: `done`
    /// bytes were accepted and `outcome` charges for them. The caller
    /// advances past `done`, lets the consumer drain, and retries — the
    /// §4.4 producer/consumer fill/drain round.
    ShortIo {
        /// Bytes accepted before the object filled.
        done: u64,
        /// Accounting for the partial work (charge, copies, mappings).
        outcome: IoOutcome,
    },
}

impl PartialEq for IolError {
    fn eq(&self, other: &Self) -> bool {
        use IolError::*;
        match (self, other) {
            (NotOpen { fd: a }, NotOpen { fd: b }) => a == b,
            (
                BadFdKind {
                    fd: a,
                    operation: oa,
                },
                BadFdKind {
                    fd: b,
                    operation: ob,
                },
            ) => a == b && oa == ob,
            (PermissionDenied { domain: a }, PermissionDenied { domain: b }) => a == b,
            (NotFound, NotFound) | (Closed, Closed) => true,
            (InvalidSeek { requested: a }, InvalidSeek { requested: b }) => a == b,
            // Outcomes are accounting, not identity.
            (WouldBlock { .. }, WouldBlock { .. }) => true,
            (ShortIo { done: a, .. }, ShortIo { done: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for IolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IolError::NotOpen { fd } => write!(f, "fd {} is not open (EBADF)", fd.0),
            IolError::BadFdKind { fd, operation } => {
                write!(f, "fd {} does not support {operation}", fd.0)
            }
            IolError::PermissionDenied { domain } => {
                write!(f, "domain {domain} is not on the ACL (EACCES)")
            }
            IolError::NotFound => write!(f, "no such file (ENOENT)"),
            IolError::Closed => write!(f, "peer closed (EPIPE)"),
            IolError::WouldBlock { .. } => write!(f, "operation would block (EAGAIN)"),
            IolError::InvalidSeek { requested } => {
                write!(f, "seek to negative position {requested} (EINVAL)")
            }
            IolError::ShortIo { done, .. } => {
                write!(f, "short write: {done} bytes accepted before the object filled")
            }
        }
    }
}

impl std::error::Error for IolError {}

/// The uniform return type of every descriptor-based IOL operation:
/// the operation's value plus its [`IoOutcome`] accounting, or a
/// precise [`IolError`].
pub type IoResult<T> = Result<(T, IoOutcome), IolError>;

/// Folds [`IolError::ShortIo`] partial progress into the success value.
///
/// Producer loops that alternate with their consumer (the §4.4
/// fill/drain round structure) treat a short write as normal flow
/// control: take the accepted count and its charge, let the reader
/// drain, continue. All other errors pass through.
///
/// # Examples
///
/// ```
/// use iolite_core::error::{short_ok, IolError, IoResult};
/// use iolite_core::IoOutcome;
///
/// let short: IoResult<u64> = Err(IolError::ShortIo {
///     done: 10,
///     outcome: IoOutcome::default(),
/// });
/// assert_eq!(short_ok(short).unwrap().0, 10);
/// let blocked = IolError::WouldBlock { outcome: IoOutcome::default() };
/// assert_eq!(short_ok(Err(blocked)), Err(blocked));
/// ```
pub fn short_ok(res: IoResult<u64>) -> IoResult<u64> {
    match res {
        Err(IolError::ShortIo { done, outcome }) => Ok((done, outcome)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_outcomes() {
        let a = IolError::ShortIo {
            done: 5,
            outcome: IoOutcome::default(),
        };
        let b = IolError::ShortIo {
            done: 5,
            outcome: IoOutcome {
                cache_hit: true,
                ..IoOutcome::default()
            },
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            IolError::ShortIo {
                done: 6,
                outcome: IoOutcome::default()
            }
        );
        assert_ne!(
            IolError::Closed,
            IolError::WouldBlock {
                outcome: IoOutcome::default()
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let msg = IolError::NotOpen { fd: Fd(7) }.to_string();
        assert!(msg.contains('7') && msg.contains("EBADF"));
        let blocked = IolError::WouldBlock {
            outcome: IoOutcome::default(),
        };
        assert!(blocked.to_string().contains("EAGAIN"));
    }

    #[test]
    fn short_ok_unwraps_progress_only() {
        assert_eq!(
            short_ok(Err(IolError::ShortIo {
                done: 3,
                outcome: IoOutcome::default()
            }))
            .unwrap()
            .0,
            3
        );
        assert!(short_ok(Err(IolError::Closed)).is_err());
        assert_eq!(short_ok(Ok((9, IoOutcome::default()))).unwrap().0, 9);
    }
}

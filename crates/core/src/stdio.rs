//! A stdio-like buffered I/O library over file descriptors (§3.4, §5.8).
//!
//! "Language-specific runtime I/O libraries, like the ANSI C stdio
//! library, can be converted to use the new API internally. Doing so
//! reduces data copying without changing the library's API." The gcc
//! experiment (§5.8) relinks the compiler chain against exactly such a
//! library.
//!
//! The streams wrap *descriptors*, exactly like `FILE*` wraps an fd:
//! a process's [`Fd::STDOUT`]/[`Fd::STDIN`] as installed at
//! [`Kernel::spawn`], a pipe end re-plumbed there with
//! [`Kernel::dup2_fd`], or any other descriptor. The library neither
//! knows nor cares what kind of object sits behind the number.
//!
//! The copy structure is faithful:
//!
//! * **POSIX mode**: `fwrite` copies into the stdio buffer; flushing
//!   copies into the kernel pipe; the reader copies out of the pipe into
//!   its stdio buffer and once more to the caller. (Four copies per
//!   byte across a pipe.)
//! * **IO-Lite mode**: the stdio buffer *is* an IO-Lite allocation;
//!   `fwrite` copies into it once, flushing passes it by reference, and
//!   `fread` copies from the received aggregate to the caller. The
//!   interprocess copies are gone, but — as the paper notes for gcc —
//!   "data copying between the applications and the stdio library still
//!   exists."

use iolite_buf::{Aggregate, BufferPool};

use crate::cost::CostCategory;
use crate::error::{short_ok, IolError};
use crate::fd::Fd;
use crate::kernel::Kernel;
use crate::process::Pid;

/// Which API the stdio implementation uses internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StdioMode {
    /// Conventional `read`/`write` on the pipe.
    Posix,
    /// `IOL_read`/`IOL_write`: buffers pass by reference.
    IoLite,
}

/// Default stdio buffer size (BUFSIZ analog; 64KB keeps pipe rounds
/// aligned with the kernel buffer).
pub const STDIO_BUF: usize = 64 * 1024;

/// A buffered output stream over a writable descriptor (`FILE*` opened
/// for writing).
pub struct StdioOut {
    pid: Pid,
    fd: Fd,
    mode: StdioMode,
    pool: BufferPool,
    buffer: Vec<u8>,
}

impl StdioOut {
    /// Wraps the writable descriptor `fd` of process `pid` (typically
    /// [`Fd::STDOUT`], or a pipe's write end).
    pub fn new(kernel: &Kernel, pid: Pid, fd: Fd, mode: StdioMode) -> Self {
        StdioOut {
            pid,
            fd,
            mode,
            pool: kernel.process(pid).pool().clone(),
            buffer: Vec::with_capacity(STDIO_BUF),
        }
    }

    /// Buffered write: copies into the stdio buffer (this copy exists in
    /// both modes), flushing full buffers to the descriptor.
    ///
    /// Returns bytes not yet accepted by the object on flush (pipe
    /// full): the caller must let the reader run (a context switch,
    /// charged by the run loop) and call [`StdioOut::flush`] again.
    /// Returns 0 when everything is buffered or flushed.
    pub fn fwrite(&mut self, kernel: &mut Kernel, data: &[u8]) -> u64 {
        // The application→library copy.
        kernel.charge(
            CostCategory::Copy,
            kernel.cost.cached_copy(data.len() as u64),
        );
        kernel.metrics.bytes_copied += data.len() as u64;
        self.buffer.extend_from_slice(data);
        if self.buffer.len() >= STDIO_BUF {
            self.flush(kernel)
        } else {
            0
        }
    }

    /// Flushes the buffer to the descriptor; returns bytes that did not
    /// fit (short writes and `WouldBlock` are flow control, not fatal).
    ///
    /// # Panics
    ///
    /// Panics on `EPIPE` — writing a stream whose reader is gone, the
    /// moral equivalent of an unhandled `SIGPIPE`.
    pub fn flush(&mut self, kernel: &mut Kernel) -> u64 {
        if self.buffer.is_empty() {
            return 0;
        }
        let agg = Aggregate::from_bytes(&self.pool, &self.buffer);
        let (accepted, out) = match short_ok(kernel.iol_write_fd(self.pid, self.fd, &agg)) {
            Ok(pair) => pair,
            // A full pipe still cost the trap: bill the outcome.
            Err(IolError::WouldBlock { outcome }) => (0, outcome),
            Err(e) => panic!("stdio flush failed: {e}"),
        };
        kernel.charge(CostCategory::Syscall, out.charge);
        let leftover = self.buffer.len() as u64 - accepted;
        self.buffer.drain(..accepted as usize);
        let _ = self.mode; // Copy structure is carried by the pipe mode.
        leftover
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

/// A buffered input stream over a readable descriptor (`FILE*` opened
/// for reading).
pub struct StdioIn {
    pid: Pid,
    fd: Fd,
    mode: StdioMode,
    pending: Aggregate,
}

impl StdioIn {
    /// Wraps the readable descriptor `fd` of process `pid` (typically
    /// [`Fd::STDIN`], or a pipe's read end).
    pub fn new(pid: Pid, fd: Fd, mode: StdioMode) -> Self {
        StdioIn {
            pid,
            fd,
            mode,
            pending: Aggregate::empty(),
        }
    }

    /// Pulls the next buffer-full from the descriptor into `pending`.
    fn fill(&mut self, kernel: &mut Kernel) {
        if !self.pending.is_empty() {
            return;
        }
        match kernel.iol_read_fd(self.pid, self.fd, STDIO_BUF as u64) {
            Ok((agg, out)) => {
                kernel.charge(CostCategory::Syscall, out.charge);
                self.pending = agg;
            }
            // Empty-and-open: the producer must run first — but the
            // poll itself still trapped, so its charge lands.
            Err(IolError::WouldBlock { outcome }) => {
                kernel.charge(CostCategory::Syscall, outcome.charge);
            }
            Err(e) => panic!("stdio fill failed: {e}"),
        }
    }

    /// Buffered read: fills from the descriptor as needed, then copies
    /// up to `dst.len()` bytes to the caller (the library→application
    /// copy, present in both modes). Returns bytes delivered (0 = would
    /// block / EOF).
    pub fn fread(&mut self, kernel: &mut Kernel, dst: &mut [u8]) -> usize {
        self.fill(kernel);
        let take = (dst.len() as u64).min(self.pending.len());
        if take == 0 {
            return 0;
        }
        self.pending.copy_to(0, &mut dst[..take as usize]);
        self.pending.advance(take);
        kernel.charge(CostCategory::Copy, kernel.cost.cached_copy(take));
        kernel.metrics.bytes_copied += take;
        let _ = self.mode;
        take as usize
    }

    /// Reads everything currently available without the caller copy —
    /// only meaningful for IO-Lite-aware applications that can consume
    /// aggregates directly (the `wc` conversion of §5.8).
    pub fn fread_agg(&mut self, kernel: &mut Kernel) -> Option<Aggregate> {
        self.fill(kernel);
        if self.pending.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.pending))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use iolite_ipc::PipeMode;

    /// `w | r`: a pipe re-plumbed onto the writer's stdout and the
    /// reader's stdin, exactly as a shell would.
    fn setup(mode: StdioMode) -> (Kernel, Pid, Pid) {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let w = k.spawn("writer");
        let r = k.spawn("reader");
        let pipe_mode = match mode {
            StdioMode::Posix => PipeMode::Copy,
            StdioMode::IoLite => PipeMode::ZeroCopy,
        };
        let (wfd, rfd) = k.pipe_between(w, r, pipe_mode);
        k.dup2_fd(w, wfd, Fd::STDOUT).unwrap();
        k.dup2_fd(r, rfd, Fd::STDIN).unwrap();
        (k, w, r)
    }

    #[test]
    fn data_round_trips_both_modes() {
        for mode in [StdioMode::Posix, StdioMode::IoLite] {
            let (mut k, w, r) = setup(mode);
            let mut out = StdioOut::new(&k, w, Fd::STDOUT, mode);
            let mut inp = StdioIn::new(r, Fd::STDIN, mode);
            let message = b"buffered hello across the pipe";
            out.fwrite(&mut k, message);
            assert_eq!(out.buffered(), message.len(), "small write stays buffered");
            out.flush(&mut k);
            let mut got = vec![0u8; message.len()];
            assert_eq!(inp.fread(&mut k, &mut got), message.len());
            assert_eq!(&got, message, "{mode:?}");
        }
    }

    #[test]
    fn large_write_flushes_automatically() {
        let (mut k, w, r) = setup(StdioMode::IoLite);
        let mut out = StdioOut::new(&k, w, Fd::STDOUT, StdioMode::IoLite);
        let mut inp = StdioIn::new(r, Fd::STDIN, StdioMode::IoLite);
        let data = vec![7u8; STDIO_BUF + 100];
        out.fwrite(&mut k, &data);
        // The pipe (64KB) is now full; the tail stays buffered until the
        // reader drains — the producer/consumer round structure.
        assert_eq!(out.buffered(), 100);
        let mut received = Vec::new();
        let mut chunk = vec![0u8; 8 * 1024];
        loop {
            let n = inp.fread(&mut k, &mut chunk);
            if n == 0 {
                if out.flush(&mut k) == 0 && out.buffered() == 0 {
                    break;
                }
                continue;
            }
            received.extend_from_slice(&chunk[..n]);
        }
        // Drain whatever the final flush queued.
        loop {
            let n = inp.fread(&mut k, &mut chunk);
            if n == 0 {
                break;
            }
            received.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(received.len(), data.len());
        assert_eq!(received, data);
    }

    #[test]
    fn iolite_mode_halves_copied_bytes() {
        let count_copies = |mode: StdioMode| {
            let (mut k, w, r) = setup(mode);
            let mut out = StdioOut::new(&k, w, Fd::STDOUT, mode);
            let mut inp = StdioIn::new(r, Fd::STDIN, mode);
            let data = vec![1u8; 32 * 1024];
            out.fwrite(&mut k, &data);
            out.flush(&mut k);
            let mut sink = vec![0u8; 32 * 1024];
            let mut total = 0;
            while total < data.len() {
                let n = inp.fread(&mut k, &mut sink);
                if n == 0 {
                    break;
                }
                total += n;
            }
            k.metrics.bytes_copied
        };
        let posix = count_copies(StdioMode::Posix);
        let iolite = count_copies(StdioMode::IoLite);
        // POSIX: app->stdio, stdio->pipe, pipe->reader, reader->app = 4n.
        // IO-Lite: app->stdio, reader->app = 2n ("data copying between
        // the applications and the stdio library still exists").
        assert_eq!(posix, 4 * 32 * 1024);
        assert_eq!(iolite, 2 * 32 * 1024);
    }

    #[test]
    fn aggregate_read_skips_the_caller_copy() {
        let (mut k, w, r) = setup(StdioMode::IoLite);
        let mut out = StdioOut::new(&k, w, Fd::STDOUT, StdioMode::IoLite);
        let mut inp = StdioIn::new(r, Fd::STDIN, StdioMode::IoLite);
        out.fwrite(&mut k, b"zero-copy consumer");
        out.flush(&mut k);
        let before = k.metrics.bytes_copied;
        let agg = inp.fread_agg(&mut k).unwrap();
        assert_eq!(agg.to_vec(), b"zero-copy consumer");
        assert_eq!(k.metrics.bytes_copied, before, "no extra copy");
    }

    #[test]
    fn streams_work_on_the_spawn_installed_console() {
        // No plumbing at all: write the process's own stdout, harness
        // reads the console.
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let p = k.spawn("hello");
        let mut out = StdioOut::new(&k, p, Fd::STDOUT, StdioMode::IoLite);
        out.fwrite(&mut k, b"hello, world\n");
        out.flush(&mut k);
        let (got, _) = k.read_stdout(p, u64::MAX).unwrap();
        assert_eq!(got.to_vec(), b"hello, world\n");
    }
}

//! The kernel: composition of all IO-Lite subsystems plus the system
//! call surface (§3.4, §4).
//!
//! Data-plane operations are performed for real (bytes move through the
//! real buffer, cache, checksum and pipe structures); each call also
//! returns the simulated CPU [`Charge`] it would cost on the paper's
//! testbed, and disk operations return their device time separately so
//! event-driven callers can overlap them.

use std::collections::BTreeMap;

use iolite_buf::{Acl, Aggregate, BufferPool, ChunkId, DomainId, PoolId};
use iolite_fs::{
    CacheKey, DiskModel, FileContent, FileId, FileStore, MetadataCache, Policy, UnifiedCache,
};
use iolite_ipc::{Pipe, PipeMode};
use iolite_net::{ChecksumCache, PacketFilter};
use iolite_sim::SimTime;
use iolite_vm::{IoLiteWindow, MemAccount, MmapView, PageoutDaemon, PhysMemory};

use crate::cost::{Charge, CostCategory, CostModel};
use crate::fd::{Fd, FdObject, FdRegistry};
use crate::metrics::Metrics;
use crate::process::{Pid, Process};

/// A bounded LRU set of mapped files: Flash's mapped-file cache.
///
/// Flash keeps recently served files mmap'd; a miss costs an
/// `mmap`/`munmap` cycle. Flash-Lite has no equivalent cost — IO-Lite
/// window mappings persist at chunk granularity (§3.2).
#[derive(Debug, Default)]
pub struct MappedFileCache {
    capacity: usize,
    clock: u64,
    entries: std::collections::HashMap<FileId, u64>,
}

impl MappedFileCache {
    /// Creates a cache of the given capacity (0 disables caching: every
    /// touch misses, which models Apache's map-per-request behaviour).
    pub fn new(capacity: usize) -> Self {
        MappedFileCache {
            capacity,
            clock: 0,
            entries: std::collections::HashMap::new(),
        }
    }

    /// Touches a file; returns `true` if it was already mapped.
    pub fn touch(&mut self, file: FileId) -> bool {
        self.clock += 1;
        if self.capacity == 0 {
            return false;
        }
        if let Some(stamp) = self.entries.get_mut(&file) {
            *stamp = self.clock;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&f, _)| f)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(file, self.clock);
        false
    }

    /// Number of files currently mapped.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Identifies a kernel pipe object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u32);

/// Which end of a pipe a file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    /// The reading end.
    Read,
    /// The writing end.
    Write,
}

/// The outcome of one kernel operation: simulated CPU cost plus any
/// device time the caller must schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoOutcome {
    /// CPU time consumed by the operation.
    pub charge: Charge,
    /// Whether the file cache satisfied the request.
    pub cache_hit: bool,
    /// Bytes read from the disk device (0 on hits).
    pub disk_bytes: u64,
    /// Device service time for those bytes (not CPU; schedule on the
    /// disk resource).
    pub disk_time: SimTime,
    /// New page mappings this operation established.
    pub mapped_pages: u64,
}

/// The simulated operating system.
///
/// Fields are public by design: experiment drivers reach directly into
/// subsystems (the checksum cache, the memory accountant, the filter)
/// the same way kernel subsystems reach each other.
pub struct Kernel {
    /// The machine/cost model.
    pub cost: CostModel,
    /// The IO-Lite window (chunk mappings per domain).
    pub window: IoLiteWindow,
    /// Physical-memory accountant.
    pub physmem: PhysMemory,
    /// The §3.7 pageout daemon.
    pub pageout: PageoutDaemon,
    /// File contents.
    pub store: FileStore,
    /// The "old" metadata buffer cache.
    pub meta: MetadataCache,
    /// The unified IO-Lite file cache.
    pub cache: UnifiedCache,
    /// The Internet checksum cache (§3.9).
    pub cksum: ChecksumCache,
    /// The early-demux packet filter (§3.6).
    pub filter: PacketFilter,
    /// Disk timing model.
    pub disk: DiskModel,
    /// Flash's mapped-file cache (conventional servers only).
    pub mapped_files: MappedFileCache,
    /// Mechanism metrics.
    pub metrics: Metrics,
    /// The pool backing the file cache. Its ACL is extended to every
    /// process that reads files: web content is world-readable, and the
    /// paper's private-data story (separate per-process/CGI pools) is
    /// carried by the per-process pools instead.
    cache_pool: BufferPool,
    cache_pool_acl: Acl,
    processes: BTreeMap<Pid, Process>,
    pipes: BTreeMap<PipeId, Pipe>,
    fds: FdRegistry,
    next_pid: u32,
    next_pool: u32,
    next_pipe: u32,
    clock: SimTime,
}

impl Kernel {
    /// Creates a kernel with the default (LRU) cache policy.
    pub fn new(cost: CostModel) -> Self {
        Kernel::with_policy(cost, Policy::Lru)
    }

    /// Creates a kernel with an explicit file-cache policy (Flash-Lite
    /// installs [`Policy::Gds`] through the §3.7 customization hook).
    pub fn with_policy(cost: CostModel, policy: Policy) -> Self {
        let mut physmem = PhysMemory::new(cost.ram_bytes);
        physmem.reserve(MemAccount::Kernel, cost.kernel_reserve_bytes);
        let budget = physmem.cache_budget();
        let disk = DiskModel {
            avg_position_ms: cost.disk_position_ms,
            transfer_mb_s: cost.disk_mb_s,
        };
        Kernel {
            cost,
            window: IoLiteWindow::new(iolite_buf::DEFAULT_CHUNK_SIZE),
            physmem,
            pageout: PageoutDaemon::new(),
            store: FileStore::new(),
            meta: MetadataCache::new(4096),
            cache: UnifiedCache::new(policy, budget),
            cksum: ChecksumCache::new(1 << 16),
            filter: PacketFilter::new(),
            disk,
            mapped_files: MappedFileCache::new(cost.flash_mapped_cache_files),
            metrics: Metrics::new(),
            cache_pool: BufferPool::new(
                PoolId(0),
                Acl::kernel_only(),
                iolite_buf::DEFAULT_CHUNK_SIZE,
            ),
            cache_pool_acl: Acl::kernel_only(),
            processes: BTreeMap::new(),
            pipes: BTreeMap::new(),
            fds: FdRegistry::new(),
            next_pid: 1,
            next_pool: 1,
            next_pipe: 1,
            clock: SimTime::ZERO,
        }
    }

    // ---- processes and pools -------------------------------------------

    /// Spawns a process with a private default pool.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let pool_id = PoolId(self.next_pool);
        self.next_pool += 1;
        let proc = Process::new(pid, name.into(), pool_id, iolite_buf::DEFAULT_CHUNK_SIZE);
        // File data read by this process becomes readable to it.
        self.cache_pool_acl.grant(pid.domain());
        self.processes.insert(pid, proc);
        pid
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics on unknown pids — experiment drivers own process lifetimes.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[&pid]
    }

    /// Creates an additional allocation pool (the `IOL_create_pool`
    /// call of §3.4) with an explicit ACL.
    pub fn create_pool(&mut self, acl: Acl) -> BufferPool {
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        BufferPool::new(id, acl, iolite_buf::DEFAULT_CHUNK_SIZE)
    }

    // ---- clock and charging --------------------------------------------

    /// The kernel's sequential clock (used by the application harness;
    /// the Web driver uses an external event clock instead).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Adds CPU time to the sequential clock and the metrics breakdown.
    pub fn charge(&mut self, cat: CostCategory, c: Charge) {
        self.clock += c.time;
        self.metrics.charge(cat, c.time);
    }

    /// Advances the sequential clock by non-CPU time (e.g. disk waits).
    pub fn advance(&mut self, t: SimTime) {
        self.clock += t;
    }

    /// Resets the sequential clock (metrics are kept).
    pub fn reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
    }

    // ---- file system ---------------------------------------------------

    /// Creates a file with explicit contents.
    pub fn create_file(&mut self, name: &str, data: &[u8]) -> FileId {
        self.store
            .create(name, FileContent::Explicit(data.to_vec()))
    }

    /// Creates a synthetic (pattern-generated) file.
    pub fn create_synthetic_file(&mut self, name: &str, len: u64, seed: u64) -> FileId {
        self.store.create_synthetic(name, len, seed)
    }

    /// Resolves a path through the metadata cache.
    pub fn lookup(&mut self, name: &str) -> (Option<FileId>, Charge) {
        let store = &self.store;
        let result = self.meta.lookup(name, || store.lookup(name));
        let charge = match result {
            Some((_, true)) => Charge::us(self.cost.syscall_us),
            // A metadata miss costs an extra metadata-cache fill; the
            // paper keeps metadata in the old buffer cache, so no device
            // time is charged for the common in-memory case.
            _ => Charge::us(self.cost.syscall_us * 3.0),
        };
        self.metrics.syscalls += 1;
        (result.map(|(id, _)| id), charge)
    }

    /// Re-syncs the file-cache budget with the memory accountant and
    /// returns entries evicted by the shrink.
    ///
    /// Evictions are reported to the pageout daemon as replaced
    /// cached-I/O pages, feeding the §3.7 trigger statistics.
    pub fn rebalance_cache(&mut self) -> usize {
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        let budget = self.physmem.cache_budget();
        let evicted = self.cache.set_budget(budget);
        for (_, agg) in &evicted {
            let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
            for _ in 0..pages.min(64) {
                self.pageout.page_replaced(iolite_vm::PageClass::CachedIo);
            }
        }
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        evicted.len()
    }

    /// Reports VM replacement pressure from non-cache pages (application
    /// anonymous memory being paged) and applies the §3.7 rule: if more
    /// than half of recently replaced pages held cached I/O data, one
    /// cache entry is evicted. Returns whether an eviction happened.
    pub fn vm_pressure(&mut self, other_pages: u64) -> bool {
        for _ in 0..other_pages {
            self.pageout.page_replaced(iolite_vm::PageClass::Other);
        }
        if self.pageout.should_evict_cache_entry() {
            if let Some((_, agg)) = self.cache.evict_one() {
                // The evicted entry's dirty pages would go to their
                // backing stores (paging space + the files they cache).
                let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
                self.pageout
                    .backing_store_write(1, pages * iolite_buf::PAGE_SIZE as u64);
                self.pageout.eviction_performed();
                self.physmem
                    .set(MemAccount::FileCache, self.cache.resident_bytes());
                return true;
            }
        }
        false
    }

    /// Reads a file extent through the unified cache with IO-Lite
    /// semantics: returns a buffer aggregate sharing the cache's
    /// physical copy (`IOL_read`, §3.4).
    ///
    /// Less data than requested is returned at end-of-file (the API
    /// explicitly allows short reads).
    pub fn iol_read(
        &mut self,
        pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> (Aggregate, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let agg = whole.range(start, take).expect("clamped range");
        // Transfer: make the aggregate's chunks readable in the caller.
        let pages = self.transfer_to(&agg, pid.domain());
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (agg, out)
    }

    /// Replaces a file extent with the contents of `agg` (`IOL_write`,
    /// §3.4): the cached aggregate is replaced, never mutated, so prior
    /// readers keep their snapshots (§3.5).
    ///
    /// Pins held on the key (e.g. by the network mid-transmission)
    /// survive the replacement: the cache keys pin counts by
    /// [`CacheKey`], not by entry generation, so a deferred unpin from
    /// a pre-write transmission cannot strip the protection of a
    /// post-write one.
    pub fn iol_write(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        agg: &Aggregate,
    ) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        // Update the backing store vectored, run by run (write-back
        // happens off the critical path; no device time charged here,
        // and no materialization of the aggregate).
        let mut run_offset = offset;
        for chunk in agg.chunks() {
            self.store.write(file, run_offset, chunk);
            run_offset += chunk.len() as u64;
        }
        // Snapshot-preserving cache replacement: rebuild the whole-file
        // entry as head ++ agg ++ tail, chaining by reference (indexed
        // range views; slices outside the extent are not walked twice).
        let key = CacheKey::whole(file);
        if let Some(old) = self.cache.replace_for_write(&key) {
            let head_len = offset.min(old.len());
            let mut rebuilt = old.range(0, head_len).expect("clamped");
            rebuilt.append(agg);
            let tail_start = (offset + agg.len()).min(old.len());
            rebuilt.append(&old.range(tail_start, old.len() - tail_start).expect("clamped"));
            self.cache.insert(key, rebuilt);
            self.rebalance_cache();
        }
        out.charge += Charge::ZERO;
        out
    }

    /// Backward-compatible `read`: copies into the caller's buffer
    /// (§4.2: "a data copy operation is used to move data between
    /// application buffers and IO-Lite buffers").
    pub fn posix_read(
        &mut self,
        _pid: Pid,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> (Vec<u8>, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let mut dst = vec![0u8; take as usize];
        whole.copy_to(start, &mut dst);
        self.metrics.bytes_copied += take;
        out.charge += self.cost.cached_copy(take);
        (dst, out)
    }

    /// Backward-compatible `write`: copies the caller's bytes into
    /// IO-Lite buffers, then behaves like [`Kernel::iol_write`].
    pub fn posix_write(&mut self, pid: Pid, file: FileId, offset: u64, data: &[u8]) -> IoOutcome {
        let agg = Aggregate::from_bytes(&self.cache_pool, data);
        self.metrics.bytes_copied += data.len() as u64;
        let mut out = self.iol_write(pid, file, offset, &agg);
        out.charge += self.cost.copy(data.len() as u64);
        out
    }

    /// Maps a whole file (§3.8 `mmap`): contiguous view, lazy alignment
    /// copies, COW against cached snapshots.
    pub fn mmap(&mut self, pid: Pid, file: FileId) -> (MmapView, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let pages = self.transfer_to(&whole, pid.domain());
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (MmapView::new(whole), out)
    }

    /// Cache-or-disk read of the whole file, maintaining budgets.
    fn read_whole_cached(&mut self, file: FileId, out: &mut IoOutcome) -> Aggregate {
        let key = CacheKey::whole(file);
        if let Some(agg) = self.cache.lookup(&key) {
            out.cache_hit = true;
            return agg;
        }
        let len = self.store.len(file).unwrap_or(0);
        let bytes = self.store.read(file, 0, len).unwrap_or_default();
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, &bytes, iolite_buf::PAGE_SIZE);
        out.disk_bytes = len;
        out.disk_time = self.disk.access_time(len);
        self.metrics.disk_ops += 1;
        self.metrics.disk_bytes += len;
        // Admit, then shrink to budget; evicted chunks that drained
        // return to the pool and are eventually released.
        self.cache.insert(key, agg.clone());
        self.rebalance_cache();
        self.cache_pool.release_free_chunks(u64::MAX);
        agg
    }

    /// Makes an aggregate's chunks readable in `domain`, charging only
    /// first-time mappings (§3.2). Returns newly mapped pages.
    pub fn transfer_to(&mut self, agg: &Aggregate, domain: DomainId) -> u64 {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self
            .window
            .transfer(&chunks, domain, &self.cache_pool_acl.clone())
            .unwrap_or(0);
        self.metrics.pages_mapped += pages;
        pages
    }

    /// Like [`Kernel::transfer_to`] but enforcing an explicit ACL
    /// (pipe transfers between mutually untrusting processes).
    ///
    /// # Errors
    ///
    /// Returns [`iolite_vm::AccessDenied`] when `domain` is not on
    /// `acl`.
    pub fn transfer_with_acl(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        acl: &Acl,
    ) -> Result<u64, iolite_vm::AccessDenied> {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self.window.transfer(&chunks, domain, acl)?;
        self.metrics.pages_mapped += pages;
        Ok(pages)
    }

    // ---- pipes -----------------------------------------------------------

    /// Creates a pipe in the given mode with the BSD 64KB buffer.
    pub fn pipe_create(&mut self, mode: PipeMode) -> PipeId {
        let id = PipeId(self.next_pipe);
        self.next_pipe += 1;
        self.pipes.insert(id, Pipe::new(mode, 64 * 1024));
        id
    }

    /// Writes to a pipe, returning accepted bytes and the cost.
    ///
    /// A short write means the pipe is full; the caller must let the
    /// reader run (a context switch, charged by the run loop).
    pub fn pipe_write(&mut self, _pid: Pid, id: PipeId, data: &Aggregate) -> (u64, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let pipe = self.pipes.get_mut(&id).expect("unknown pipe");
        let before = pipe.stats().bytes_copied;
        let accepted = pipe.write(data);
        let copied = pipe.stats().bytes_copied - before;
        if copied > 0 {
            self.metrics.bytes_copied += copied;
            out.charge += self.cost.copy(copied);
        }
        (accepted, out)
    }

    /// Reads from a pipe; zero-copy pipes also transfer the received
    /// chunks into the reader's domain (first time only — recycled
    /// buffers ride existing mappings, §3.2).
    pub fn pipe_read(&mut self, pid: Pid, id: PipeId, max: u64) -> (Option<Aggregate>, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let pipe = self.pipes.get_mut(&id).expect("unknown pipe");
        let mode = pipe.mode();
        let before = pipe.stats().bytes_copied;
        let got = pipe.read(max);
        let copied = pipe.stats().bytes_copied - before;
        if copied > 0 {
            self.metrics.bytes_copied += copied;
            out.charge += self.cost.copy(copied);
        }
        if let (Some(agg), PipeMode::ZeroCopy) = (&got, mode) {
            // Pass-by-reference: the reader needs (at most first-time)
            // read mappings. The writer's pool ACL must allow it; pipes
            // between cooperating processes use a shared pool, so the
            // kernel transfers with a permissive ACL here and relies on
            // pool ACLs at allocation sites.
            let pages = self.transfer_to(agg, pid.domain());
            out.mapped_pages += pages;
            out.charge += self.cost.page_maps(pages);
        }
        (got, out)
    }

    // ---- file descriptors (§3.4: the IOL calls act on any fd) -----------

    /// Opens a file by path, returning a descriptor with offset 0.
    ///
    /// Returns `None` (with the metadata-lookup charge applied) when the
    /// path does not resolve.
    pub fn open(&mut self, pid: Pid, path: &str) -> (Option<Fd>, Charge) {
        let (id, charge) = self.lookup(path);
        let fd = id.map(|file| self.fds.table(pid).install(FdObject::File(file)));
        (fd, charge + Charge::us(self.cost.syscall_us))
    }

    /// Creates a pipe and returns `(read_fd, write_fd)` in `pid`'s table
    /// (both ends in one process, as after `pipe(2)` before `fork`;
    /// hand the ends to other processes with [`Kernel::install_fd`]).
    pub fn pipe_fds(&mut self, pid: Pid, mode: PipeMode) -> (Fd, Fd) {
        let id = self.pipe_create(mode);
        let table = self.fds.table(pid);
        let r = table.install(FdObject::PipeRead(id));
        let w = table.install(FdObject::PipeWrite(id));
        (r, w)
    }

    /// Installs an existing object in `pid`'s descriptor table (the
    /// moral equivalent of inheriting an fd across `fork`/`exec`).
    pub fn install_fd(&mut self, pid: Pid, object: FdObject) -> Fd {
        self.fds.table(pid).install(object)
    }

    /// Duplicates a descriptor (`dup(2)`): both numbers share one file
    /// offset.
    pub fn dup_fd(&mut self, pid: Pid, fd: Fd) -> Option<Fd> {
        self.fds.table(pid).dup(fd)
    }

    /// Closes a descriptor (`close(2)`).
    pub fn close_fd(&mut self, pid: Pid, fd: Fd) -> bool {
        self.fds.table(pid).close(fd)
    }

    /// Repositions a file descriptor (`lseek(2)` with `SEEK_SET`).
    /// Returns the new offset, or `None` for pipes/unknown fds.
    pub fn lseek(&mut self, pid: Pid, fd: Fd, pos: u64) -> Option<u64> {
        let desc = self.fds.table(pid).get(fd)?;
        let mut open = desc.borrow_mut();
        match open.object {
            FdObject::File(_) => {
                open.pos = pos;
                Some(pos)
            }
            _ => None,
        }
    }

    /// `IOL_read` on a descriptor: files read at (and advance) the
    /// shared offset; pipe read-ends drain the pipe.
    ///
    /// Returns an empty aggregate for unknown descriptors or wrong-end
    /// pipe access (EBADF analog — the charge still applies, as the
    /// kernel did the work of rejecting the call).
    pub fn iol_read_fd(&mut self, pid: Pid, fd: Fd, len: u64) -> (Aggregate, IoOutcome) {
        let Some(desc) = self.fds.table(pid).get(fd) else {
            return (
                Aggregate::empty(),
                IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                },
            );
        };
        let object = desc.borrow().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.borrow().pos;
                let (agg, out) = self.iol_read(pid, file, pos, len);
                desc.borrow_mut().pos = pos + agg.len();
                (agg, out)
            }
            FdObject::PipeRead(pipe) => {
                let (got, out) = self.pipe_read(pid, pipe, len);
                (got.unwrap_or_default(), out)
            }
            FdObject::PipeWrite(_) => (
                Aggregate::empty(),
                IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                },
            ),
        }
    }

    /// `IOL_write` on a descriptor: files replace at (and advance) the
    /// shared offset; pipe write-ends enqueue. Returns bytes accepted.
    pub fn iol_write_fd(&mut self, pid: Pid, fd: Fd, agg: &Aggregate) -> (u64, IoOutcome) {
        let Some(desc) = self.fds.table(pid).get(fd) else {
            return (
                0,
                IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                },
            );
        };
        let object = desc.borrow().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.borrow().pos;
                let out = self.iol_write(pid, file, pos, agg);
                desc.borrow_mut().pos = pos + agg.len();
                (agg.len(), out)
            }
            FdObject::PipeWrite(pipe) => self.pipe_write(pid, pipe, agg),
            FdObject::PipeRead(_) => (
                0,
                IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                },
            ),
        }
    }

    /// Closes a pipe's write end.
    pub fn pipe_close(&mut self, id: PipeId) {
        if let Some(p) = self.pipes.get_mut(&id) {
            p.close();
        }
    }

    /// Immutable access to a pipe (tests, stats).
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(CostModel::pentium_ii_333())
    }

    #[test]
    fn iol_read_hits_cache_second_time() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 100_000, 1);
        let (a1, o1) = k.iol_read(pid, f, 0, 100_000);
        assert!(!o1.cache_hit);
        assert!(o1.disk_bytes == 100_000 && o1.disk_time > SimTime::ZERO);
        let (a2, o2) = k.iol_read(pid, f, 0, 100_000);
        assert!(o2.cache_hit);
        assert_eq!(o2.disk_bytes, 0);
        assert!(a1.content_eq(&a2));
        // Same physical copy.
        assert!(a1.slice_at(0).same_buffer(a2.slice_at(0)));
    }

    #[test]
    fn iol_read_short_at_eof() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"abcdef");
        let (agg, _) = k.iol_read(pid, f, 4, 100);
        assert_eq!(agg.to_vec(), b"ef");
        let (empty, _) = k.iol_read(pid, f, 100, 10);
        assert!(empty.is_empty());
    }

    #[test]
    fn mapping_cost_amortizes() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 64 * 1024, 1);
        let (_, o1) = k.iol_read(pid, f, 0, 64 * 1024);
        assert!(o1.mapped_pages > 0);
        let (_, o2) = k.iol_read(pid, f, 0, 64 * 1024);
        assert_eq!(o2.mapped_pages, 0, "second read rides warm mappings");
        assert!(o2.charge.time < o1.charge.time);
    }

    #[test]
    fn posix_read_copies_iol_read_does_not() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 1);
        let (data, _) = k.posix_read(pid, f, 0, 10_000);
        assert_eq!(k.metrics.bytes_copied, 10_000);
        let (agg, _) = k.iol_read(pid, f, 0, 10_000);
        assert_eq!(k.metrics.bytes_copied, 10_000, "IOL_read adds no copy");
        assert_eq!(agg.to_vec(), data);
    }

    #[test]
    fn iol_write_preserves_reader_snapshots() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"old-contents");
        let (snapshot, _) = k.iol_read(pid, f, 0, 100);
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"NEW");
        k.iol_write(pid, f, 0, &patch);
        // Reader's snapshot unchanged; store and cache updated.
        assert_eq!(snapshot.to_vec(), b"old-contents");
        assert_eq!(k.store.read(f, 0, 100).unwrap(), b"NEW-contents");
        let (now, o) = k.iol_read(pid, f, 0, 100);
        assert!(o.cache_hit);
        assert_eq!(now.to_vec(), b"NEW-contents");
    }

    #[test]
    fn lookup_uses_metadata_cache() {
        let mut k = kernel();
        k.create_file("/x", b"1");
        let (id1, c1) = k.lookup("/x");
        let (id2, c2) = k.lookup("/x");
        assert_eq!(id1, id2);
        assert!(c2.time < c1.time, "metadata hit is cheaper");
        assert_eq!(k.lookup("/missing").0, None);
    }

    /// Regression (pin-steal interleaving across the kernel surface):
    /// a transmission pins the key, `IOL_write` replaces the entry, a
    /// second transmission pins the key, then the first transmission's
    /// deferred unpin fires. The second transmission's data must stay
    /// referenced.
    #[test]
    fn iol_write_replacement_keeps_transmission_pins() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let f = k.create_file("/doc", b"version-1");
        let key = CacheKey::whole(f);
        // Transmission A: read + pin (the serve path's pin lifecycle).
        let (_snap, _) = k.iol_read(pid, f, 0, 100);
        k.cache.pin(&key);
        // A write replaces the cached entry mid-transmission.
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"version-2");
        k.iol_write(pid, f, 0, &patch);
        // Transmission B starts on the new snapshot.
        let (_snap2, o2) = k.iol_read(pid, f, 0, 100);
        assert!(o2.cache_hit);
        k.cache.pin(&key);
        // Transmission A drains: its deferred unpin fires.
        k.cache.unpin(&key);
        assert_eq!(k.cache.pins(&key), 1, "B's pin must survive A's unpin");
        // Under total memory pressure the in-flight entry is evicted
        // only as a last resort (counted as a pinned eviction).
        let before = k.cache.stats().pinned_evictions;
        k.cache.set_budget(0);
        assert_eq!(k.cache.stats().pinned_evictions, before + 1);
    }

    #[test]
    fn cache_budget_respects_memory_pressure() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 1 << 20, 1);
        k.iol_read(pid, f, 0, 1 << 20);
        assert!(k.cache.resident_bytes() > 0);
        // Reserve (almost) all remaining memory: cache must shrink.
        let avail = k.physmem.available();
        k.physmem
            .reserve(MemAccount::SocketCopies, avail + (1 << 20));
        k.rebalance_cache();
        assert_eq!(k.cache.resident_bytes(), 0, "budget squeeze evicts all");
    }

    #[test]
    fn zero_copy_pipe_transfer_maps_once() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let pipe = k.pipe_create(PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        // First message: fresh chunk, reader pays mapping.
        let m1 = Aggregate::from_bytes(&pool, &[1u8; 64 * 1024]);
        k.pipe_write(a, pipe, &m1);
        drop(m1);
        let (got, o1) = k.pipe_read(b, pipe, u64::MAX);
        assert_eq!(got.unwrap().len(), 64 * 1024);
        assert!(o1.mapped_pages > 0);
        // Recycled chunk: no new mappings (the §3.2 fast path).
        let m2 = Aggregate::from_bytes(&pool, &[2u8; 64 * 1024]);
        k.pipe_write(a, pipe, &m2);
        drop(m2);
        let (_, o2) = k.pipe_read(b, pipe, u64::MAX);
        assert_eq!(o2.mapped_pages, 0);
        assert_eq!(k.pipe(pipe).stats().bytes_copied, 0);
    }

    #[test]
    fn copy_pipe_charges_copies() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let pipe = k.pipe_create(PipeMode::Copy);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, &[1u8; 1000]);
        let (n, wout) = k.pipe_write(a, pipe, &msg);
        assert_eq!(n, 1000);
        assert!(wout.charge.time > Charge::us(5.0).time);
        let (_, rout) = k.pipe_read(b, pipe, u64::MAX);
        assert!(rout.charge.time > Charge::us(5.0).time);
        assert_eq!(k.metrics.bytes_copied, 2000);
    }

    #[test]
    fn mmap_returns_working_view() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 3);
        let (mut view, o) = k.mmap(pid, f);
        assert_eq!(view.len(), 10_000);
        assert!(o.mapped_pages > 0);
        let direct = k.store.read(f, 0, 10_000).unwrap();
        assert_eq!(view.read_all(), direct);
    }

    #[test]
    fn fd_reads_advance_shared_offsets() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/seq", b"abcdefghij");
        let (fd, _) = k.open(pid, "/seq");
        let fd = fd.unwrap();
        let (first, _) = k.iol_read_fd(pid, fd, 4);
        assert_eq!(first.to_vec(), b"abcd");
        // A dup shares the offset.
        let dup = k.dup_fd(pid, fd).unwrap();
        let (second, _) = k.iol_read_fd(pid, dup, 4);
        assert_eq!(second.to_vec(), b"efgh");
        let (third, _) = k.iol_read_fd(pid, fd, 4);
        assert_eq!(third.to_vec(), b"ij");
        // lseek rewinds.
        assert_eq!(k.lseek(pid, fd, 0), Some(0));
        let (again, _) = k.iol_read_fd(pid, dup, 2);
        assert_eq!(again.to_vec(), b"ab");
    }

    #[test]
    fn fd_pipes_and_bad_fds() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (r, w) = k.pipe_fds(a, PipeMode::ZeroCopy);
        // Hand the read end to the consumer.
        let robj = k.fds.table(a).get(r).unwrap().borrow().object;
        let r_in_b = k.install_fd(b, robj);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"through the fd layer");
        let (n, _) = k.iol_write_fd(a, w, &msg);
        assert_eq!(n, 20);
        let (got, _) = k.iol_read_fd(b, r_in_b, 100);
        assert_eq!(got.to_vec(), b"through the fd layer");
        // Wrong-end access and unknown fds degrade gracefully.
        let (none, _) = k.iol_read_fd(a, w, 10);
        assert!(none.is_empty());
        let (zero, _) = k.iol_write_fd(b, r_in_b, &msg);
        assert_eq!(zero, 0);
        let (ghost, _) = k.iol_read_fd(a, Fd(999), 10);
        assert!(ghost.is_empty());
        // Opening a missing path fails with a charge.
        let (none_fd, c) = k.open(a, "/nope");
        assert!(none_fd.is_none());
        assert!(c.time > iolite_sim::SimTime::ZERO);
        // lseek on a pipe is refused.
        assert_eq!(k.lseek(a, w, 5), None);
    }

    #[test]
    fn fd_file_writes_land_at_the_offset() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f");
        let fd = fd.unwrap();
        k.lseek(pid, fd, 4);
        let pool = k.process(pid).pool().clone();
        let patch = Aggregate::from_bytes(&pool, b"XY");
        let (n, _) = k.iol_write_fd(pid, fd, &patch);
        assert_eq!(n, 2);
        let file = k.lookup("/f").0.unwrap();
        assert_eq!(k.store.read(file, 0, 20).unwrap(), b"0123XY6789");
        // The offset advanced past the write.
        let (rest, _) = k.iol_read_fd(pid, fd, 10);
        assert_eq!(rest.to_vec(), b"6789");
    }

    #[test]
    fn pageout_trigger_evicts_under_cache_heavy_replacement() {
        let mut k = kernel();
        let pid = k.spawn("app");
        // Fill the cache, then squeeze it so replacements are dominated
        // by cached-I/O pages.
        for i in 0..8 {
            let f = k.create_synthetic_file(&format!("/f{i}"), 1 << 20, i);
            k.iol_read(pid, f, 0, 1 << 20);
        }
        let resident_before = k.cache.resident_bytes();
        assert!(resident_before > 0);
        let squeeze = k.physmem.available() + resident_before / 2;
        k.physmem.reserve(MemAccount::SocketCopies, squeeze);
        k.rebalance_cache();
        // The daemon saw cached-I/O replacements; light "other" traffic
        // must now trigger the half rule.
        assert!(k.pageout.total_cached_io() > 0);
        let evicted = k.vm_pressure(1);
        assert!(evicted, "majority cached-I/O traffic must evict");
        assert!(k.pageout.evictions() >= 1);
        assert!(k.pageout.backing_writes() >= 1);
        // Heavy non-cache pressure resets the balance: no more evictions.
        let again = k.vm_pressure(10_000);
        assert!(!again, "other-page traffic dominates now");
    }

    #[test]
    fn clock_and_charging() {
        let mut k = kernel();
        assert_eq!(k.now(), SimTime::ZERO);
        k.charge(CostCategory::Copy, Charge::us(100.0));
        k.advance(SimTime::from_us(50.0));
        assert_eq!(k.now(), SimTime::from_us(150.0));
        assert_eq!(
            k.metrics.time_in(CostCategory::Copy),
            SimTime::from_us(100.0)
        );
        k.reset_clock();
        assert_eq!(k.now(), SimTime::ZERO);
    }
}

//! The imperative shell around the functional core (`crate::pure`).
//!
//! [`Kernel`] owns a pure [`KernelState`] value plus the three things
//! the core must never touch: the [`Metrics`] sink, the optional
//! command [`Journal`], and a reused effect buffer. Every public
//! syscall-surface method is a thin wrapper with one shape:
//!
//! 1. clear the effect buffer,
//! 2. call the state's `op_*` transition with `&mut fx`,
//! 3. absorb the effects into `metrics` and (when recording) append
//!    the equivalent [`Command`] to the journal,
//! 4. return the operation's typed result.
//!
//! Because step 2 is the *only* place state changes, folding the
//! recorded journal through [`crate::pure::replay`] from the same
//! initial state reproduces both the final
//! [`KernelState::state_hash`] and the metrics — deterministic replay.
//!
//! The public I/O surface is unchanged from earlier revisions:
//! descriptor-based and fallible, with raw [`FileId`]/[`PipeId`] entry
//! points remaining only as deprecated shims for the cache/bench
//! layers. Subsystem state (the caches, the window, the accountant) is
//! reachable read/write through [`Deref`]/[`DerefMut`] — direct field
//! access is shell-side convenience and is not journaled; replayable
//! runs go through the methods below.

use std::ops::{Deref, DerefMut};

use iolite_buf::{Acl, Aggregate, BufferPool, DomainId};
use iolite_fs::{CacheKey, FileId, Policy};
use iolite_ipc::PipeMode;
use iolite_net::{BufferMode, MbufChain, SendOutcome};
use iolite_sim::SimTime;
use iolite_vm::{MemAccount, MmapView};

use crate::cost::{Charge, CostCategory, CostModel};
use crate::error::{IoResult, IolError};
use crate::fd::{Fd, FdObject, Whence};
use crate::metrics::Metrics;
use crate::poll::{PollFd, Readiness};
use crate::process::Pid;
use crate::pure::{Command, Journal, KernelState};

pub use crate::pure::{ConnId, IoOutcome, MappedFileCache, PipeEnd, PipeId};

/// The simulated operating system: the imperative shell.
///
/// Dereferences to [`KernelState`], so subsystem fields (`cache`,
/// `physmem`, `cksum`, …) and the read-only query surface (`now`,
/// `socket_space`, `fd_object`, …) are used exactly as before.
pub struct Kernel {
    state: KernelState,
    /// Mechanism metrics (folded from the core's effect stream).
    pub metrics: Metrics,
    journal: Option<Journal>,
    fx: Vec<crate::pure::Effect>,
}

impl Deref for Kernel {
    type Target = KernelState;

    fn deref(&self) -> &KernelState {
        &self.state
    }
}

impl DerefMut for Kernel {
    fn deref_mut(&mut self) -> &mut KernelState {
        &mut self.state
    }
}

impl Kernel {
    /// Creates a kernel with the default (LRU) cache policy.
    pub fn new(cost: CostModel) -> Self {
        Kernel::with_policy(cost, Policy::Lru)
    }

    /// Creates a kernel with an explicit file-cache policy (Flash-Lite
    /// installs [`Policy::Gds`] through the §3.7 customization hook).
    pub fn with_policy(cost: CostModel, policy: Policy) -> Self {
        Kernel {
            state: KernelState::new(cost, policy),
            metrics: Metrics::new(),
            journal: None,
            fx: Vec::new(),
        }
    }

    /// Absorbs the pending effect buffer into the metrics and, when
    /// recording, journals the command (built lazily so a disabled
    /// journal costs no clones on the hot path).
    fn finish(&mut self, make: impl FnOnce() -> Command) {
        for e in &self.fx {
            self.metrics.absorb(e);
        }
        if let Some(j) = self.journal.as_mut() {
            j.push(make());
        }
    }

    // ---- journaling ------------------------------------------------------

    /// Starts recording every executed command (errors included — a
    /// rejected command may still have mutated state) into a fresh
    /// journal, replacing any previous one.
    pub fn start_journal(&mut self) {
        self.journal = Some(Journal::new());
    }

    /// Stops recording and hands the journal back, if one was active.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// The journal recorded so far, if recording is active.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    // ---- processes and pools -------------------------------------------

    /// Spawns a process with a private default pool and the conventional
    /// stdio triple installed at fds 0/1/2 ([`Fd::STDIN`],
    /// [`Fd::STDOUT`], [`Fd::STDERR`]), each backed by a console pipe
    /// the harness can drive via [`Kernel::feed_stdin`] /
    /// [`Kernel::read_stdout`] / [`Kernel::read_stderr`] — or re-plumb
    /// with [`Kernel::dup2_fd`], shell-style.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let name = name.into();
        self.fx.clear();
        let pid = self.state.op_spawn(name.clone(), &mut self.fx);
        self.finish(|| Command::Spawn { name });
        pid
    }

    /// Creates an additional allocation pool (the `IOL_create_pool`
    /// call of §3.4) with an explicit ACL.
    pub fn create_pool(&mut self, acl: Acl) -> BufferPool {
        self.fx.clear();
        let pool = self.state.op_create_pool(acl.clone());
        self.finish(|| Command::CreatePool { acl });
        pool
    }

    // ---- clock and charging --------------------------------------------

    /// Adds CPU time to the sequential clock and the metrics breakdown.
    pub fn charge(&mut self, cat: CostCategory, c: Charge) {
        self.fx.clear();
        self.state.op_charge(cat, c, &mut self.fx);
        self.finish(|| Command::Charge {
            category: cat,
            charge: c,
        });
    }

    /// Advances the sequential clock by non-CPU time (e.g. disk waits).
    pub fn advance(&mut self, t: SimTime) {
        self.fx.clear();
        self.state.op_advance(t);
        self.finish(|| Command::Advance { t });
    }

    /// Resets the sequential clock (metrics are kept).
    pub fn reset_clock(&mut self) {
        self.fx.clear();
        self.state.op_reset_clock();
        self.finish(|| Command::ResetClock);
    }

    /// Accounts `n` process context switches (scheduling hand-offs the
    /// drivers previously tallied by hand).
    pub fn context_switch(&mut self, n: u64) {
        self.fx.clear();
        self.state.op_context_switch(n, &mut self.fx);
        self.finish(|| Command::ContextSwitch { n });
    }

    // ---- file system ---------------------------------------------------

    /// Creates a file with explicit contents.
    pub fn create_file(&mut self, name: &str, data: &[u8]) -> FileId {
        self.fx.clear();
        let id = self.state.op_create_file(name, data);
        self.finish(|| Command::CreateFile {
            name: name.to_string(),
            data: data.to_vec(),
        });
        id
    }

    /// Creates a synthetic (pattern-generated) file.
    pub fn create_synthetic_file(&mut self, name: &str, len: u64, seed: u64) -> FileId {
        self.fx.clear();
        let id = self.state.op_create_synthetic_file(name, len, seed);
        self.finish(|| Command::CreateSyntheticFile {
            name: name.to_string(),
            len,
            seed,
        });
        id
    }

    /// Resolves a path through the metadata cache.
    pub fn lookup(&mut self, name: &str) -> (Option<FileId>, Charge) {
        self.fx.clear();
        let r = self.state.op_lookup(name, &mut self.fx);
        self.finish(|| Command::Lookup {
            name: name.to_string(),
        });
        r
    }

    /// Re-syncs the file-cache budget with the memory accountant and
    /// returns entries evicted by the shrink.
    ///
    /// Evictions are reported to the pageout daemon as replaced
    /// cached-I/O pages, feeding the §3.7 trigger statistics.
    pub fn rebalance_cache(&mut self) -> usize {
        self.fx.clear();
        let n = self.state.op_rebalance_cache();
        self.finish(|| Command::RebalanceCache);
        n
    }

    /// Reports VM replacement pressure from non-cache pages (application
    /// anonymous memory being paged) and applies the §3.7 rule through
    /// the pageout arbiter: relieve armed pressure by evicting one
    /// clean entry, or by flushing a write-back batch when the dirty
    /// pool dominates (dirty entries are never discarded). Returns
    /// whether the cache shrank or cleaned anything.
    pub fn vm_pressure(&mut self, other_pages: u64) -> bool {
        self.fx.clear();
        let acted = self.state.op_vm_pressure(other_pages, &mut self.fx);
        self.finish(|| Command::VmPressure { other_pages });
        acted
    }

    // ---- the write path (PR 10) ----------------------------------------

    /// Installs a PUT body as `file`'s whole-file cache entry, dirty,
    /// by reference (zero-copy ingest; §3.5 snapshot semantics).
    /// Persistence is deferred to [`Kernel::write_back`]; checksums
    /// cached over the replaced version are invalidated.
    pub fn put_install(&mut self, pid: Pid, file: FileId, agg: &Aggregate) -> IoOutcome {
        self.fx.clear();
        let out = self.state.op_put_install(pid, file, agg, &mut self.fx);
        self.finish(|| Command::PutInstall {
            pid,
            file,
            agg: agg.clone(),
        });
        out
    }

    /// Flushes one write-back batch (up to `max_bytes`; 0 ⇒ the
    /// configured flush-batch size) through the NVM staging tier, disk
    /// overflow included. Returns bytes flushed.
    pub fn write_back(&mut self, max_bytes: u64) -> u64 {
        self.fx.clear();
        let n = self.state.op_write_back(max_bytes, &mut self.fx);
        self.finish(|| Command::WriteBack { max_bytes });
        n
    }

    /// Demotes up to `max_bytes` (0 ⇒ the configured drain chunk) from
    /// the NVM staging tier to disk. Returns bytes moved.
    pub fn nvm_demote(&mut self, max_bytes: u64) -> u64 {
        self.fx.clear();
        let n = self.state.op_nvm_demote(max_bytes, &mut self.fx);
        self.finish(|| Command::NvmDemote { max_bytes });
        n
    }

    /// Replaces the write-back tuning (journaled: replay sees the same
    /// flush scheduling).
    pub fn set_writeback(&mut self, cfg: iolite_fs::WritebackConfig) {
        self.fx.clear();
        self.state.op_set_writeback(cfg);
        self.finish(|| Command::SetWriteback { cfg });
    }

    /// Whether accumulated dirty bytes have armed a write-back flush —
    /// a pure state read (not journaled); the event loop polls this
    /// between request completions and issues the journaled
    /// [`Kernel::write_back`] when it answers `true`.
    pub fn writeback_due(&self) -> bool {
        self.state
            .writeback
            .should_flush(self.state.cache.dirty_bytes())
    }

    /// Pins a cache key against eviction (e.g. while the network
    /// transmits the entry).
    pub fn cache_pin(&mut self, key: CacheKey) {
        self.fx.clear();
        self.state.op_cache_pin(key);
        self.finish(|| Command::CachePin { key });
    }

    /// Releases one pin on a cache key.
    pub fn cache_unpin(&mut self, key: CacheKey) {
        self.fx.clear();
        self.state.op_cache_unpin(key);
        self.finish(|| Command::CacheUnpin { key });
    }

    /// Installs a replica of `data` as `file`'s whole-file cache entry
    /// (sharded serving: a remote read's payload becomes a local cache
    /// entry so later requests for the file hit this shard).
    pub fn cache_install(&mut self, file: FileId, data: &[u8]) -> IoOutcome {
        self.fx.clear();
        let out = self.state.op_cache_install(file, data, &mut self.fx);
        self.finish(|| Command::CacheInstall {
            file,
            data: data.to_vec(),
        });
        out
    }

    /// Drops a cache entry outright (sharded writes: a stale local
    /// replica after a write routed to the file's home shard). Returns
    /// whether an entry was dropped.
    pub fn cache_invalidate(&mut self, key: CacheKey) -> bool {
        self.fx.clear();
        let dropped = self.state.op_cache_invalidate(key);
        self.finish(|| Command::CacheInvalidate { key });
        dropped
    }

    /// Whether the NVM staging tier holds bytes a background demotion
    /// drain should move to disk — a pure state read (not journaled),
    /// the companion query to [`Kernel::writeback_due`].
    pub fn nvm_demote_due(&self) -> bool {
        self.state.writeback.should_demote()
    }

    /// Touches Flash's mapped-file cache; returns whether the file was
    /// already mapped (a miss models an `mmap`/`munmap` cycle).
    pub fn mapped_file_touch(&mut self, file: FileId) -> bool {
        self.fx.clear();
        let hit = self.state.op_mapped_file_touch(file);
        self.finish(|| Command::MappedFileTouch { file });
        hit
    }

    /// Reserves memory on an account in the physical-memory accountant.
    pub fn mem_reserve(&mut self, account: MemAccount, bytes: u64) {
        self.fx.clear();
        self.state.op_mem_reserve(account, bytes);
        self.finish(|| Command::MemReserve { account, bytes });
    }

    /// Releases memory from an account.
    pub fn mem_release(&mut self, account: MemAccount, bytes: u64) {
        self.fx.clear();
        self.state.op_mem_release(account, bytes);
        self.finish(|| Command::MemRelease { account, bytes });
    }

    /// Enables or disables the §3.9 checksum cache.
    pub fn set_checksum_cache(&mut self, enabled: bool) {
        self.fx.clear();
        self.state.op_set_checksum_cache(enabled);
        self.finish(|| Command::SetChecksumCache { enabled });
    }

    // ---- deprecated raw-FileId shims -----------------------------------

    /// `IOL_read` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`iol_read_fd`/`iol_pread`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn iol_read(&mut self, pid: Pid, file: FileId, offset: u64, len: u64) -> (Aggregate, IoOutcome) {
        self.fx.clear();
        let r = self.state.op_read_file_at(pid, file, offset, len, &mut self.fx);
        self.finish(|| Command::ReadFileAt {
            pid,
            file,
            offset,
            len,
        });
        r
    }

    /// `IOL_write` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`iol_write_fd`/`iol_pwrite`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn iol_write(&mut self, pid: Pid, file: FileId, offset: u64, agg: &Aggregate) -> IoOutcome {
        self.fx.clear();
        let out = self.state.op_write_file_at(pid, file, offset, agg, &mut self.fx);
        self.finish(|| Command::WriteFileAt {
            pid,
            file,
            offset,
            agg: agg.clone(),
        });
        out
    }

    /// Copying `read` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`posix_read_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn posix_read(&mut self, pid: Pid, file: FileId, offset: u64, len: u64) -> (Vec<u8>, IoOutcome) {
        self.fx.clear();
        let r = self.state.op_posix_file_read(pid, file, offset, len, &mut self.fx);
        self.finish(|| Command::PosixFileRead {
            pid,
            file,
            offset,
            len,
        });
        r
    }

    /// Copying `write` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`posix_write_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn posix_write(&mut self, pid: Pid, file: FileId, offset: u64, data: &[u8]) -> IoOutcome {
        self.fx.clear();
        let out = self.state.op_posix_file_write(pid, file, offset, data, &mut self.fx);
        self.finish(|| Command::PosixFileWrite {
            pid,
            file,
            offset,
            data: data.to_vec(),
        });
        out
    }

    /// `mmap` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`mmap_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn mmap(&mut self, pid: Pid, file: FileId) -> (MmapView, IoOutcome) {
        self.fx.clear();
        let r = self.state.op_file_mmap(pid, file, &mut self.fx);
        self.finish(|| Command::FileMmap { pid, file });
        r
    }

    // ---- window transfers ----------------------------------------------

    /// Makes an aggregate's chunks readable in `domain`, charging only
    /// first-time mappings (§3.2). Returns newly mapped pages.
    pub fn transfer_to(&mut self, agg: &Aggregate, domain: DomainId) -> u64 {
        self.fx.clear();
        let pages = self.state.op_transfer_to(agg, domain, &mut self.fx);
        self.finish(|| Command::TransferTo {
            agg: agg.clone(),
            domain,
        });
        pages
    }

    /// Like [`Kernel::transfer_to`] but enforcing an explicit ACL
    /// (pipe transfers between mutually untrusting processes).
    ///
    /// # Errors
    ///
    /// Returns [`iolite_vm::AccessDenied`] when `domain` is not on
    /// `acl`.
    pub fn transfer_with_acl(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        acl: &Acl,
    ) -> Result<u64, iolite_vm::AccessDenied> {
        self.fx.clear();
        let r = self.state.op_transfer_with_acl(agg, domain, acl, &mut self.fx);
        self.finish(|| Command::TransferWithAcl {
            agg: agg.clone(),
            domain,
            acl: acl.clone(),
        });
        r
    }

    // ---- pipes -----------------------------------------------------------

    /// Creates a pipe in the given mode with the BSD 64KB buffer.
    pub fn pipe_create(&mut self, mode: PipeMode) -> PipeId {
        self.fx.clear();
        let id = self.state.op_pipe_create(mode, None, &mut self.fx);
        self.finish(|| Command::PipeCreate { mode, acl: None });
        id
    }

    /// Creates a pipe whose zero-copy transfers are governed by `acl`
    /// (the writer pool's ACL, §3.10: the server and each CGI instance
    /// have separate pools with different ACLs — the pipe enforces the
    /// writer's on its reader).
    pub fn pipe_create_with_acl(&mut self, mode: PipeMode, acl: Acl) -> PipeId {
        self.fx.clear();
        let id = self.state.op_pipe_create(mode, Some(acl.clone()), &mut self.fx);
        self.finish(|| Command::PipeCreate {
            mode,
            acl: Some(acl),
        });
        id
    }

    /// Writes to a pipe by raw id, returning accepted bytes and the cost.
    #[deprecated(
        note = "application code writes pipes through descriptors (`iol_write_fd`); \
                this raw-PipeId shim remains for kernel-layer callers"
    )]
    pub fn pipe_write(&mut self, pid: Pid, id: PipeId, data: &Aggregate) -> (u64, IoOutcome) {
        self.fx.clear();
        let r = self.state.op_pipe_write(pid, id, data, &mut self.fx);
        self.finish(|| Command::PipeWrite {
            pid,
            pipe: id,
            agg: data.clone(),
        });
        r
    }

    /// Reads from a pipe by raw id.
    #[deprecated(
        note = "application code reads pipes through descriptors (`iol_read_fd`); \
                this raw-PipeId shim remains for kernel-layer callers"
    )]
    pub fn pipe_read(&mut self, pid: Pid, id: PipeId, max: u64) -> (Option<Aggregate>, IoOutcome) {
        self.fx.clear();
        let r = self.state.op_pipe_read(pid, id, max, &mut self.fx);
        self.finish(|| Command::PipeRead { pid, pipe: id, max });
        r.expect("raw pipe reads bypass ACL'd pipes")
    }

    /// Closes a pipe's write end by raw id (descriptor holders use
    /// [`Kernel::close_fd`], which calls this on last close).
    pub fn pipe_close(&mut self, id: PipeId) {
        self.fx.clear();
        self.state.op_pipe_close(id);
        self.finish(|| Command::PipeClose { pipe: id });
    }

    // ---- sockets ---------------------------------------------------------

    /// Creates a TCP connection in the kernel's socket registry and
    /// installs a descriptor for it in `pid`'s table. The §3.4 promise
    /// made real: the same `IOL_read`/`IOL_write` calls that act on
    /// files and pipes drive the socket's zero-copy (or copying) send
    /// path.
    pub fn socket_create(&mut self, pid: Pid, mode: BufferMode, mss: usize, tss: usize) -> Fd {
        self.fx.clear();
        let fd = self.state.op_socket_create(pid, mode, mss, tss);
        self.finish(|| Command::SocketCreate {
            pid,
            mode,
            mss,
            tss,
        });
        fd
    }

    /// Delivers inbound payload to a socket (the receive path's
    /// hand-off after demux/reassembly, or a test harness playing the
    /// remote peer). The data becomes readable through
    /// [`Kernel::iol_read_fd`].
    pub fn socket_deliver(&mut self, pid: Pid, fd: Fd, payload: Aggregate) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_socket_deliver(pid, fd, payload.clone());
        self.finish(|| Command::SocketDeliver { pid, fd, payload });
        r
    }

    /// Accounting-only send on a *copy-mode* socket descriptor: the
    /// conventional `write(2)` path, whose costs depend only on the
    /// byte count (copies have no identity, so no cache can apply).
    /// Updates the copy/checksum metrics centrally and returns the
    /// [`SendOutcome`] in both the value and `outcome.net`.
    pub fn socket_send_accounted(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<SendOutcome> {
        self.fx.clear();
        let r = self.state.op_socket_send_accounted(pid, fd, len, &mut self.fx);
        self.finish(|| Command::SocketSendAccounted { pid, fd, len });
        r
    }

    /// Materializes the actual TCP segment chains a descriptor write of
    /// `payload` would emit (end-to-end byte-exactness tests; the hot
    /// path only needs [`Kernel::iol_write_fd`]'s accounting).
    pub fn socket_transmit_segments(
        &mut self,
        pid: Pid,
        fd: Fd,
        payload: &Aggregate,
    ) -> IoResult<Vec<MbufChain>> {
        self.fx.clear();
        let r = self.state.op_socket_transmit_segments(pid, fd, payload);
        self.finish(|| Command::SocketTransmitSegments {
            pid,
            fd,
            payload: payload.clone(),
        });
        r
    }

    /// Sets a socket descriptor's `O_NONBLOCK` flag. Nonblocking
    /// sockets bound their send buffer at Tss: writes accept only what
    /// fits ([`IolError::ShortIo`] carries partial progress,
    /// [`IolError::WouldBlock`] a full buffer) and the descriptor
    /// becomes writable again as [`Kernel::socket_drain`] simulates the
    /// wire acknowledging data.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn set_nonblocking(&mut self, pid: Pid, fd: Fd, nonblocking: bool) -> Result<(), IolError> {
        self.fx.clear();
        let r = self.state.op_set_nonblocking(pid, fd, nonblocking);
        self.finish(|| Command::SetNonblocking {
            pid,
            fd,
            nonblocking,
        });
        r
    }

    /// Acknowledges up to `max` bytes of a nonblocking socket's send
    /// buffer (the wire drained them), returning the bytes freed. The
    /// event driver calls this as simulated transmission completes;
    /// no CPU is charged — per-packet and checksum work was already
    /// billed at send time.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual, and
    /// [`IolError::Closed`] once the peer hung up — a dead peer
    /// acknowledges nothing, so unacknowledged bytes can never drain
    /// and the in-flight response must be failed, not completed.
    pub fn socket_drain(&mut self, pid: Pid, fd: Fd, max: u64) -> Result<u64, IolError> {
        self.fx.clear();
        let r = self.state.op_socket_drain(pid, fd, max);
        self.finish(|| Command::SocketDrain { pid, fd, max });
        r
    }

    /// Marks a socket's remote side as hung up (FIN/RST arrived): reads
    /// drain the delivered data then return EOF, writes fail with
    /// [`IolError::Closed`], and `iol_poll` reports `eof`/`epipe` — the
    /// readiness transition an event loop must observe when a client
    /// disconnects mid-response.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_peer_close(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        self.fx.clear();
        let r = self.state.op_socket_peer_close(pid, fd);
        self.finish(|| Command::SocketPeerClose { pid, fd });
        r
    }

    // ---- readiness (the event-driven servers' select/poll, §6) ----------

    /// Reports readiness for a set of descriptors, `poll(2)`-style: one
    /// [`Readiness`] per entry, in order. Pipe ends (stdio included),
    /// kernel-registry sockets, and regular files are all supported;
    /// an entry that fails to resolve reports `invalid` (`POLLNVAL`)
    /// without failing the scan.
    ///
    /// The call is charged as one trap plus a per-entry scan cost
    /// ([`CostModel::poll_fd_us`]) — the select/poll overhead that made
    /// event-driven servers sensitive to poll-set size long before the
    /// payload moved.
    ///
    /// # Errors
    ///
    /// None today — the result is total; the `IoResult` shape carries
    /// the accounting like every other descriptor operation.
    pub fn iol_poll(&mut self, pid: Pid, fds: &[PollFd]) -> IoResult<Vec<Readiness>> {
        self.fx.clear();
        let r = self.state.op_iol_poll(pid, fds, &mut self.fx);
        self.finish(|| Command::Poll {
            pid,
            fds: fds.to_vec(),
        });
        r
    }

    // ---- file descriptors (§3.4: the IOL calls act on any fd) -----------

    /// Opens a file by path, returning a descriptor with offset 0. The
    /// outcome carries the metadata-lookup plus syscall charge.
    ///
    /// # Errors
    ///
    /// [`IolError::NotFound`] when the path does not resolve.
    pub fn open(&mut self, pid: Pid, path: &str) -> IoResult<Fd> {
        self.fx.clear();
        let r = self.state.op_open(pid, path, &mut self.fx);
        self.finish(|| Command::Open {
            pid,
            path: path.to_string(),
        });
        r
    }

    /// Installs a descriptor (offset 0) for an already-resolved file —
    /// the bridge for layers that hold [`FileId`]s (workload setup,
    /// benches) into the descriptor world.
    pub fn open_file(&mut self, pid: Pid, file: FileId) -> Fd {
        self.fx.clear();
        let fd = self.state.op_open_file(pid, file);
        self.finish(|| Command::OpenFile { pid, file });
        fd
    }

    /// Creates a pipe and returns `(read_fd, write_fd)` in `pid`'s table
    /// (both ends in one process, as after `pipe(2)` before `fork`;
    /// hand the ends to other processes with [`Kernel::install_fd`] or
    /// wire two processes directly with [`Kernel::pipe_between`]).
    pub fn pipe_fds(&mut self, pid: Pid, mode: PipeMode) -> (Fd, Fd) {
        self.fx.clear();
        let r = self.state.op_pipe_fds(pid, mode, &mut self.fx);
        self.finish(|| Command::PipeFds { pid, mode });
        r
    }

    /// Creates a pipe with its write end in `writer`'s table and its
    /// read end in `reader`'s (the post-`fork` shape of `a | b`).
    /// Returns `(write_fd, read_fd)`.
    pub fn pipe_between(&mut self, writer: Pid, reader: Pid, mode: PipeMode) -> (Fd, Fd) {
        self.fx.clear();
        let r = self.state.op_pipe_between(writer, reader, mode, None, &mut self.fx);
        self.finish(|| Command::PipeBetween {
            writer,
            reader,
            mode,
            acl: None,
        });
        r
    }

    /// Like [`Kernel::pipe_between`], with zero-copy transfers governed
    /// by `acl` (pipes between mutually untrusting domains, §3.10).
    pub fn pipe_between_with_acl(
        &mut self,
        writer: Pid,
        reader: Pid,
        mode: PipeMode,
        acl: Acl,
    ) -> (Fd, Fd) {
        self.fx.clear();
        let r = self
            .state
            .op_pipe_between(writer, reader, mode, Some(acl.clone()), &mut self.fx);
        self.finish(|| Command::PipeBetween {
            writer,
            reader,
            mode,
            acl: Some(acl),
        });
        r
    }

    /// Installs an existing object in `pid`'s descriptor table (the
    /// moral equivalent of inheriting an fd across `fork`/`exec`).
    pub fn install_fd(&mut self, pid: Pid, object: FdObject) -> Fd {
        self.fx.clear();
        let fd = self.state.op_install_fd(pid, object);
        self.finish(|| Command::InstallFd { pid, object });
        fd
    }

    /// Installs an existing object at exactly `at` (`dup2`-style
    /// targeting for inherited objects — e.g. parking a pipe end on a
    /// child's stdio number), displacing and (last-reference) closing
    /// whatever was there.
    pub fn install_fd_at(&mut self, pid: Pid, at: Fd, object: FdObject) -> Fd {
        self.fx.clear();
        let fd = self.state.op_install_fd_at(pid, at, object);
        self.finish(|| Command::InstallFdAt { pid, at, object });
        fd
    }

    /// Duplicates a descriptor (`dup(2)`) onto the lowest free number:
    /// both numbers share one file offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open.
    pub fn dup_fd(&mut self, pid: Pid, fd: Fd) -> Result<Fd, IolError> {
        self.fx.clear();
        let r = self.state.op_dup_fd(pid, fd);
        self.finish(|| Command::DupFd { pid, fd });
        r
    }

    /// Duplicates `src` onto exactly `dst` (`dup2(2)`), displacing and
    /// (last-reference) closing whatever was there. Re-plumbing the
    /// stdio triple goes through here, shell-style.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `src` is not open.
    pub fn dup2_fd(&mut self, pid: Pid, src: Fd, dst: Fd) -> Result<Fd, IolError> {
        self.fx.clear();
        let r = self.state.op_dup2_fd(pid, src, dst);
        self.finish(|| Command::Dup2Fd { pid, src, dst });
        r
    }

    /// Closes a descriptor (`close(2)`). When the last descriptor for a
    /// pipe write end disappears (across *all* processes), the pipe is
    /// closed for real and readers see EOF; a socket's last close tears
    /// the connection down.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open (double close).
    pub fn close_fd(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        self.fx.clear();
        let r = self.state.op_close_fd(pid, fd);
        self.finish(|| Command::CloseFd { pid, fd });
        r
    }

    /// Repositions a file descriptor (`lseek(2)`), resolving
    /// [`Whence::End`] against the file's metadata. Returns the new
    /// absolute offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors,
    /// [`IolError::BadFdKind`] for pipes/sockets (ESPIPE), and
    /// [`IolError::InvalidSeek`] when the resolved position is negative.
    pub fn lseek(&mut self, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_lseek(pid, fd, offset, whence, &mut self.fx);
        self.finish(|| Command::Lseek {
            pid,
            fd,
            offset,
            whence,
        });
        r
    }

    /// `IOL_read` on a descriptor: files read at (and advance) the
    /// shared offset; pipe read-ends drain the pipe; sockets drain the
    /// inbound queue. Short (even empty) reads at end-of-stream are
    /// part of the contract.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors;
    /// [`IolError::BadFdKind`] for write-only objects;
    /// [`IolError::WouldBlock`] when a pipe/socket is empty but its
    /// writer is still open; [`IolError::PermissionDenied`] when an
    /// ACL'd pipe refuses the reader's domain.
    pub fn iol_read_fd(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<Aggregate> {
        self.fx.clear();
        let r = self.state.op_iol_read_fd(pid, fd, len, &mut self.fx);
        self.finish(|| Command::IolReadFd { pid, fd, len });
        r
    }

    /// `IOL_write` on a descriptor: files replace at (and advance) the
    /// shared offset; pipe write-ends enqueue; sockets run the TCP send
    /// path (zero-copy with checksum caching, or copying — the
    /// descriptor doesn't care, §3.4). Returns bytes accepted; socket
    /// writes carry their [`SendOutcome`] in `outcome.net`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual;
    /// [`IolError::Closed`] when writing a closed pipe or socket;
    /// [`IolError::WouldBlock`] when a full pipe accepts nothing;
    /// [`IolError::ShortIo`] (carrying the partial count and its
    /// charge) when a pipe fills mid-write.
    pub fn iol_write_fd(&mut self, pid: Pid, fd: Fd, agg: &Aggregate) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_iol_write_fd(pid, fd, agg, &mut self.fx);
        self.finish(|| Command::IolWriteFd {
            pid,
            fd,
            agg: agg.clone(),
        });
        r
    }

    /// Positional `IOL_read` (`pread(2)`): reads a file descriptor at
    /// an explicit offset without moving the shared offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] (pipes and
    /// sockets have no positions).
    pub fn iol_pread(&mut self, pid: Pid, fd: Fd, offset: u64, len: u64) -> IoResult<Aggregate> {
        self.fx.clear();
        let r = self.state.op_iol_pread(pid, fd, offset, len, &mut self.fx);
        self.finish(|| Command::IolPread {
            pid,
            fd,
            offset,
            len,
        });
        r
    }

    /// Positional `IOL_write` (`pwrite(2)`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`].
    pub fn iol_pwrite(&mut self, pid: Pid, fd: Fd, offset: u64, agg: &Aggregate) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_iol_pwrite(pid, fd, offset, agg, &mut self.fx);
        self.finish(|| Command::IolPwrite {
            pid,
            fd,
            offset,
            agg: agg.clone(),
        });
        r
    }

    /// Backward-compatible copying read on a file descriptor, advancing
    /// the shared offset (§4.2's copy-in/copy-out POSIX veneer).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`] — pipes carry copy semantics through
    /// their mode instead.
    pub fn posix_read_fd(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<Vec<u8>> {
        self.fx.clear();
        let r = self.state.op_posix_read_fd(pid, fd, len, &mut self.fx);
        self.finish(|| Command::PosixReadFd { pid, fd, len });
        r
    }

    /// Backward-compatible copying write on a file descriptor,
    /// advancing the shared offset.
    ///
    /// # Errors
    ///
    /// As [`Kernel::posix_read_fd`].
    pub fn posix_write_fd(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_posix_write_fd(pid, fd, data, &mut self.fx);
        self.finish(|| Command::PosixWriteFd {
            pid,
            fd,
            data: data.to_vec(),
        });
        r
    }

    /// Maps the whole file behind a descriptor (§3.8 `mmap`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`].
    pub fn mmap_fd(&mut self, pid: Pid, fd: Fd) -> IoResult<MmapView> {
        self.fx.clear();
        let r = self.state.op_mmap_fd(pid, fd, &mut self.fx);
        self.finish(|| Command::MmapFd { pid, fd });
        r
    }

    // ---- the stdio console (harness side of fds 0/1/2) ------------------

    /// Writes `data` into `pid`'s stdin console pipe (the harness
    /// playing the terminal); the process reads it at [`Fd::STDIN`].
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`]/[`IolError::ShortIo`] as for any pipe
    /// write when the console buffer fills.
    pub fn feed_stdin(&mut self, pid: Pid, data: &Aggregate) -> IoResult<u64> {
        self.fx.clear();
        let r = self.state.op_feed_stdin(pid, data, &mut self.fx);
        self.finish(|| Command::FeedStdin {
            pid,
            data: data.clone(),
        });
        r
    }

    /// Drains up to `max` bytes the process wrote to [`Fd::STDOUT`].
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`] when nothing is buffered and the
    /// process still holds its write end.
    pub fn read_stdout(&mut self, pid: Pid, max: u64) -> IoResult<Aggregate> {
        self.fx.clear();
        let r = self.state.op_read_stdout(pid, max, &mut self.fx);
        self.finish(|| Command::ReadStdout { pid, max });
        r
    }

    /// Drains up to `max` bytes the process wrote to [`Fd::STDERR`].
    ///
    /// # Errors
    ///
    /// As [`Kernel::read_stdout`].
    pub fn read_stderr(&mut self, pid: Pid, max: u64) -> IoResult<Aggregate> {
        self.fx.clear();
        let r = self.state.op_read_stderr(pid, max, &mut self.fx);
        self.finish(|| Command::ReadStderr { pid, max });
        r
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use iolite_net::{DEFAULT_MSS, DEFAULT_TSS};

    fn kernel() -> Kernel {
        Kernel::new(CostModel::pentium_ii_333())
    }

    #[test]
    fn spawn_installs_the_stdio_triple() {
        let mut k = kernel();
        let pid = k.spawn("app");
        // fds 0/1/2 are live; the first user object lands at 3.
        let f = k.create_file("/f", b"x");
        let fd = k.open_file(pid, f);
        assert_eq!(fd, Fd(3));
        // STDOUT round-trips through the console.
        let pool = k.process(pid).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"hello, console");
        let (n, _) = k.iol_write_fd(pid, Fd::STDOUT, &msg).unwrap();
        assert_eq!(n, 14);
        let (got, _) = k.read_stdout(pid, 100).unwrap();
        assert_eq!(got.to_vec(), b"hello, console");
        // STDIN: the harness feeds, the process reads.
        let input = Aggregate::from_bytes(&pool, b"typed");
        k.feed_stdin(pid, &input).unwrap();
        let (read, _) = k.iol_read_fd(pid, Fd::STDIN, 100).unwrap();
        assert_eq!(read.to_vec(), b"typed");
        // STDERR is distinct from STDOUT.
        let err = Aggregate::from_bytes(&pool, b"oops");
        k.iol_write_fd(pid, Fd::STDERR, &err).unwrap();
        assert!(matches!(
            k.read_stdout(pid, 100),
            Err(IolError::WouldBlock { .. })
        ));
        assert_eq!(k.read_stderr(pid, 100).unwrap().0.to_vec(), b"oops");
    }

    #[test]
    fn closed_fd_numbers_are_reused_lowest_first() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"x");
        let a = k.open_file(pid, f);
        let b = k.open_file(pid, f);
        assert_eq!((a, b), (Fd(3), Fd(4)));
        k.close_fd(pid, a).unwrap();
        assert_eq!(k.open_file(pid, f), Fd(3), "lowest free number, per POSIX");
        assert_eq!(k.open_file(pid, f), Fd(5));
    }

    #[test]
    fn iol_read_hits_cache_second_time() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 100_000, 1);
        let fd = k.open_file(pid, f);
        let (a1, o1) = k.iol_pread(pid, fd, 0, 100_000).unwrap();
        assert!(!o1.cache_hit);
        assert!(o1.disk_bytes == 100_000 && o1.disk_time > SimTime::ZERO);
        let (a2, o2) = k.iol_pread(pid, fd, 0, 100_000).unwrap();
        assert!(o2.cache_hit);
        assert_eq!(o2.disk_bytes, 0);
        assert!(a1.content_eq(&a2));
        // Same physical copy.
        assert!(a1.slice_at(0).same_buffer(a2.slice_at(0)));
    }

    #[test]
    fn iol_read_short_at_eof() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"abcdef");
        let fd = k.open_file(pid, f);
        let (agg, _) = k.iol_pread(pid, fd, 4, 100).unwrap();
        assert_eq!(agg.to_vec(), b"ef");
        let (empty, _) = k.iol_pread(pid, fd, 100, 10).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn mapping_cost_amortizes() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 64 * 1024, 1);
        let fd = k.open_file(pid, f);
        let (_, o1) = k.iol_pread(pid, fd, 0, 64 * 1024).unwrap();
        assert!(o1.mapped_pages > 0);
        let (_, o2) = k.iol_pread(pid, fd, 0, 64 * 1024).unwrap();
        assert_eq!(o2.mapped_pages, 0, "second read rides warm mappings");
        assert!(o2.charge.time < o1.charge.time);
    }

    #[test]
    fn posix_read_copies_iol_read_does_not() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 1);
        let fd = k.open_file(pid, f);
        let (data, _) = k.posix_read_fd(pid, fd, 10_000).unwrap();
        assert_eq!(k.metrics.bytes_copied, 10_000);
        let (agg, _) = k.iol_pread(pid, fd, 0, 10_000).unwrap();
        assert_eq!(k.metrics.bytes_copied, 10_000, "IOL_read adds no copy");
        assert_eq!(agg.to_vec(), data);
    }

    #[test]
    fn iol_write_preserves_reader_snapshots() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"old-contents");
        let fd = k.open_file(pid, f);
        let (snapshot, _) = k.iol_pread(pid, fd, 0, 100).unwrap();
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"NEW");
        k.iol_pwrite(pid, fd, 0, &patch).unwrap();
        // Reader's snapshot unchanged; store and cache updated.
        assert_eq!(snapshot.to_vec(), b"old-contents");
        assert_eq!(k.store.read(f, 0, 100).unwrap(), b"NEW-contents");
        let (now, o) = k.iol_pread(pid, fd, 0, 100).unwrap();
        assert!(o.cache_hit);
        assert_eq!(now.to_vec(), b"NEW-contents");
    }

    /// The PR 10 write path end-to-end at the kernel surface: a PUT
    /// installs the body dirty and zero-copy, readers of the old
    /// version keep complete snapshots, write-back cleans through the
    /// NVM tier, and the journaled run replays bit-identically.
    #[test]
    fn put_install_write_back_replays_bit_identically() {
        let mut k = kernel();
        k.start_journal();
        let pid = k.spawn("server");
        let f = k.create_file("/doc", b"generation-one");
        let fd = k.open_file(pid, f);
        let (old_snap, _) = k.iol_pread(pid, fd, 0, 100).unwrap();
        // PUT: the body aggregate is installed by reference.
        let body = Aggregate::from_bytes(k.process(pid).pool(), b"generation-two!");
        let out = k.put_install(pid, f, &body);
        assert_eq!(out.disk_bytes, 0, "persistence is deferred");
        assert_eq!(k.metrics.bytes_dirty_installed, body.len());
        assert!(k.cache.is_dirty(&CacheKey::whole(f)));
        // The new cache entry shares the body's buffers (zero-copy).
        let (new_snap, o) = k.iol_pread(pid, fd, 0, 100).unwrap();
        assert!(o.cache_hit);
        assert!(new_snap.slice_at(0).same_buffer(body.slice_at(0)));
        // §3.5: the old reader still sees complete old bytes.
        assert_eq!(old_snap.to_vec(), b"generation-one");
        assert_eq!(new_snap.to_vec(), b"generation-two!");
        assert_eq!(k.store.read(f, 0, 100).unwrap(), b"generation-two!");
        // Write-back cleans the entry; the small body fits the NVM tier.
        assert!(!k.writeback_due(), "one small body is under threshold");
        let flushed = k.write_back(0);
        assert_eq!(flushed, body.len());
        assert!(!k.cache.is_dirty(&CacheKey::whole(f)));
        assert_eq!(k.metrics.nvm_absorbed_bytes, body.len());
        assert_eq!(k.metrics.writeback_flushes, 1);
        // Background demotion drains the tier to disk.
        let moved = k.nvm_demote(0);
        assert_eq!(moved, body.len());
        assert_eq!(k.metrics.disk_write_bytes, body.len());
        assert_eq!(k.state.writeback.nvm_used(), 0);
        // Deterministic replay: same state hash, same metrics.
        let journal = k.take_journal().unwrap();
        let initial = KernelState::new(CostModel::pentium_ii_333(), Policy::Lru);
        let (replayed, metrics) = crate::pure::replay(initial, &journal);
        assert_eq!(replayed.state_hash(), k.state_hash());
        assert_eq!(metrics, k.metrics);
    }

    /// Dirty entries survive memory pressure: the pageout arbiter
    /// flushes them instead of discarding, and only then evicts.
    #[test]
    fn vm_pressure_on_dirty_cache_writes_back() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let f = k.create_file("/doc", b"x");
        let body = Aggregate::from_bytes(k.process(pid).pool(), &vec![7u8; 8192]);
        k.put_install(pid, f, &body);
        // Make cached-I/O replacements dominate so §3.7 arms, with the
        // only cache entry dirty.
        for _ in 0..8 {
            k.pageout.page_replaced(iolite_vm::PageClass::CachedIo);
        }
        assert!(k.vm_pressure(0), "armed pressure must act");
        assert_eq!(k.pageout.dirty_writebacks(), 1);
        assert!(!k.cache.is_dirty(&CacheKey::whole(f)), "flushed, not lost");
        assert_eq!(k.store.read(f, 0, 1).unwrap(), b"\x07");
    }

    #[test]
    fn lookup_uses_metadata_cache() {
        let mut k = kernel();
        k.create_file("/x", b"1");
        let (id1, c1) = k.lookup("/x");
        let (id2, c2) = k.lookup("/x");
        assert_eq!(id1, id2);
        assert!(c2.time < c1.time, "metadata hit is cheaper");
        assert_eq!(k.lookup("/missing").0, None);
    }

    /// Regression (pin-steal interleaving across the kernel surface):
    /// a transmission pins the key, `IOL_write` replaces the entry, a
    /// second transmission pins the key, then the first transmission's
    /// deferred unpin fires. The second transmission's data must stay
    /// referenced.
    #[test]
    fn iol_write_replacement_keeps_transmission_pins() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let f = k.create_file("/doc", b"version-1");
        let fd = k.open_file(pid, f);
        let key = CacheKey::whole(f);
        // Transmission A: read + pin (the serve path's pin lifecycle).
        let (_snap, _) = k.iol_pread(pid, fd, 0, 100).unwrap();
        k.cache.pin(&key);
        // A write replaces the cached entry mid-transmission.
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"version-2");
        k.iol_pwrite(pid, fd, 0, &patch).unwrap();
        // Transmission B starts on the new snapshot.
        let (_snap2, o2) = k.iol_pread(pid, fd, 0, 100).unwrap();
        assert!(o2.cache_hit);
        k.cache.pin(&key);
        // Transmission A drains: its deferred unpin fires.
        k.cache.unpin(&key);
        assert_eq!(k.cache.pins(&key), 1, "B's pin must survive A's unpin");
        // Under total memory pressure the in-flight entry is evicted
        // only as a last resort (counted as a pinned eviction).
        let before = k.cache.stats().pinned_evictions;
        k.cache.set_budget(0);
        assert_eq!(k.cache.stats().pinned_evictions, before + 1);
    }

    #[test]
    fn cache_budget_respects_memory_pressure() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 1 << 20, 1);
        let fd = k.open_file(pid, f);
        k.iol_pread(pid, fd, 0, 1 << 20).unwrap();
        assert!(k.cache.resident_bytes() > 0);
        // Reserve (almost) all remaining memory: cache must shrink.
        let avail = k.physmem.available();
        k.physmem
            .reserve(MemAccount::SocketCopies, avail + (1 << 20));
        k.rebalance_cache();
        assert_eq!(k.cache.resident_bytes(), 0, "budget squeeze evicts all");
    }

    #[test]
    fn zero_copy_pipe_transfer_maps_once() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        // First message: fresh chunk, reader pays mapping.
        let m1 = Aggregate::from_bytes(&pool, &[1u8; 64 * 1024]);
        k.iol_write_fd(a, w, &m1).unwrap();
        drop(m1);
        let (got, o1) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(got.len(), 64 * 1024);
        assert!(o1.mapped_pages > 0);
        drop(got);
        // Recycled chunk: no new mappings (the §3.2 fast path).
        let m2 = Aggregate::from_bytes(&pool, &[2u8; 64 * 1024]);
        k.iol_write_fd(a, w, &m2).unwrap();
        drop(m2);
        let (_, o2) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(o2.mapped_pages, 0);
        assert_eq!(k.metrics.bytes_copied, 0);
    }

    #[test]
    fn copy_pipe_charges_copies() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::Copy);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, &[1u8; 1000]);
        let (n, wout) = k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(n, 1000);
        assert!(wout.charge.time > Charge::us(5.0).time);
        let (_, rout) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert!(rout.charge.time > Charge::us(5.0).time);
        assert_eq!(k.metrics.bytes_copied, 2000);
    }

    #[test]
    fn pipe_write_reports_short_io_and_close_gives_eof() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        // 100KB into a 64KB pipe: partial progress is carried.
        let big = Aggregate::from_bytes(&pool, &[7u8; 100 * 1024]);
        let err = k.iol_write_fd(a, w, &big).unwrap_err();
        let IolError::ShortIo { done, outcome } = err else {
            panic!("expected ShortIo, got {err:?}");
        };
        assert_eq!(done, 64 * 1024);
        assert!(outcome.charge.time > SimTime::ZERO);
        // Full pipe accepts nothing: EAGAIN, still charged as a trap.
        let blocked = k.iol_write_fd(a, w, &big).unwrap_err();
        let IolError::WouldBlock { outcome } = blocked else {
            panic!("expected WouldBlock, got {blocked:?}");
        };
        assert!(outcome.charge.time > SimTime::ZERO);
        // Drain, close the write end; the reader sees data then EOF.
        let (first, _) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(first.len(), 64 * 1024);
        k.close_fd(a, w).unwrap();
        let (eof, _) = k.iol_read_fd(b, r, 100).unwrap();
        assert!(eof.is_empty(), "EOF after last write end closes");
        // A fresh descriptor to the closed pipe's write end is refused.
        let FdObject::PipeRead(id) = k.fd_object(b, r).unwrap() else {
            panic!("read end resolves to a pipe");
        };
        let w2 = k.install_fd(a, FdObject::PipeWrite(id));
        assert_eq!(k.iol_write_fd(a, w2, &big), Err(IolError::Closed));
    }

    #[test]
    fn pipe_eof_requires_last_writer_to_close() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let w_dup = k.dup_fd(a, w).unwrap();
        k.close_fd(a, w).unwrap();
        // A write end remains: the empty pipe is EAGAIN, not EOF.
        assert!(matches!(
            k.iol_read_fd(b, r, 10),
            Err(IolError::WouldBlock { .. })
        ));
        k.close_fd(a, w_dup).unwrap();
        let (eof, _) = k.iol_read_fd(b, r, 10).unwrap();
        assert!(eof.is_empty());
    }

    #[test]
    fn mmap_returns_working_view() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 3);
        let fd = k.open_file(pid, f);
        let (mut view, o) = k.mmap_fd(pid, fd).unwrap();
        assert_eq!(view.len(), 10_000);
        assert!(o.mapped_pages > 0);
        let direct = k.store.read(f, 0, 10_000).unwrap();
        assert_eq!(view.read_all(), direct);
    }

    #[test]
    fn fd_reads_advance_shared_offsets() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/seq", b"abcdefghij");
        let (fd, _) = k.open(pid, "/seq").unwrap();
        let (first, _) = k.iol_read_fd(pid, fd, 4).unwrap();
        assert_eq!(first.to_vec(), b"abcd");
        // A dup shares the offset.
        let dup = k.dup_fd(pid, fd).unwrap();
        let (second, _) = k.iol_read_fd(pid, dup, 4).unwrap();
        assert_eq!(second.to_vec(), b"efgh");
        let (third, _) = k.iol_read_fd(pid, fd, 4).unwrap();
        assert_eq!(third.to_vec(), b"ij");
        // lseek rewinds.
        assert_eq!(k.lseek(pid, fd, 0, Whence::Set).unwrap().0, 0);
        let (again, _) = k.iol_read_fd(pid, dup, 2).unwrap();
        assert_eq!(again.to_vec(), b"ab");
    }

    #[test]
    fn lseek_whence_resolves_cur_and_end() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f").unwrap();
        assert_eq!(k.lseek(pid, fd, 4, Whence::Set).unwrap().0, 4);
        assert_eq!(k.lseek(pid, fd, 3, Whence::Cur).unwrap().0, 7);
        assert_eq!(k.lseek(pid, fd, -5, Whence::Cur).unwrap().0, 2);
        // End resolves against file metadata.
        assert_eq!(k.lseek(pid, fd, -2, Whence::End).unwrap().0, 8);
        let (tail, _) = k.iol_read_fd(pid, fd, 100).unwrap();
        assert_eq!(tail.to_vec(), b"89");
        // Past-EOF is allowed (sparse seek); negative is EINVAL.
        assert_eq!(k.lseek(pid, fd, 5, Whence::End).unwrap().0, 15);
        assert_eq!(
            k.lseek(pid, fd, -11, Whence::Set),
            Err(IolError::InvalidSeek { requested: -11 })
        );
        // ESPIPE for non-files.
        let (_, r) = k.pipe_fds(pid, PipeMode::Copy);
        assert!(matches!(
            k.lseek(pid, r, 0, Whence::Set),
            Err(IolError::BadFdKind { .. })
        ));
    }

    #[test]
    fn fd_pipes_and_bad_fds() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r_in_b) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"through the fd layer");
        let (n, _) = k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(n, 20);
        let (got, _) = k.iol_read_fd(b, r_in_b, 100).unwrap();
        assert_eq!(got.to_vec(), b"through the fd layer");
        // Wrong-end access and unknown fds fail precisely.
        assert!(matches!(
            k.iol_read_fd(a, w, 10),
            Err(IolError::BadFdKind { .. })
        ));
        assert!(matches!(
            k.iol_write_fd(b, r_in_b, &msg),
            Err(IolError::BadFdKind { .. })
        ));
        assert!(matches!(
            k.iol_read_fd(a, Fd(999), 10),
            Err(IolError::NotOpen { fd: Fd(999) })
        ));
        // Opening a missing path is ENOENT.
        assert_eq!(k.open(a, "/nope"), Err(IolError::NotFound));
    }

    #[test]
    fn fd_file_writes_land_at_the_offset() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f").unwrap();
        k.lseek(pid, fd, 4, Whence::Set).unwrap();
        let pool = k.process(pid).pool().clone();
        let patch = Aggregate::from_bytes(&pool, b"XY");
        let (n, _) = k.iol_write_fd(pid, fd, &patch).unwrap();
        assert_eq!(n, 2);
        let file = k.lookup("/f").0.unwrap();
        assert_eq!(k.store.read(file, 0, 20).unwrap(), b"0123XY6789");
        // The offset advanced past the write.
        let (rest, _) = k.iol_read_fd(pid, fd, 10).unwrap();
        assert_eq!(rest.to_vec(), b"6789");
    }

    #[test]
    fn socket_fd_runs_the_tcp_send_path() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let pool = k.process(pid).pool().clone();
        let payload = Aggregate::from_bytes(&pool, &[7u8; 10_000]);
        let (n, out) = k.iol_write_fd(pid, sock, &payload).unwrap();
        assert_eq!(n, 10_000);
        let send = out.net.expect("socket writes carry SendOutcome");
        assert_eq!(send.payload_bytes, 10_000);
        assert_eq!(send.csum_bytes_computed, 10_000);
        assert_eq!(send.bytes_copied, 0);
        // Second transmission rides the checksum cache (§3.9), exactly
        // as a direct TcpConn::send would.
        let (_, out2) = k.iol_write_fd(pid, sock, &payload).unwrap();
        let send2 = out2.net.unwrap();
        assert_eq!(send2.csum_bytes_computed, 0);
        assert_eq!(send2.csum_bytes_cached, 10_000);
        assert_eq!(k.metrics.bytes_checksum_cached, 10_000);
        // Window-rate math is reachable through the registry.
        assert!(k.socket(pid, sock).unwrap().window_rate(0.0).is_infinite());
    }

    #[test]
    fn socket_fd_reads_drain_delivered_data() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        // Nothing delivered yet: EAGAIN.
        assert!(matches!(
            k.iol_read_fd(pid, sock, 10),
            Err(IolError::WouldBlock { .. })
        ));
        let pool = k.process(pid).pool().clone();
        k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"GET / HTTP/1.0"))
            .unwrap();
        let (head, _) = k.iol_read_fd(pid, sock, 5).unwrap();
        assert_eq!(head.to_vec(), b"GET /");
        let (rest, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert_eq!(rest.to_vec(), b" HTTP/1.0");
        // Close tears the connection down: reads EOF, writes EPIPE.
        k.close_fd(pid, sock).unwrap();
        let err = k.iol_read_fd(pid, sock, 10).unwrap_err();
        assert_eq!(err, IolError::NotOpen { fd: sock });
    }

    #[test]
    fn socket_close_rejects_further_writes_via_other_handles() {
        let mut k = kernel();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let sock = k.socket_create(a, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        // Hand the socket to b (fork-style inheritance), then close every
        // descriptor: the connection itself tears down.
        let obj = FdObject::Socket(ConnId(1));
        let sock_in_b = k.install_fd(b, obj);
        k.close_fd(a, sock).unwrap();
        // b's handle still works (the connection lives while referenced).
        let pool = k.process(b).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"still up");
        assert!(k.iol_write_fd(b, sock_in_b, &msg).is_ok());
        k.close_fd(b, sock_in_b).unwrap();
        // Re-acquiring a descriptor to the dead connection sees EPIPE.
        let zombie = k.install_fd(a, obj);
        assert_eq!(k.iol_write_fd(a, zombie, &msg), Err(IolError::Closed));
    }

    #[test]
    fn writer_gets_epipe_when_last_reader_closes() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let r_dup = k.dup_fd(b, r).unwrap();
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"into the void?");
        // A reader remains: writes proceed.
        k.close_fd(b, r).unwrap();
        assert!(k.iol_write_fd(a, w, &msg).is_ok());
        // The last reader hangs up: EPIPE, not an unbounded buffer.
        k.close_fd(b, r_dup).unwrap();
        assert_eq!(k.iol_write_fd(a, w, &msg), Err(IolError::Closed));
    }

    #[test]
    fn install_fd_at_targets_exact_numbers_with_close_semantics() {
        let mut k = kernel();
        let a = k.spawn("parent");
        let b = k.spawn("child");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // Park the child's read end on its stdin number, fork/exec
        // style; the displaced console description closes cleanly.
        let r_pipe = pipe_of(&mut k, b, r);
        assert_eq!(
            k.install_fd_at(b, Fd::STDIN, FdObject::PipeRead(r_pipe)),
            Fd::STDIN
        );
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"execve inherited");
        k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(
            k.iol_read_fd(b, Fd::STDIN, 100).unwrap().0.to_vec(),
            b"execve inherited"
        );
        // Displacing the last descriptor of a pipe's write end closes
        // the pipe for real.
        let (w2, r2) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let r2_pipe = pipe_of(&mut k, b, r2);
        k.install_fd_at(a, w2, FdObject::PipeRead(r2_pipe));
        let (eof, _) = k.iol_read_fd(b, r2, 10).unwrap();
        assert!(eof.is_empty(), "write end displaced away => EOF");
    }

    /// Test helper: the PipeId behind a pipe-end descriptor.
    fn pipe_of(k: &mut Kernel, pid: Pid, fd: Fd) -> PipeId {
        match k.fd_object(pid, fd).unwrap() {
            FdObject::PipeRead(id) | FdObject::PipeWrite(id) => id,
            other => panic!("not a pipe end: {other:?}"),
        }
    }

    #[test]
    fn dup2_replumbs_stdout_shell_style() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // a's stdout now points at the pipe; b's stdin at its read end.
        k.dup2_fd(a, w, Fd::STDOUT).unwrap();
        k.dup2_fd(b, r, Fd::STDIN).unwrap();
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"a | b");
        k.iol_write_fd(a, Fd::STDOUT, &msg).unwrap();
        let (got, _) = k.iol_read_fd(b, Fd::STDIN, 100).unwrap();
        assert_eq!(got.to_vec(), b"a | b");
    }

    #[test]
    fn pageout_trigger_evicts_under_cache_heavy_replacement() {
        let mut k = kernel();
        let pid = k.spawn("app");
        // Fill the cache, then squeeze it so replacements are dominated
        // by cached-I/O pages.
        for i in 0..8 {
            let f = k.create_synthetic_file(&format!("/f{i}"), 1 << 20, i);
            let fd = k.open_file(pid, f);
            k.iol_pread(pid, fd, 0, 1 << 20).unwrap();
        }
        let resident_before = k.cache.resident_bytes();
        assert!(resident_before > 0);
        let squeeze = k.physmem.available() + resident_before / 2;
        k.physmem.reserve(MemAccount::SocketCopies, squeeze);
        k.rebalance_cache();
        // The daemon saw cached-I/O replacements; light "other" traffic
        // must now trigger the half rule.
        assert!(k.pageout.total_cached_io() > 0);
        let evicted = k.vm_pressure(1);
        assert!(evicted, "majority cached-I/O traffic must evict");
        assert!(k.pageout.evictions() >= 1);
        assert!(k.pageout.backing_writes() >= 1);
        // Heavy non-cache pressure resets the balance: no more evictions.
        let again = k.vm_pressure(10_000);
        assert!(!again, "other-page traffic dominates now");
    }

    #[test]
    fn nonblocking_socket_bounds_the_send_buffer() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, 64 * 1024);
        k.set_nonblocking(pid, sock, true).unwrap();
        let pool = k.process(pid).pool().clone();
        // 100KB into a 64KB send buffer: partial progress is carried.
        let big = Aggregate::from_bytes(&pool, &[3u8; 100 * 1024]);
        let err = k.iol_write_fd(pid, sock, &big).unwrap_err();
        let IolError::ShortIo { done, outcome } = err else {
            panic!("expected ShortIo, got {err:?}");
        };
        assert_eq!(done, 64 * 1024);
        let send = outcome.net.expect("partial sends still carry accounting");
        assert_eq!(send.payload_bytes, 64 * 1024);
        assert_eq!(k.socket_space(pid, sock).unwrap(), 0);
        // Full buffer accepts nothing: EAGAIN, still charged as a trap.
        assert!(matches!(
            k.iol_write_fd(pid, sock, &big),
            Err(IolError::WouldBlock { .. })
        ));
        // The wire ACKs half: exactly that much fits again.
        assert_eq!(k.socket_drain(pid, sock, 32 * 1024).unwrap(), 32 * 1024);
        assert_eq!(k.socket_space(pid, sock).unwrap(), 32 * 1024);
        let rest = big.range(done, 32 * 1024).unwrap();
        let (n, _) = k.iol_write_fd(pid, sock, &rest).unwrap();
        assert_eq!(n, 32 * 1024);
        assert_eq!(k.socket_unacked(pid, sock).unwrap(), 64 * 1024);
        // Blocking sockets are unaffected by the bound.
        let blocking = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, 1024);
        let (n, _) = k.iol_write_fd(pid, blocking, &big).unwrap();
        assert_eq!(n, big.len());
    }

    #[test]
    fn poll_reports_pipe_and_socket_readiness() {
        use crate::poll::PollFd;
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // Empty pipe: writer writable, reader pending.
        let (ev, out) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
        assert!(ev[0].writable && !ev[0].epipe);
        assert!(out.charge.time > SimTime::ZERO, "poll is charged");
        let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
        assert!(!ev[0].readable && !ev[0].eof);
        // Data buffered: reader readable.
        let pool = k.process(a).pool().clone();
        k.iol_write_fd(a, w, &Aggregate::from_bytes(&pool, b"x")).unwrap();
        let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
        assert!(ev[0].readable);
        // Sockets: pending until delivery, readable after.
        let sock = k.socket_create(a, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let (ev, _) = k.iol_poll(a, &[PollFd::readable(sock)]).unwrap();
        assert!(!ev[0].readable && ev[0].writable);
        k.socket_deliver(a, sock, Aggregate::from_bytes(&pool, b"req"))
            .unwrap();
        let (ev, _) = k.iol_poll(a, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].readable);
        // Unknown fds report POLLNVAL without failing the scan.
        let (ev, _) = k
            .iol_poll(a, &[PollFd::readable(Fd(999)), PollFd::writable(w)])
            .unwrap();
        assert!(ev[0].invalid && ev[1].writable);
    }

    #[test]
    fn poll_sees_peer_close_as_readiness() {
        use crate::poll::PollFd;
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let pool = k.process(pid).pool().clone();
        k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"bye"))
            .unwrap();
        k.socket_peer_close(pid, sock).unwrap();
        // Undrained data is still readable; EOF only after the drain.
        let (ev, _) = k.iol_poll(pid, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].readable && !ev[0].eof && ev[0].epipe);
        let (got, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert_eq!(got.to_vec(), b"bye");
        let (ev, _) = k.iol_poll(pid, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].eof && !ev[0].readable);
        let (eof, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert!(eof.is_empty(), "peer-closed socket reads EOF after drain");
        // Writes are EPIPE, as the epipe bit promised.
        let msg = Aggregate::from_bytes(&pool, b"late");
        assert_eq!(k.iol_write_fd(pid, sock, &msg), Err(IolError::Closed));
        // Delivery after FIN is refused too.
        assert_eq!(
            k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"?")),
            Err(IolError::Closed)
        );
        // The conventional accounting-only send path and segment
        // materialization refuse a peer-closed socket the same way the
        // descriptor write does.
        let copy_sock = k.socket_create(pid, BufferMode::Copy, DEFAULT_MSS, DEFAULT_TSS);
        k.socket_peer_close(pid, copy_sock).unwrap();
        assert_eq!(
            k.socket_send_accounted(pid, copy_sock, 100),
            Err(IolError::Closed)
        );
        // And a dead peer never ACKs: drains fail rather than
        // pretending the buffer emptied.
        assert_eq!(k.socket_drain(pid, sock, 10), Err(IolError::Closed));
        assert!(matches!(
            k.socket_transmit_segments(pid, copy_sock, &msg),
            Err(IolError::Closed)
        ));
    }

    #[test]
    fn clock_and_charging() {
        let mut k = kernel();
        assert_eq!(k.now(), SimTime::ZERO);
        k.charge(CostCategory::Copy, Charge::us(100.0));
        k.advance(SimTime::from_us(50.0));
        assert_eq!(k.now(), SimTime::from_us(150.0));
        assert_eq!(
            k.metrics.time_in(CostCategory::Copy),
            SimTime::from_us(100.0)
        );
        k.reset_clock();
        assert_eq!(k.now(), SimTime::ZERO);
    }
}
